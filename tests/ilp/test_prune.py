"""Tests for theory post-processing (pruning)."""

import pytest

from repro.ilp.coverage import coverage_bitset
from repro.ilp.prune import drop_redundant_clauses, prune_clause, prune_theory
from repro.logic.clause import Theory
from repro.logic.engine import Engine
from repro.logic.knowledge import KnowledgeBase
from repro.logic.parser import parse_clause, parse_term


@pytest.fixture
def eng():
    kb = KnowledgeBase()
    kb.add_program(
        "q(a). q(b). q(c). r(a). r(b). t(a). t(b). t(c). t(z)."
    )
    return Engine(kb)


@pytest.fixture
def pos():
    return [parse_term(f"p({x})") for x in "ab"]


@pytest.fixture
def neg():
    return [parse_term(f"p({x})") for x in "yz"]


class TestPruneClause:
    def test_drops_idle_literals(self, eng, pos, neg):
        # r(X) alone already decides the extension, so q and t are idle
        c = parse_clause("p(X) :- q(X), r(X), t(X).")
        pruned = prune_clause(eng, c, pos, neg)
        assert pruned.body == (parse_term("r(X)"),)

    def test_keeps_discriminating_literal(self, eng, pos, neg):
        # r(X) separates {a,b} from z; must survive
        c = parse_clause("p(X) :- t(X), r(X).")
        pruned = prune_clause(eng, c, pos, neg)
        assert parse_term("r(X)") in pruned.body

    def test_extension_preserved(self, eng, pos, neg):
        c = parse_clause("p(X) :- q(X), r(X), t(X).")
        pruned = prune_clause(eng, c, pos, neg)
        assert coverage_bitset(eng, pruned, pos) == coverage_bitset(eng, c, pos)
        assert coverage_bitset(eng, pruned, neg) == coverage_bitset(eng, c, neg)

    def test_bare_head_unchanged(self, eng, pos, neg):
        c = parse_clause("p(X) :- r(X).")
        # r is needed (z is negative and t(z) holds); single literal stays
        assert prune_clause(eng, c, pos, neg) == c


class TestDropRedundantClauses:
    def test_equivalent_clause_removed(self, eng, pos):
        # both clauses cover exactly {a, b} on this training set; one goes
        general = parse_clause("p(X) :- q(X).")
        specific = parse_clause("p(X) :- q(X), r(X).")
        th = Theory([specific, general])
        out = drop_redundant_clauses(eng, th, pos)
        assert len(out) == 1
        kept = out[0]
        assert coverage_bitset(eng, kept, pos) == 0b11

    def test_complementary_clauses_kept(self, eng):
        pos = [parse_term("p(a)"), parse_term("p(c)")]
        c1 = parse_clause("p(X) :- r(X).")  # covers a
        c2 = parse_clause("p(c).")  # covers c
        out = drop_redundant_clauses(eng, Theory([c1, c2]), pos)
        assert len(out) == 2

    def test_total_coverage_preserved(self, eng, pos):
        th = Theory(
            [
                parse_clause("p(X) :- q(X), r(X)."),
                parse_clause("p(X) :- q(X)."),
                parse_clause("p(a)."),
            ]
        )
        out = drop_redundant_clauses(eng, th, pos)
        before = 0
        for c in th:
            before |= coverage_bitset(eng, c, pos)
        after = 0
        for c in out:
            after |= coverage_bitset(eng, c, pos)
        assert before == after


class TestPruneTheory:
    def test_end_to_end_on_learned_theory(self):
        from repro.datasets import make_dataset
        from repro.ilp import mdie
        from repro.ilp.theory import confusion

        ds = make_dataset("trains", seed=2, scale="small")
        res = mdie(ds.kb, ds.pos, ds.neg, ds.modes, ds.config, seed=2)
        eng = Engine(ds.kb, ds.config.engine_budget())
        before = confusion(eng, res.theory, ds.pos, ds.neg)
        pruned = prune_theory(eng, res.theory, ds.pos, ds.neg)
        after = confusion(eng, pruned, ds.pos, ds.neg)
        assert after.tp == before.tp  # positives kept
        assert after.fp <= before.fp  # consistency monotone
        assert pruned.total_literals() <= res.theory.total_literals()

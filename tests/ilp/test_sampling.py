"""Unit tests for the sampled-coverage layer: samplers, bounds,
certificates, and the sequential sampled run.

The property-based parity suite lives in ``test_sampling_properties.py``;
this module pins the concrete behaviours those properties build on.
"""

import pytest

from repro.ilp.config import SAMPLING_ENV, ILPConfig
from repro.ilp.coverage import popcount
from repro.ilp.heuristics import is_good
from repro.ilp.mdie import mdie
from repro.ilp.sampling import (
    ClauseCertificate,
    CoverageCertificate,
    SampledStats,
    certificate_from_bytes,
    certificate_to_bytes,
    clause_certificate,
    hoeffding_eps,
    make_sampler,
    sampler_for,
    stratum_size,
)
from repro.ilp.store import ExampleStore
from repro.ilp.theory import accuracy
from repro.logic.engine import Engine
from repro.logic.parser import parse_clause


def _sampler(n_pos=10, n_neg=8, seed=0, fraction=0.5, min_stratum=2, delta=0.05):
    return make_sampler(
        n_pos, n_neg, seed, fraction=fraction, delta=delta, min_stratum=min_stratum
    )


class TestStratumSize:
    def test_fraction_of_stratum(self):
        assert stratum_size(100, 0.25, 4) == 25

    def test_min_stratum_floor(self):
        assert stratum_size(100, 0.01, 16) == 16

    def test_never_exceeds_stratum(self):
        assert stratum_size(10, 0.25, 16) == 10
        assert stratum_size(3, 1.0, 1) == 3

    def test_empty_stratum(self):
        assert stratum_size(0, 0.5, 16) == 0


class TestHoeffding:
    def test_shrinks_with_n(self):
        assert hoeffding_eps(400, 0.05) < hoeffding_eps(100, 0.05) < hoeffding_eps(25, 0.05)

    def test_empty_sample_is_vacuous(self):
        assert hoeffding_eps(0, 0.05) == 1.0

    def test_tighter_delta_wider_radius(self):
        assert hoeffding_eps(100, 0.01) > hoeffding_eps(100, 0.10)


class TestSampler:
    def test_deterministic(self):
        a, b = _sampler(seed=7), _sampler(seed=7)
        assert a == b

    def test_mask_popcounts_match_sizes(self):
        s = _sampler()
        assert popcount(s.pos_mask) == s.pos_n == stratum_size(10, 0.5, 2)
        assert popcount(s.neg_mask) == s.neg_n == stratum_size(8, 0.5, 2)

    def test_masks_within_range(self):
        s = _sampler()
        assert s.pos_mask < (1 << s.n_pos)
        assert s.neg_mask < (1 << s.n_neg)

    def test_labels_extend_derivation_path(self):
        base = _sampler(n_pos=200, n_neg=200, fraction=0.25)
        shard = make_sampler(
            200, 200, 0, fraction=0.25, delta=0.05, min_stratum=2, labels=("worker", 1)
        )
        assert (base.pos_mask, base.neg_mask) != (shard.pos_mask, shard.neg_mask)

    def test_full_fraction_selects_everything(self):
        s = _sampler(fraction=1.0)
        assert s.pos_mask == (1 << 10) - 1
        assert s.neg_mask == (1 << 8) - 1

    def test_strata_rows(self):
        s = _sampler()
        assert s.strata() == (("pos", s.pos_n, 10), ("neg", s.neg_n, 8))


class TestConfigGate:
    def test_default_off(self, monkeypatch):
        monkeypatch.delenv(SAMPLING_ENV, raising=False)
        assert not ILPConfig().sampling_enabled()

    def test_env_enables(self, monkeypatch):
        monkeypatch.setenv(SAMPLING_ENV, "1")
        assert ILPConfig().sampling_enabled()

    def test_explicit_flag_beats_env(self, monkeypatch):
        monkeypatch.setenv(SAMPLING_ENV, "1")
        assert not ILPConfig(coverage_sampling=False).sampling_enabled()
        monkeypatch.delenv(SAMPLING_ENV, raising=False)
        assert ILPConfig(coverage_sampling=True).sampling_enabled()

    def test_env_does_not_change_config_sig(self, monkeypatch):
        monkeypatch.delenv(SAMPLING_ENV, raising=False)
        off = repr(ILPConfig())
        monkeypatch.setenv(SAMPLING_ENV, "1")
        assert repr(ILPConfig()) == off

    def test_sampler_for_none_when_off(self):
        config = ILPConfig(coverage_sampling=False)
        assert sampler_for(config, 10, 10, 0) is None

    def test_validation(self):
        with pytest.raises(ValueError):
            ILPConfig(sample_fraction=0.0)
        with pytest.raises(ValueError):
            ILPConfig(sample_fraction=1.5)
        with pytest.raises(ValueError):
            ILPConfig(sample_min=0)
        with pytest.raises(ValueError):
            ILPConfig(sample_delta=1.0)


class TestSampledStats:
    def test_merged_sums_fields(self):
        a = SampledStats(3, 5, 20, 1, 4, 10)
        b = SampledStats(2, 5, 20, 0, 4, 10)
        m = a.merged(b)
        assert m == SampledStats(5, 10, 40, 1, 8, 20)

    def test_estimates_scale(self):
        s = SampledStats(pos_hits=3, pos_n=5, pos_total=20, neg_hits=1, neg_n=4, neg_total=10)
        assert s.est_pos() == 12
        assert s.est_neg() == round(1 / 4 * 10)

    def test_bounds_exact_when_sample_is_stratum(self):
        s = SampledStats(pos_hits=7, pos_n=20, pos_total=20, neg_hits=2, neg_n=10, neg_total=10)
        assert s.pos_upper(0.05) == 7
        assert s.neg_lower(0.05) == 2

    def test_bounds_bracket_estimate(self):
        s = SampledStats(pos_hits=3, pos_n=8, pos_total=40, neg_hits=2, neg_n=8, neg_total=30)
        assert s.pos_upper(0.05) >= s.est_pos()
        assert s.neg_lower(0.05) <= s.est_neg()
        assert 0 <= s.pos_upper(0.05) <= 40
        assert 0 <= s.neg_lower(0.05) <= 30

    def test_maybe_good_full_sample_equals_is_good(self):
        config = ILPConfig(min_pos=3, noise=1)
        good = SampledStats(pos_hits=5, pos_n=10, pos_total=10, neg_hits=1, neg_n=6, neg_total=6)
        bad_pos = SampledStats(pos_hits=2, pos_n=10, pos_total=10, neg_hits=0, neg_n=6, neg_total=6)
        bad_neg = SampledStats(pos_hits=5, pos_n=10, pos_total=10, neg_hits=2, neg_n=6, neg_total=6)
        assert good.maybe_good(config)
        assert not bad_pos.maybe_good(config)
        assert not bad_neg.maybe_good(config)

    def test_screen_is_optimistic_on_partial_samples(self):
        # 0/2 positive hits in a sample of 2-of-40 cannot *confidently*
        # rule the rule out — the upper bound stays above min_pos.
        config = ILPConfig(min_pos=2, noise=0)
        s = SampledStats(pos_hits=0, pos_n=2, pos_total=40, neg_hits=0, neg_n=2, neg_total=2)
        assert s.maybe_good(config)


class TestEvaluateSampled:
    def test_hits_match_exact_bits_restricted_to_sample(
        self, family_kb, family_pos, family_neg, family_config
    ):
        engine = Engine(family_kb, family_config.engine_budget())
        store = ExampleStore(family_pos, family_neg)
        sampler = make_sampler(
            store.n_pos, store.n_neg, 3, fraction=0.5, delta=0.05, min_stratum=2
        )
        rule = parse_clause("daughter(A, B) :- parent(B, A), female(A).")
        exact = store.evaluate(engine, rule)
        ss = store.evaluate_sampled(engine, rule, sampler)
        assert ss.pos_hits == popcount(exact.pos_bits & sampler.pos_mask & store.alive)
        assert ss.neg_hits == popcount(exact.neg_bits & sampler.neg_mask)
        assert ss.pos_total == store.remaining
        assert ss.neg_total == store.n_neg

    def test_sample_cache_cleared_with_exact(self, family_kb, family_pos, family_neg, family_config):
        engine = Engine(family_kb, family_config.engine_budget())
        store = ExampleStore(family_pos, family_neg)
        sampler = make_sampler(store.n_pos, store.n_neg, 0, fraction=1.0, delta=0.05, min_stratum=1)
        rule = parse_clause("daughter(A, B) :- parent(B, A).")
        store.evaluate_sampled(engine, rule, sampler)
        assert store._sample_cache
        store.clear_cache()
        assert not store._sample_cache


class TestCertificates:
    ENTRY = ClauseCertificate(
        clause="daughter(A, B) :- parent(B, A), female(A).",
        est_pos=4,
        est_neg=0,
        sample_pos_n=3,
        sample_neg_n=2,
        exact_pos=5,
        exact_neg=0,
        exact_good=True,
    )
    CERT = CoverageCertificate(
        seed=7,
        fraction=0.25,
        delta=0.05,
        min_stratum=16,
        strata=(("pos", 3, 5), ("neg", 2, 4)),
        entries=(ENTRY, ClauseCertificate("p.", 0, 0, 0, 0, 1, 0, True, deferred=True)),
    )

    def test_ok_requires_every_recheck(self):
        assert self.CERT.ok
        failed = self.CERT.replace(
            entries=self.CERT.entries + (ClauseCertificate("q.", 1, 1, 1, 1, 0, 9, False),)
        )
        assert not failed.ok

    def test_summary_mentions_deferred_and_outcome(self):
        s = self.CERT.summary()
        assert "2 accepted clauses" in s and "ok" in s and "1 deferred" in s

    def test_dict_roundtrip(self):
        assert CoverageCertificate.from_dict(self.CERT.to_dict()) == self.CERT

    def test_wire_roundtrip(self):
        data = certificate_to_bytes(self.CERT)
        assert certificate_from_bytes(data) == self.CERT

    def test_foreign_payload_rejected(self):
        from repro.parallel.messages import Stop
        from repro.parallel.wire import WireError, encode_always

        with pytest.raises(WireError):
            certificate_from_bytes(encode_always(Stop()))

    def test_truncated_payload_rejected(self):
        data = certificate_to_bytes(self.CERT)
        from repro.parallel.wire import WireError

        with pytest.raises((WireError, ValueError)):
            certificate_from_bytes(data[: len(data) // 2])

    def test_clause_certificate_deferred_when_no_screen_ran(self):
        config = ILPConfig(min_pos=1, noise=0)
        ent = clause_certificate("p.", None, 3, 0, config)
        assert ent.deferred and ent.exact_good
        assert ent.sample_pos_n == 0


class TestSampledMdie:
    def test_certificate_issued_and_ok(
        self, family_kb, family_pos, family_neg, family_modes, family_config
    ):
        config = family_config.replace(
            coverage_sampling=True, sample_fraction=0.5, sample_min=2
        )
        res = mdie(family_kb, family_pos, family_neg, family_modes, config, seed=1)
        assert res.certificate is not None
        assert res.certificate.ok
        assert res.certificate.seed == 1
        assert len(res.certificate.entries) == len(res.theory)
        for entry in res.certificate.entries:
            assert is_good(entry.exact_pos, entry.exact_neg, config)
        eng = Engine(family_kb, config.engine_budget())
        assert accuracy(eng, res.theory, family_pos, family_neg) == 100.0

    def test_reference_path_has_no_certificate(
        self, family_kb, family_pos, family_neg, family_modes, family_config
    ):
        res = mdie(family_kb, family_pos, family_neg, family_modes, family_config, seed=1)
        assert res.certificate is None

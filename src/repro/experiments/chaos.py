"""Chaos harness: a served instance driven through a fault plan, gated on invariants.

``repro loadgen --chaos plan.json`` (and the chaos section of
``benchmarks/bench_service.py``) run **two self-hosted legs** of the
same workload — one fault-free, one under a
:class:`~repro.fault.service.ServiceFaultPlan` — and compare them:

* **Result parity** — the canonical batched coverage query must return
  a bit-identical decision vector on both legs.  Injected resets, lease
  failures, slot crashes and torn writes may cost latency; they must
  never change an answer.
* **Zero duplicated jobs** — every learning job is submitted *twice*
  with the same idempotency key (simulating the retry-after-lost-
  response case the plan's ``when="after"`` resets create for real),
  and re-submitted again after a restart over the same state dir.  The
  job count must equal the number of distinct keys.
* **Zero corrupt records** — after the graceful drain and restart, the
  recovered scheduler must report an empty quarantine: torn writes are
  confined to the atomic-rename window and never reach ``job.rec``.
* **Bounded degradation** — client retries must absorb every injected
  fault: the chaos leg's loadgen report has to finish with zero errors,
  and the tail-latency delta vs the fault-free leg is *reported* (not
  gated — it is the honest price of the chaos).

Each leg is the full service lifecycle: start, submit (twice), drive
open-loop query traffic, wait for the jobs, snapshot stats, **graceful
drain**, restart over the same state dir, verify recovery, shut down.
Running the fault-free leg through the identical sequence keeps the
comparison honest — both legs pay the same lifecycle overheads.
"""

from __future__ import annotations

import itertools
import os
import tempfile
import threading
from typing import Optional

from repro.datasets import make_dataset
from repro.experiments.loadgen import run_loadgen
from repro.experiments.serviceload import _published_theory
from repro.fault.service import ServiceFaultPlan, normalize_service_plan
from repro.service.jobs import JobSpec

__all__ = ["run_chaos", "chaos_passed", "chaos_report_lines"]


def _start_server(
    state_dir: str,
    registry_dir: str,
    fault_plan: Optional[ServiceFaultPlan] = None,
    slots: int = 2,
    query_shards: int = 2,
    max_queue: int = 16,
    max_inflight: int = 64,
):
    """One in-process server on an ephemeral port; returns (thread, server)."""
    from repro.service.server import serve

    ready = threading.Event()
    box: dict = {}

    def _ready(server) -> None:
        box["server"] = server
        ready.set()

    thread = threading.Thread(
        target=serve,
        kwargs=dict(
            host="127.0.0.1", port=0, slots=slots,
            state_dir=state_dir, registry_dir=registry_dir,
            query_shards=query_shards, max_queue=max_queue,
            max_inflight=max_inflight, fault_plan=fault_plan, ready=_ready,
        ),
        daemon=True,
    )
    thread.start()
    if not ready.wait(timeout=60):
        raise RuntimeError("chaos server did not come up")
    return thread, box["server"]


def _run_leg(
    label: str,
    plan: Optional[ServiceFaultPlan],
    root: str,
    registry_dir: str,
    theory: str,
    examples: list[str],
    dataset: str,
    seed: int,
    n_jobs: int,
    requests: int,
    rate: float,
    pattern: str,
    shards: int,
    concurrency: int,
    retries: int,
) -> dict:
    """One full lifecycle (serve → load → drain → restart → verify)."""
    from repro.service.server import ServiceClient

    state_dir = os.path.join(root, f"state-{label}")
    keys = [f"chaos-{label}-{i}" for i in range(n_jobs)]
    thread, server = _start_server(state_dir, registry_dir, fault_plan=plan)
    port = server.port

    def make_client(**kw):
        return ServiceClient(
            host="127.0.0.1", port=port,
            retries=retries, backoff=0.02, backoff_max=0.5, **kw,
        )

    with make_client() as client:
        job_ids = [
            client.submit(
                JobSpec(dataset=dataset, algo="mdie", seed=seed + i, preemptible=True),
                idempotency_key=key,
            )
            for i, key in enumerate(keys)
        ]
        # The retry-after-lost-response case, forced: resend every submit
        # with its original key.  Dedup must hand back the same ids.
        resent = [
            client.submit(
                JobSpec(dataset=dataset, algo="mdie", seed=seed + i, preemptible=True),
                idempotency_key=key,
            )
            for i, key in enumerate(keys)
        ]
        load = run_loadgen(
            make_client, theory, examples,
            n_requests=requests, rate=rate, pattern=pattern, seed=seed,
            shards=shards, concurrency=concurrency,
        )
        job_states = {j: client.wait(j, timeout=600).get("state") for j in job_ids}
        canonical = client.query(theory, examples, shards=shards)
        stats = client.request({"op": "stats"})

    # Graceful drain at the tail — the SIGTERM handler's code path.
    server.initiate_drain()
    thread.join(timeout=120)
    if thread.is_alive():
        raise RuntimeError(f"chaos {label} leg: server did not drain")

    # Restart plain (no plan) over the same state dir: recovery must see
    # every job exactly once and quarantine nothing.
    thread, server = _start_server(state_dir, registry_dir, fault_plan=None)
    try:
        with ServiceClient(host="127.0.0.1", port=server.port) as client:
            recovered = client.request({"op": "jobs"})["jobs"]
            replayed = [
                client.submit(
                    JobSpec(dataset=dataset, algo="mdie", seed=seed + i, preemptible=True),
                    idempotency_key=key,
                )
                for i, key in enumerate(keys)
            ]
            after = client.request({"op": "stats"})
            requery = client.query(theory, examples, shards=shards)
            client.request({"op": "shutdown"})
    finally:
        thread.join(timeout=60)

    dedup_ok = resent == job_ids and replayed == job_ids
    return {
        "load": load,
        "jobs": job_states,
        "canonical": {"covered": canonical.get("covered"), "n": canonical.get("n")},
        "requery": {"covered": requery.get("covered"), "n": requery.get("n")},
        "stats": stats,
        "recovered_jobs": len(recovered),
        "duplicated_jobs": (len(recovered) - n_jobs) + (0 if dedup_ok else 1),
        "corrupt_records": len(
            after.get("resilience", {}).get("quarantined", [])
        ),
        "faults": stats.get("faults"),
    }


def run_chaos(
    plan: ServiceFaultPlan,
    dataset: str = "trains",
    seed: int = 0,
    scale: str = "small",
    batch: int = 50,
    requests: int = 20,
    rate: float = 50.0,
    pattern: str = "burst",
    shards: int = 2,
    n_jobs: int = 2,
    concurrency: int = 4,
    retries: int = 5,
    root: Optional[str] = None,
) -> dict:
    """Fault-free leg vs chaos leg of the same served workload.

    Returns a report whose ``invariants`` block carries the gates
    (``parity``, ``duplicated_jobs``, ``corrupt_records``,
    ``load_errors`` — all must be true/zero for a passing run) and whose
    ``tail_delta_ms`` block carries the honest price (p95/p99 latency
    deltas of the chaos leg over the baseline).
    """
    if normalize_service_plan(plan) is None:
        raise ValueError("chaos runs need a non-empty fault plan")
    own_tmp = None
    if root is None:
        own_tmp = tempfile.TemporaryDirectory(prefix="repro-chaos-")
        root = own_tmp.name
    try:
        reg_root = os.path.join(root, "registry")
        ds, _learned, theory, _registry = _published_theory(
            reg_root, dataset, seed, scale
        )
        pool = itertools.cycle(str(e) for e in (*ds.pos, *ds.neg))
        examples = [next(pool) for _ in range(batch)]
        common = dict(
            root=root, registry_dir=reg_root, theory=theory, examples=examples,
            dataset=dataset, seed=seed, n_jobs=n_jobs, requests=requests,
            rate=rate, pattern=pattern, shards=shards,
            concurrency=concurrency, retries=retries,
        )
        baseline = _run_leg("baseline", None, **common)
        chaos = _run_leg("chaos", plan, **common)
        parity = (
            baseline["canonical"] == chaos["canonical"]
            and chaos["canonical"] == chaos["requery"]
        )
        deltas = {}
        for q in ("p95_ms", "p99_ms"):
            base_q = baseline["load"].get("latency", {}).get(q)
            chaos_q = chaos["load"].get("latency", {}).get(q)
            if base_q is not None and chaos_q is not None:
                deltas[q] = round(chaos_q - base_q, 3)
        injected = chaos["faults"] or {}
        return {
            "dataset": dataset,
            "batch": batch,
            "requests": requests,
            "n_jobs": n_jobs,
            "plan_events": {
                "resets": len(plan.resets),
                "leases": len(plan.leases),
                "slot_crashes": len(plan.crashes),
                "persist": len(plan.persist),
            },
            "baseline": baseline,
            "chaos": chaos,
            "injected": injected.get("injected", []),
            "tail_delta_ms": deltas,
            "invariants": {
                "parity": parity,
                "duplicated_jobs": chaos["duplicated_jobs"],
                "corrupt_records": chaos["corrupt_records"],
                "load_errors": chaos["load"]["errors"],
                "jobs_done": all(s == "done" for s in chaos["jobs"].values()),
            },
        }
    finally:
        if own_tmp is not None:
            own_tmp.cleanup()


def chaos_passed(report: dict) -> bool:
    """True when every gated invariant of a chaos report holds."""
    inv = report["invariants"]
    return bool(
        inv["parity"]
        and inv["jobs_done"]
        and inv["duplicated_jobs"] == 0
        and inv["corrupt_records"] == 0
        and inv["load_errors"] == 0
    )


def chaos_report_lines(report: dict) -> list[str]:
    """Human-readable summary of a :func:`run_chaos` report."""
    inv = report["invariants"]
    ev = report["plan_events"]
    lines = [
        f"% chaos plan: {ev['resets']} reset(s), {ev['leases']} lease fault(s), "
        f"{ev['slot_crashes']} slot crash(es), {ev['persist']} torn write(s)",
    ]
    for line in report["injected"]:
        lines.append(f"%   injected: {line}")
    for leg in ("baseline", "chaos"):
        stats = report[leg]["load"].get("latency")
        if stats:
            lines.append(
                f"% {leg}: p50={stats['p50_ms']}ms p95={stats['p95_ms']}ms "
                f"p99={stats['p99_ms']}ms errors={report[leg]['load']['errors']}"
            )
    if report["tail_delta_ms"]:
        deltas = ", ".join(
            f"{k.replace('_ms', '')}+{v}ms" if v >= 0 else f"{k.replace('_ms', '')}{v}ms"
            for k, v in report["tail_delta_ms"].items()
        )
        lines.append(f"% tail price of chaos: {deltas}")
    verdict = "PASS" if chaos_passed(report) else "FAIL"
    lines.append(
        f"% invariants [{verdict}]: parity={inv['parity']} "
        f"duplicated_jobs={inv['duplicated_jobs']} "
        f"corrupt_records={inv['corrupt_records']} "
        f"load_errors={inv['load_errors']} jobs_done={inv['jobs_done']}"
    )
    return lines

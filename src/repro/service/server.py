"""The service front door: a JSON-lines socket API (stdlib only).

Protocol
--------
One request per line, one response per line, both JSON objects over a
plain TCP connection (``nc localhost 7341`` works).  Every response has
``"ok"``; failures carry ``"error"`` instead of payload fields::

    → {"op": "submit", "spec": {"dataset": "trains", "algo": "p2mdie", "p": 2}}
    ← {"ok": true, "job": "job-0001"}
    → {"op": "query", "theory": "trains-demo", "examples": ["eastbound(t1)"]}
    ← {"ok": true, "n": 1, "n_covered": 1, "covered": [true]}

Operations: ``ping``, ``submit``, ``jobs``, ``status``, ``wait``,
``cancel``, ``query``, ``registry`` (actions ``list`` / ``versions`` /
``show`` / ``diff`` / ``promote``), ``stats``, ``shutdown``.

:class:`Service` is the transport-free core — a request dict in, a
response dict out — so the protocol is unit-testable without sockets and
reusable behind any other transport.  :func:`serve` wraps it in a
threaded ``socketserver`` TCP server (one thread per connection; learning
jobs run in the scheduler's own slot threads, so slow jobs never block
queries).  :class:`ServiceClient` is the matching blocking client used
by the ``repro jobs`` / ``repro serve``-side CLI verbs and the tests.
"""

from __future__ import annotations

import json
import socket
import socketserver
import threading
from typing import Optional

from repro.logic import ParseError, parse_term
from repro.service.jobs import JobSpec
from repro.service.query import QueryEngine
from repro.service.registry import RegistryError, TheoryRegistry
from repro.service.scheduler import JobScheduler, SchedulerError

__all__ = ["Service", "ServiceServer", "ServiceClient", "serve"]


class Service:
    """Transport-free request handler bundling the three subsystems.

    Owns a :class:`JobScheduler` (learning), a :class:`TheoryRegistry`
    (artifacts) and a :class:`QueryEngine` (application).  All handlers
    are thread-safe: the scheduler and registry lock internally, and
    handler dispatch itself is stateless.
    """

    def __init__(
        self,
        slots: int = 2,
        state_dir: Optional[str] = None,
        registry_dir: Optional[str] = None,
        chunk_epochs: int = 1,
    ):
        self.registry = TheoryRegistry(registry_dir) if registry_dir else None
        self.scheduler = JobScheduler(
            slots=slots, state_dir=state_dir, registry=self.registry,
            chunk_epochs=chunk_epochs,
        )
        self.query_engine = QueryEngine(registry=self.registry)
        if state_dir:
            self.scheduler.recover_jobs()

    def close(self, drain: bool = False) -> None:
        self.scheduler.close(drain=drain)

    # -- dispatch ----------------------------------------------------------------

    def handle(self, request: dict) -> dict:
        """Answer one request dict; never raises (errors become fields)."""
        try:
            op = request.get("op")
            handler = getattr(self, f"_op_{op}", None)
            if not isinstance(op, str) or handler is None:
                return {"ok": False, "error": f"unknown op {op!r}"}
            return {"ok": True, **handler(request)}
        except (SchedulerError, RegistryError, ParseError, ValueError, KeyError, TypeError) as exc:
            return {"ok": False, "error": f"{type(exc).__name__}: {exc}"}

    # -- operations --------------------------------------------------------------

    def _op_ping(self, request: dict) -> dict:
        return {"pong": True}

    def _op_submit(self, request: dict) -> dict:
        spec = JobSpec.from_dict(request["spec"])
        if spec.register_as and self.registry is None:
            raise ValueError("register_as needs the server started with a registry dir")
        return {"job": self.scheduler.submit(spec)}

    def _op_jobs(self, request: dict) -> dict:
        return {"jobs": self.scheduler.jobs()}

    def _op_status(self, request: dict) -> dict:
        return self.scheduler.status(request["job"])

    def _op_wait(self, request: dict) -> dict:
        return self.scheduler.wait(request["job"], timeout=request.get("timeout"))

    def _op_cancel(self, request: dict) -> dict:
        return {"cancelled": self.scheduler.cancel(request["job"])}

    def _op_query(self, request: dict) -> dict:
        if self.registry is None:
            raise ValueError("query needs the server started with a registry dir")
        examples = [parse_term(s) for s in request["examples"]]
        result = self.query_engine.query(
            request["theory"], examples, version=request.get("version")
        )
        return {
            "n": result.n,
            "n_covered": result.n_covered,
            "ops": result.ops,
            "covered": result.decisions(),
        }

    def _op_registry(self, request: dict) -> dict:
        if self.registry is None:
            raise ValueError("server started without a registry dir")
        reg = self.registry
        action = request.get("action", "list")
        if action == "list":
            return {
                "theories": [
                    {
                        "name": n,
                        "versions": reg.versions(n),
                        "promoted": reg.promoted_version(n),
                    }
                    for n in reg.names()
                ]
            }
        if action == "versions":
            return {"versions": reg.versions(request["name"])}
        if action == "show":
            record = reg.get(request["name"], request.get("version"))
            return {"record": record.to_dict()}
        if action == "diff":
            diff = reg.diff(request["name"], request["old"], request["new"])
            return {k: [str(c) for c in v] for k, v in diff.items()}
        if action == "promote":
            return {"promoted": reg.promote(request["name"], request["version"])}
        raise ValueError(f"unknown registry action {action!r}")

    def _op_stats(self, request: dict) -> dict:
        jobs = self.scheduler.jobs()
        by_state: dict[str, int] = {}
        for j in jobs:
            by_state[j["state"]] = by_state.get(j["state"], 0) + 1
        return {
            "slots": self.scheduler.slots,
            "jobs": by_state,
            "query": self.query_engine.stats(),
        }

    def _op_shutdown(self, request: dict) -> dict:
        # The transport layer watches for this marker and stops accepting.
        return {"shutdown": True}


class _Handler(socketserver.StreamRequestHandler):
    def handle(self) -> None:  # pragma: no cover - exercised via sockets in tests
        while True:
            line = self.rfile.readline()
            if not line:
                return
            line = line.strip()
            if not line:
                continue
            try:
                request = json.loads(line)
                if not isinstance(request, dict):
                    raise ValueError("request must be a JSON object")
            except ValueError as exc:
                response = {"ok": False, "error": f"bad request: {exc}"}
            else:
                response = self.server.service.handle(request)
            self.wfile.write((json.dumps(response) + "\n").encode("utf-8"))
            self.wfile.flush()
            if response.get("shutdown"):
                self.server.initiate_shutdown()
                return


class ServiceServer(socketserver.ThreadingTCPServer):
    """Threaded JSON-lines TCP server around a :class:`Service`."""

    allow_reuse_address = True
    daemon_threads = True

    def __init__(self, address: tuple[str, int], service: Service):
        super().__init__(address, _Handler)
        self.service = service
        self._shutdown_thread: Optional[threading.Thread] = None

    @property
    def port(self) -> int:
        return self.server_address[1]

    def initiate_shutdown(self) -> None:
        """Stop accepting connections (callable from a handler thread)."""
        if self._shutdown_thread is None:
            self._shutdown_thread = threading.Thread(target=self.shutdown, daemon=True)
            self._shutdown_thread.start()


def serve(
    host: str = "127.0.0.1",
    port: int = 7341,
    slots: int = 2,
    state_dir: Optional[str] = None,
    registry_dir: Optional[str] = None,
    chunk_epochs: int = 1,
    ready=None,
) -> None:
    """Run the service until a ``shutdown`` request (blocking).

    ``port=0`` binds an ephemeral port.  ``ready``, when given, is
    called with the bound :class:`ServiceServer` once the socket is
    listening (tests use it to learn the port; the CLI prints it).
    """
    service = Service(
        slots=slots, state_dir=state_dir, registry_dir=registry_dir,
        chunk_epochs=chunk_epochs,
    )
    with ServiceServer((host, port), service) as server:
        if ready is not None:
            ready(server)
        try:
            server.serve_forever(poll_interval=0.1)
        finally:
            service.close(drain=False)


class ServiceClient:
    """Blocking JSON-lines client for :func:`serve` endpoints.

    ``timeout`` (seconds) bounds *connection setup*; established
    connections block indefinitely by default — ``wait`` requests
    legitimately outlast any fixed socket timeout (learning jobs run for
    minutes), and the server answers every request eventually.  Pass
    ``read_timeout`` to bound individual responses instead.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 7341,
        timeout: float = 60.0,
        read_timeout: Optional[float] = None,
    ):
        self.sock = socket.create_connection((host, port), timeout=timeout)
        self.sock.settimeout(read_timeout)
        self._file = self.sock.makefile("rwb")

    def request(self, payload: dict) -> dict:
        """Send one request; return the decoded response dict."""
        self._file.write((json.dumps(payload) + "\n").encode("utf-8"))
        self._file.flush()
        line = self._file.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        return json.loads(line)

    def close(self) -> None:
        self._file.close()
        self.sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- convenience wrappers ----------------------------------------------------

    def submit(self, spec: JobSpec) -> str:
        resp = self.request({"op": "submit", "spec": spec.to_dict()})
        if not resp.get("ok"):
            raise RuntimeError(resp.get("error", "submit failed"))
        return resp["job"]

    def wait(self, job_id: str, timeout: Optional[float] = None) -> dict:
        return self.request({"op": "wait", "job": job_id, "timeout": timeout})

    def query(self, theory: str, examples: list[str], version: Optional[int] = None) -> dict:
        return self.request(
            {"op": "query", "theory": theory, "examples": examples, "version": version}
        )

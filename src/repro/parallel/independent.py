"""Baseline: independent data-parallel learning (no pipelining).

The third strategy in the design space the paper situates itself in
(§6, Matsui et al.'s "data parallelism"): partition the examples, let
every worker run the *full sequential* covering algorithm on its own
subset with no communication at all, then merge.  The master unions the
local theories, evaluates them globally once, discards rules that are not
globally good, and greedily consumes the rest exactly like P²-MDIE's bag
consumption.

This isolates the value of the *pipeline*: independent learning has the
same data distribution and even less communication, but each rule only
ever saw one subset during search — the quality problem the paper's
rule-streaming is designed to fix ("training on small subsets of the
whole data might reduce the quality of learning").

Fault tolerance: the local covering loop is a pure function of
``(partition, seed, virtual rank)`` — it draws from a freshly derived RNG
stream — so a dead worker's entire contribution is reproducible on any
adopter, and the single merge epoch heals exactly like a P²-MDIE epoch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Union

from repro.backend import Backend, fault_injection_scope, resolve_backend
from repro.cluster.costmodel import CostModel, DEFAULT_COST_MODEL
from repro.cluster.message import Tag
from repro.cluster.network import FAST_ETHERNET, NetworkModel
from repro.cluster.process import ProcContext, SimProcess
from repro.fault.plan import FaultPlan
from repro.fault.recovery import FTMasterMixin, PoolSupervisor
from repro.ilp.bottom import SaturationError, build_bottom, build_bottom_cached
from repro.ilp.config import ILPConfig
from repro.ilp.modes import ModeSet
from repro.ilp.prune import ClauseBag
from repro.ilp.search import learn_rule
from repro.logic.clause import Clause, Theory
from repro.logic.knowledge import KnowledgeBase
from repro.logic.terms import Term
from repro.parallel.master import EpochLog, consume_bag
from repro.parallel.messages import (
    EvaluateRequest,
    EvaluateResult,
    FTPipelineRules,
    LoadExamples,
    PipelineRules,
    RestartPipeline,
    StartPipeline,
    Stop,
)
from repro.parallel import wire
from repro.parallel.p2mdie import (
    P2Result,
    SharedProblem,
    _result_from_run,
    _validate_fault_args,
)
from repro.parallel.partition import partition_examples
from repro.parallel.worker import P2Worker
from repro.util.rng import make_rng

__all__ = ["IndependentWorker", "IndependentMaster", "run_independent"]


class IndependentWorker(P2Worker):
    """A worker whose 'pipeline' never leaves the node.

    Reuses every P2Worker task handler; only ``start_pipeline`` changes —
    instead of one stage of one pipeline, it runs a complete local
    covering loop (sequential MDIE on the local subset) and ships the
    resulting theory to the master.
    """

    def _local_covering(self, shard, width: Optional[int]) -> tuple:
        """Sequential MDIE on one shard's subset (Fig. 1 semantics).

        Draws from a freshly derived RNG stream, so the computation is a
        pure function of (partition, seed, virtual rank) — rerunnable on
        any host, any number of times, with identical output.
        """
        rng = make_rng(self.seed, "worker", shard.virtual_rank)
        store = shard.store
        local_rules = []
        failed = 0
        while True:
            candidates = store.alive & ~failed
            idxs = [i for i in range(store.n_pos) if (candidates >> i) & 1]
            if not idxs:
                break
            i = rng.choice(idxs) if self.config.select_seed_randomly else idxs[0]
            saturate = build_bottom_cached if self.config.saturation_cache else build_bottom
            try:
                bottom = saturate(store.pos[i], self.engine, self.modes, self.config)
            except SaturationError:
                failed |= 1 << i
                continue
            result = learn_rule(self.engine, bottom, store, self.config, width=1)
            if result.best is None:
                failed |= 1 << i
                continue
            local_rules.append(result.best.rule)
            store.kill(result.best.stats.pos_bits)
        # Local kills are provisional — restore liveness so the master's
        # global mark_covered drives the authoritative state.
        store.alive = (1 << store.n_pos) - 1
        if width is not None:
            local_rules = local_rules[:width]
        return tuple(local_rules)

    def _start_pipeline(self, ctx: ProcContext, width: Optional[int]):
        shard = self.shards[self.rank]
        ops0 = self.engine.total_ops
        local_rules = self._local_covering(shard, width)
        yield ctx.compute(self._ops_since(ops0), label="local_mdie")
        yield ctx.send(
            0, PipelineRules(origin=self.rank, rules=local_rules), tag=Tag.RULES
        )

    def _ft_restart(self, ctx: ProcContext, req: RestartPipeline):
        """Fault-tolerant start: run the hosted shard's local covering."""
        handled = yield from self._defer_or_forward(ctx, req.origin, req, Tag.START_PIPELINE)
        if handled:
            return
        shard = self.shards[req.origin]
        ops0 = self.engine.total_ops
        local_rules = self._local_covering(shard, req.width)
        yield ctx.compute(self._ops_since(ops0), label="local_mdie")
        yield ctx.send(
            0,
            FTPipelineRules(epoch=req.epoch, origin=req.origin, rules=local_rules),
            tag=Tag.RULES,
        )


class IndependentMaster(FTMasterMixin, SimProcess):
    """Union local theories, filter globally, consume greedily."""

    def __init__(
        self,
        n_workers: int,
        total_pos: int,
        config: ILPConfig,
        width=None,
        fault_plan: Optional[FaultPlan] = None,
        spares: int = 0,
    ):
        super().__init__(0)
        self.n_workers = n_workers
        self.total_pos = total_pos
        self.config = config
        self.width = width
        self.fault_plan = fault_plan
        self.ft: Optional[PoolSupervisor] = (
            PoolSupervisor(n_workers, spares=spares, timeout=fault_plan.timeout)
            if fault_plan is not None
            else None
        )
        self.fault_events: list[str] = []
        self._ft_current_log: Optional[EpochLog] = None
        self.theory = Theory()
        self.epoch_logs: list[EpochLog] = []
        self.remaining = total_pos

    @property
    def epochs(self) -> int:
        return len(self.epoch_logs)

    def _workers(self):
        return list(range(1, self.n_workers + 1))

    def _global_eval(self, ctx, clauses):
        yield ctx.bcast(EvaluateRequest(rules=tuple(clauses)), tag=Tag.EVALUATE, dsts=self._workers())
        totals = [[0, 0] for _ in clauses]
        for _ in self._workers():
            msg = yield ctx.recv(tag=Tag.RESULT)
            res: EvaluateResult = msg.payload
            for i, rs in enumerate(res.stats):
                totals[i][0] += rs.pos
                totals[i][1] += rs.neg
        yield ctx.compute(len(clauses) + 1, label="aggregate")
        return totals

    def run(self, ctx: ProcContext):
        if self.ft is not None:
            yield from self._run_ft(ctx)
            return
        for k in self._workers():
            yield ctx.send(k, LoadExamples(partition_id=k), tag=Tag.LOAD_EXAMPLES)
        for k in self._workers():
            yield ctx.send(k, StartPipeline(width=self.width), tag=Tag.START_PIPELINE)
        bag = ClauseBag(self.config.clause_fingerprints)
        for _ in self._workers():
            msg = yield ctx.recv(tag=Tag.RULES)
            for sr in msg.payload.rules:
                bag.add(sr.clause)
        log = EpochLog(epoch=1, bag_size=bag.reported_size)

        if bag:
            yield from consume_bag(self, ctx, bag, log, self._global_eval)
        self.epoch_logs.append(log)
        yield ctx.bcast(Stop(), tag=Tag.STOP, dsts=self._workers())

    # -- fault-tolerant body ------------------------------------------------------
    def _ft_history(self):
        current = self._ft_current_log.accepted if self._ft_current_log is not None else ()
        # Independent workers never draw pipeline seeds from the shared
        # stream — the local covering loop derives its own — so replay is
        # kills only.
        return ((), tuple(current), False, False, 1)

    def _run_ft(self, ctx: ProcContext):
        self._ft_init()
        for k in self._workers():
            yield ctx.send(k, LoadExamples(partition_id=k), tag=Tag.LOAD_EXAMPLES)
        log = EpochLog(epoch=1, bag_size=0)
        self._ft_current_log = log
        rules_by_origin = yield from self._ft_pipeline_round(ctx, self.width, 1)
        bag = ClauseBag(self.config.clause_fingerprints)
        for origin in sorted(rules_by_origin):
            for sr in rules_by_origin[origin]:
                bag.add(sr.clause)
        log.bag_size = bag.reported_size
        if bag:
            yield from consume_bag(self, ctx, bag, log, self._ft_eval_round)
        self.epoch_logs.append(log)
        self._ft_current_log = None
        yield from self._ft_epoch_pulse(ctx, log)
        yield ctx.bcast(Stop(), tag=Tag.STOP, dsts=self.ft.hosts)


def run_independent(
    kb: KnowledgeBase,
    pos: Sequence[Term],
    neg: Sequence[Term],
    modes: ModeSet,
    config: ILPConfig,
    p: int,
    width: Optional[int] = None,
    seed: int = 0,
    network: NetworkModel = FAST_ETHERNET,
    cost_model: CostModel = DEFAULT_COST_MODEL,
    backend: Union[Backend, str, None] = None,
    fault_plan: Optional[FaultPlan] = None,
    spares: int = 0,
) -> P2Result:
    """Run the independent-learning baseline; same artifact type as
    :func:`repro.parallel.p2mdie.run_p2mdie` for direct comparison."""
    plan = _validate_fault_args(fault_plan, spares, p)
    rng = make_rng(seed, "partition")
    partitions = partition_examples(pos, neg, p, rng)
    shared = SharedProblem(kb, partitions, modes, config)
    master = IndependentMaster(
        n_workers=p,
        total_pos=len(pos),
        config=config,
        width=width,
        fault_plan=plan,
        spares=spares,
    )
    workers = [
        IndependentWorker(rank, shared, p, seed=seed) for rank in range(1, p + spares + 1)
    ]
    bk = resolve_backend(backend, network=network, cost_model=cost_model, fault_plan=plan)
    with wire.configured(config.wire_codec), fault_injection_scope(bk, plan):
        run = bk.run([master, *workers])
    return _result_from_run(run)

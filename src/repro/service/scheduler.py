"""Concurrent learning-job scheduler over a shared pool of backend slots.

The scheduler owns ``slots`` worker threads.  Each thread pops the
highest-priority queued job (ties FIFO) and executes it through
:func:`repro.service.jobs.run_job`.  Jobs on the ``local`` backend do
their work in real child processes, so slots give genuine parallelism;
``sim`` jobs interleave under the GIL but still share the queue,
priorities and lifecycle.

Lifecycle::

    queued -> running -> done | failed
       \\         \\-> cancelled   (preemptible jobs: between chunks)
        \\-> cancelled             (any queued job)

**Preemption & resume.**  A job with ``preemptible=True`` (and a
checkpoint-capable algorithm) runs in epoch *chunks*: each chunk resumes
from the newest checkpoint and advances ``chunk_epochs`` covering epochs
(reusing :mod:`repro.fault.checkpoint` — the same machinery behind
``repro resume``).  Between chunks the scheduler honours cancellation
and shutdown requests; because every chunk boundary is an ordinary
checkpoint, the final theory is bit-identical to a one-shot run.

**Durability.**  With a ``state_dir``, every job persists a wire-encoded
:class:`~repro.service.jobs.JobRecord` per state transition plus its
checkpoints, and a fresh scheduler over the same directory
:meth:`~JobScheduler.recover_jobs` — interrupted (``running``) and
``queued`` jobs are re-queued, resuming mid-run where a checkpoint
exists.  Record writes are atomic-with-fsync
(:func:`repro.util.atomicio.atomic_write_bytes`), so a crash mid-write
leaves the previous record, never a torn one; records that are
nonetheless undecodable (disk damage, version skew) are *quarantined*
by ``recover_jobs`` — renamed aside and reported — instead of taking
the whole recovery down.

**Idempotent submission.**  ``submit(spec, idempotency_key=...)``
returns the already-created job when the key was seen before (the key
is persisted in the record, so the dedup map survives restarts).  This
is what makes client-side retries safe: a submit whose *response* was
lost to a connection reset is simply re-sent, and the job is created
exactly once.

**Self-healing slots.**  A slot thread that dies mid-pick (only ever
via injected :class:`~repro.fault.service.SlotCrash` faults — real job
exceptions are contained per-job) re-queues its orphaned ``running``
job under the same id and respawns in place, so a crashed slot costs
latency, never a lost or duplicated job.
"""

from __future__ import annotations

import heapq
import os
import tempfile
import threading
from dataclasses import dataclass, field
from typing import Optional

from repro.fault.service import InjectedFault
from repro.parallel import wire
from repro.service.errors import Overloaded
from repro.service.jobs import JobOutcome, JobRecord, JobSpec, OutcomeSummary, run_job
from repro.util.atomicio import atomic_write_bytes
from repro.util.log import get_logger

_log = get_logger("repro.scheduler")

__all__ = ["JobScheduler", "SchedulerError", "TERMINAL_STATES"]

#: states a job never leaves.
TERMINAL_STATES = ("done", "failed", "cancelled")


class SchedulerError(RuntimeError):
    """Unknown job id, bad transition, or use after close."""


class _SlotCrash(BaseException):
    """Injected slot-thread death; escapes the per-job isolation boundary.

    Deliberately a BaseException: the worker loop's per-job ``except
    BaseException`` guard must *not* swallow it into a ``failed``
    transition — a crashed slot is a lost thread, not a bad job.
    """

    def __init__(self, job_id: str):
        super().__init__(job_id)
        self.job_id = job_id


@dataclass
class _Job:
    """Scheduler-internal mutable job handle."""

    record: JobRecord
    outcome: Optional[JobOutcome] = None
    cancel: threading.Event = field(default_factory=threading.Event)
    #: owned TemporaryDirectory when the scheduler has no state_dir.
    _tmp: Optional[tempfile.TemporaryDirectory] = None

    def cleanup_tmp(self) -> None:
        """Drop the owned checkpoint temp dir (terminal states only)."""
        if self._tmp is not None:
            self._tmp.cleanup()
            self._tmp = None


class JobScheduler:
    """Run many learning jobs concurrently over ``slots`` worker threads.

    Parameters
    ----------
    slots:
        Number of jobs executed concurrently (the shared backend pool).
    state_dir:
        Durable root: per-job records + checkpoints live in
        ``state_dir/<job-id>/``.  ``None`` keeps everything in memory
        (preemptible jobs checkpoint into a temporary directory).
    registry:
        Optional :class:`~repro.service.registry.TheoryRegistry`; jobs
        with ``register_as`` publish their learned theory on success.
    chunk_epochs:
        Epochs per chunk for preemptible jobs (cancellation latency
        knob; smaller = more responsive, more per-chunk setup).
    max_queue:
        Admission bound: reject submits once this many jobs are already
        queued (0 = unbounded).  Rejection is an
        :class:`~repro.service.errors.Overloaded` fault carrying a
        ``retry_after`` hint, so shed clients back off instead of
        queueing forever.
    fault_injector:
        Optional :class:`~repro.fault.service.ServiceFaultInjector`
        driving deterministic slot crashes and persistence-write
        failures (chaos testing only; None in production).
    start:
        Start worker threads immediately (pass ``False`` to stage jobs
        first — used by tests and by ``recover_jobs``-then-start flows).
    """

    def __init__(
        self,
        slots: int = 2,
        state_dir: Optional[str] = None,
        registry=None,
        chunk_epochs: int = 1,
        max_queue: int = 0,
        fault_injector=None,
        start: bool = True,
    ):
        if slots < 1:
            raise ValueError("slots must be >= 1")
        if chunk_epochs < 1:
            raise ValueError("chunk_epochs must be >= 1")
        if max_queue < 0:
            raise ValueError("max_queue must be >= 0 (0 = unbounded)")
        self.slots = slots
        self.state_dir = state_dir
        self.registry = registry
        self.chunk_epochs = chunk_epochs
        self.max_queue = max_queue
        self._injector = fault_injector
        self._lock = threading.Lock()
        self._cv = threading.Condition(self._lock)
        self._jobs: dict[str, _Job] = {}
        self._queue: list[tuple[int, int, str]] = []  # (-priority, seq, job_id)
        self._seq = 0
        self._stop = False
        self._closed = False
        self._threads: list[threading.Thread] = []
        #: idempotency key -> job id (rebuilt from records on recovery).
        self._idem: dict[str, str] = {}
        #: job ids whose records could not be decoded during recovery.
        self.quarantined: list[str] = []
        #: durable writes that failed (record kept in memory; rewritten
        #: at the next transition).
        self.persist_errors = 0
        #: slot threads respawned after an (injected) crash.
        self.slot_crashes = 0
        if state_dir:
            os.makedirs(state_dir, exist_ok=True)
        self._started = False
        if start:
            self.start()

    # -- lifecycle ---------------------------------------------------------------

    def start(self) -> None:
        """Start the worker threads (idempotent)."""
        if self._started:
            return
        self._started = True
        for i in range(self.slots):
            t = threading.Thread(
                target=self._slot_main, name=f"repro-job-slot-{i}", daemon=True
            )
            t.start()
            self._threads.append(t)

    def close(self, drain: bool = True, timeout: Optional[float] = None) -> None:
        """Shut the scheduler down.

        ``drain=True`` waits for every queued/running job to reach a
        terminal state first.  ``drain=False`` stops as soon as possible:
        queued jobs stay ``queued`` and preemptible running jobs park at
        their next chunk boundary, still ``running`` — both are
        re-queued by :meth:`recover_jobs` on a fresh scheduler over the
        same ``state_dir``.
        """
        if drain:
            self.wait_all(timeout=timeout)
        with self._cv:
            self._stop = True
            self._closed = True
            self._cv.notify_all()
        for t in self._threads:
            t.join(timeout=timeout)

    def __enter__(self) -> "JobScheduler":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.close(drain=exc == (None, None, None))

    # -- submission & queries ----------------------------------------------------

    def submit(self, spec: JobSpec, idempotency_key: Optional[str] = None) -> str:
        """Queue one job; returns its id (``job-NNNN``, submission order).

        With an ``idempotency_key``, re-submitting the same key returns
        the id of the job it created the first time — a retried submit
        whose response was lost never duplicates work.  Keys are
        persisted in the job record, so dedup survives restarts.
        """
        with self._cv:
            if self._closed:
                raise SchedulerError("scheduler is closed")
            if idempotency_key is not None:
                existing = self._idem.get(idempotency_key)
                if existing is not None:
                    return existing
            if self.max_queue:
                queued = sum(
                    1 for j in self._jobs.values() if j.record.state == "queued"
                )
                if queued >= self.max_queue:
                    raise Overloaded(
                        f"job queue full ({queued} queued, cap {self.max_queue})",
                        retry_after=0.25,
                    )
            self._seq += 1
            job_id = f"job-{self._seq:04d}"
            record = JobRecord(
                job_id=job_id,
                seq=self._seq,
                spec=spec,
                state="queued",
                idem_key=idempotency_key,
            )
            job = _Job(record=record)
            self._jobs[job_id] = job
            if idempotency_key is not None:
                self._idem[idempotency_key] = job_id
            self._persist(job)
            heapq.heappush(self._queue, (-spec.priority, self._seq, job_id))
            self._cv.notify()
            return job_id

    def lookup_idempotent(self, key: str) -> Optional[str]:
        """The job id an idempotency key already created, or None."""
        with self._lock:
            return self._idem.get(key)

    def _get(self, job_id: str) -> _Job:
        try:
            return self._jobs[job_id]
        except KeyError:
            raise SchedulerError(f"unknown job {job_id!r}") from None

    def status(self, job_id: str) -> dict:
        """Plain-data status of one job (includes the outcome when done)."""
        with self._lock:
            job = self._get(job_id)
            d = job.record.to_dict()
            if job.outcome is not None:
                d["outcome"] = job.outcome.summary()
            return d

    def jobs(self) -> list[dict]:
        """Status of every known job, in submission order."""
        with self._lock:
            return [j.record.to_dict() for j in sorted(self._jobs.values(), key=lambda j: j.record.seq)]

    def result(self, job_id: str) -> JobOutcome:
        """The outcome of a ``done`` job (raises otherwise)."""
        with self._lock:
            job = self._get(job_id)
            if job.record.state != "done":
                raise SchedulerError(f"job {job_id} is {job.record.state}, not done")
            if job.outcome is None:
                raise SchedulerError(
                    f"job {job_id} finished under a previous scheduler; its outcome "
                    "is not retained across restarts (published theories live in "
                    "the registry)"
                )
            return job.outcome

    def cancel(self, job_id: str) -> bool:
        """Request cancellation.

        Queued jobs cancel immediately.  A *running* preemptible job is
        flagged and parks ``cancelled`` at its next chunk boundary
        (checkpoints retained).  A running non-preemptible job cannot be
        interrupted — returns ``False`` (it will still run to
        completion).  Terminal jobs return ``False``.
        """
        with self._cv:
            job = self._get(job_id)
            state = job.record.state
            if state == "queued":
                self._transition(job, "cancelled")
                self._cv.notify_all()
                return True
            spec = job.record.spec
            if state == "running" and spec.preemptible and spec.checkpointable:
                # (JobSpec validation rejects preemptible non-checkpointable
                # specs; the checkpointable guard is defense in depth — the
                # flag is only honoured on the chunked path.)
                job.cancel.set()
                return True
            return False

    def wait(self, job_id: str, timeout: Optional[float] = None) -> dict:
        """Block until the job reaches a terminal state; returns status."""
        with self._cv:
            job = self._get(job_id)
            ok = self._cv.wait_for(
                lambda: job.record.state in TERMINAL_STATES, timeout=timeout
            )
            if not ok:
                raise SchedulerError(f"timed out waiting for {job_id}")
        return self.status(job_id)

    def wait_all(self, timeout: Optional[float] = None) -> None:
        """Block until no job is queued or running."""
        with self._cv:
            ok = self._cv.wait_for(
                lambda: all(
                    j.record.state in TERMINAL_STATES for j in self._jobs.values()
                ),
                timeout=timeout,
            )
            if not ok:
                raise SchedulerError("timed out draining the job queue")

    # -- durability --------------------------------------------------------------

    def _job_dir(self, job_id: str) -> Optional[str]:
        return os.path.join(self.state_dir, job_id) if self.state_dir else None

    def _persist(self, job: _Job) -> None:
        jdir = self._job_dir(job.record.job_id)
        if jdir is None:
            return
        os.makedirs(jdir, exist_ok=True)
        data = wire.encode_always(job.record)
        hook = (
            self._injector.persist_hook("job") if self._injector is not None else None
        )
        try:
            atomic_write_bytes(os.path.join(jdir, "job.rec"), data, fail_hook=hook)
        except (InjectedFault, OSError):
            # In-memory state stays authoritative and the next transition
            # rewrites the whole record; atomicity guarantees the on-disk
            # copy is still the previous consistent one, never a torn one.
            self.persist_errors += 1

    def recover_jobs(self) -> list[str]:
        """Reload jobs persisted under ``state_dir`` by a prior scheduler.

        ``queued`` and ``running`` records are re-queued (a ``running``
        job resumes from its newest checkpoint, where one exists —
        non-checkpointed interrupted jobs simply start over, which is
        safe because job execution is deterministic and side-effect-free
        until completion).  Terminal records are loaded for status only.
        Records that fail to decode (disk damage, version skew) are
        quarantined — renamed to ``job.rec.corrupt`` and listed in
        :attr:`quarantined` — instead of aborting the whole recovery.
        Returns the re-queued job ids.
        """
        if not self.state_dir:
            raise SchedulerError("recover_jobs needs a state_dir")
        requeued: list[str] = []
        with self._cv:
            for name in sorted(os.listdir(self.state_dir)):
                rec_path = os.path.join(self.state_dir, name, "job.rec")
                if not os.path.isfile(rec_path) or name in self._jobs:
                    continue
                try:
                    with open(rec_path, "rb") as fh:
                        record = wire.decode(fh.read())
                    if not isinstance(record, JobRecord):
                        raise ValueError(f"{rec_path} does not hold a JobRecord")
                except Exception:
                    # Quarantine, don't crash: one damaged record must not
                    # take down recovery of every healthy job around it.
                    try:
                        os.replace(rec_path, rec_path + ".corrupt")
                    except OSError:
                        pass
                    self.quarantined.append(name)
                    continue
                job = _Job(record=record)
                self._jobs[record.job_id] = job
                if record.idem_key is not None:
                    self._idem[record.idem_key] = record.job_id
                self._seq = max(self._seq, record.seq)
                if record.state in ("queued", "running"):
                    record = record.replace(state="queued")
                    job.record = record
                    self._persist(job)
                    heapq.heappush(
                        self._queue, (-record.spec.priority, record.seq, record.job_id)
                    )
                    requeued.append(record.job_id)
            self._cv.notify_all()
        return requeued

    def gc(self, keep: int = 0) -> list[str]:
        """Drop terminal jobs older than the newest ``keep`` of them.

        Retention for long-lived servers: done/failed/cancelled jobs
        (and their ``state_dir`` record + checkpoint directories) are
        removed oldest-first, keeping the ``keep`` most recent terminal
        jobs for inspection (0 = drop all terminal jobs).  Queued and
        running jobs are never touched, and job ids are never reused —
        the submission sequence keeps counting.  Returns the removed ids.
        """
        import shutil

        if keep < 0:
            raise ValueError("keep must be >= 0")
        with self._cv:
            terminal = [
                j
                for j in sorted(self._jobs.values(), key=lambda j: j.record.seq)
                if j.record.state in TERMINAL_STATES
            ]
            victims = terminal[: len(terminal) - keep] if keep else terminal
            removed = []
            for job in victims:
                job_id = job.record.job_id
                del self._jobs[job_id]
                job.cleanup_tmp()
                jdir = self._job_dir(job_id)
                if jdir is not None and os.path.isdir(jdir):
                    shutil.rmtree(jdir, ignore_errors=True)
                removed.append(job_id)
            return removed

    # -- execution ---------------------------------------------------------------

    def _transition(self, job: _Job, state: str, **kw) -> None:
        # Caller holds the lock.
        job.record = job.record.replace(state=state, **kw)
        self._persist(job)
        # One correlatable line per job-state change: every line about a
        # job carries its id, so `grep job-0007` tells the whole story.
        _log.info(
            "job_state", job_id=job.record.job_id, state=state,
            dataset=job.record.spec.dataset,
            **({"error": kw["error"]} if "error" in kw else {}),
        )

    def _slot_main(self) -> None:
        """Thread target: run the worker loop, healing injected crashes.

        A :class:`_SlotCrash` models a slot thread dying after it claimed
        a job but before executing it.  The heal path re-queues that
        orphaned job under its original id (never a duplicate) and the
        loop continues — logically a freshly respawned slot.
        """
        while True:
            try:
                self._worker_loop()
                return
            except _SlotCrash as crash:
                self._heal_crashed_slot(crash.job_id)

    def _heal_crashed_slot(self, job_id: str) -> None:
        _log.warning("slot_crash_healed", job_id=job_id)
        with self._cv:
            self.slot_crashes += 1
            job = self._jobs.get(job_id)
            if job is not None and job.record.state == "running":
                self._transition(job, "queued")
                heapq.heappush(
                    self._queue,
                    (-job.record.spec.priority, job.record.seq, job_id),
                )
            self._cv.notify_all()

    def _worker_loop(self) -> None:
        while True:
            with self._cv:
                while not self._stop and not self._queue:
                    self._cv.wait()
                if self._stop:
                    return
                _, _, job_id = heapq.heappop(self._queue)
                job = self._jobs[job_id]
                if job.record.state != "queued":  # cancelled while queued
                    continue
                self._transition(job, "running")
            if self._injector is not None and self._injector.on_job_pick():
                raise _SlotCrash(job_id)
            try:
                self._execute(job)
            except BaseException as exc:  # noqa: BLE001 - job isolation boundary
                with self._cv:
                    self._transition(job, "failed", error=f"{type(exc).__name__}: {exc}")
                    self._cv.notify_all()
                job.cleanup_tmp()

    def _checkpoint_dir_for(self, job: _Job) -> str:
        jdir = self._job_dir(job.record.job_id)
        if jdir is not None:
            path = os.path.join(jdir, "ckpt")
        else:
            if job._tmp is None:
                job._tmp = tempfile.TemporaryDirectory(prefix="repro-job-")
            path = job._tmp.name
        os.makedirs(path, exist_ok=True)
        return path

    @staticmethod
    def _latest_checkpoint(ckpt_dir: str):
        import re

        from repro.fault.checkpoint import load_checkpoint

        # Numeric max: epoch_%04d pads to 4 digits but keeps growing, and
        # "epoch_10000" sorts before "epoch_9999" lexicographically.
        best = None
        best_epoch = -1
        for n in os.listdir(ckpt_dir):
            m = re.match(r"^epoch_(\d+)\.ckpt$", n)
            if m and int(m.group(1)) > best_epoch:
                best_epoch = int(m.group(1))
                best = n
        if best is None:
            return None
        return load_checkpoint(os.path.join(ckpt_dir, best))

    def _execute(self, job: _Job) -> None:
        spec = job.record.spec
        if spec.preemptible and spec.checkpointable:
            outcome = self._run_chunked(job)
        else:
            ckpt = self._checkpoint_dir_for(job) if spec.checkpointable and self.state_dir else None
            # A recovered job resumes from whatever checkpoint the
            # interrupted scheduler left behind instead of recomputing
            # completed epochs (bit-identical either way).
            resume = self._latest_checkpoint(ckpt) if ckpt else None
            outcome = run_job(spec, checkpoint_dir=ckpt, resume=resume)
        if outcome is None:  # parked (shutdown) or cancelled mid-run
            with self._cv:
                self._cv.notify_all()
            return
        # Publish before the terminal transition so a registry failure
        # surfaces as a failed job, not a silently unpublished one.
        if spec.register_as and self.registry is not None:
            self._publish(job, outcome)
        with self._cv:
            job.outcome = outcome
            # The durable record embeds the outcome digest, so `done`
            # survives a scheduler restart with its result, not just its
            # state string.
            self._transition(
                job, "done", epochs_done=outcome.epochs,
                outcome=OutcomeSummary.from_outcome(outcome),
            )
            self._cv.notify_all()
        job.cleanup_tmp()

    def _run_chunked(self, job: _Job) -> Optional[JobOutcome]:
        """Advance a preemptible job chunk by chunk; None = did not finish."""
        spec = job.record.spec
        ckpt_dir = self._checkpoint_dir_for(job)
        while True:
            state = self._latest_checkpoint(ckpt_dir)
            done_epochs = state.epoch if state is not None else 0
            target = done_epochs + self.chunk_epochs
            if spec.max_epochs is not None:
                target = min(target, spec.max_epochs)
            outcome = run_job(
                spec, checkpoint_dir=ckpt_dir, resume=state, max_epochs=target
            )
            with self._cv:
                job.record = job.record.replace(epochs_done=outcome.epochs)
                self._persist(job)
                hit_cap = spec.max_epochs is not None and outcome.epochs >= spec.max_epochs
                # No-progress chunks mean the run terminated for its own
                # reasons (stall, exhausted seed pool) exactly at a chunk
                # boundary — treat as finished rather than spinning.
                stalled = outcome.epochs <= done_epochs
                if outcome.finished or hit_cap or stalled:
                    return outcome
                if job.cancel.is_set():
                    self._transition(job, "cancelled")
                    self._cv.notify_all()
                    # (Terminal without state_dir: the checkpoints can never
                    # be resumed, so the owned temp dir goes too.)
                    job.cleanup_tmp()
                    return None
                if self._stop:
                    # Park as "running": recover_jobs re-queues and the
                    # next chunk resumes from the checkpoint just written.
                    return None

    def _publish(self, job: _Job, outcome: JobOutcome) -> None:
        spec = job.record.spec
        provenance = {
            "job": job.record.job_id,
            "dataset": spec.dataset,
            "scale": spec.scale,
            "algo": spec.algo,
            "p": str(spec.p),
            "seed": str(spec.seed),
            "backend": spec.backend,
            "epochs": str(outcome.epochs),
            "uncovered": str(outcome.uncovered),
            "train_accuracy": f"{outcome.train_accuracy:.2f}",
        }
        try:
            self.registry.publish(
                spec.register_as,
                outcome.theory,
                config_sig=outcome.config_sig,
                provenance=provenance,
                certificate=outcome.certificate,
            )
        except (InjectedFault, OSError):
            # A failed publish never wrote the artifact (registry writes
            # are atomic), so one immediate retry re-allocates the same
            # version number and cannot double-publish.
            self.registry.publish(
                spec.register_as,
                outcome.theory,
                config_sig=outcome.config_sig,
                provenance=provenance,
                certificate=outcome.certificate,
            )

    # -- resilience introspection -------------------------------------------------

    def resilience_stats(self) -> dict:
        """Counters the stats op exposes for chaos runs and operators."""
        with self._lock:
            return {
                "persist_errors": self.persist_errors,
                "slot_crashes": self.slot_crashes,
                "quarantined": list(self.quarantined),
                "queued": sum(
                    1 for j in self._jobs.values() if j.record.state == "queued"
                ),
            }

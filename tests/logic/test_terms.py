"""Unit tests for repro.logic.terms."""

import pytest

from repro.logic.terms import (
    Const,
    Struct,
    Var,
    atom,
    constants_of,
    fresh_var,
    is_ground,
    mk_term,
    term_depth,
    term_size,
    variables_of,
)


class TestVar:
    def test_equality_by_name(self):
        assert Var("X") == Var("X")
        assert Var("X") != Var("Y")

    def test_hashable(self):
        assert len({Var("X"), Var("X"), Var("Y")}) == 2

    def test_str(self):
        assert str(Var("Abc")) == "Abc"

    def test_not_equal_to_const(self):
        assert Var("X") != Const("X")


class TestConst:
    def test_equality(self):
        assert Const("a") == Const("a")
        assert Const(1) == Const(1)
        assert Const("a") != Const("b")

    def test_int_float_distinct(self):
        assert Const(1) != Const(1.0)

    def test_str_rendering(self):
        assert str(Const("ethyl")) == "ethyl"
        assert str(Const(3)) == "3"


class TestStruct:
    def test_equality_structural(self):
        assert atom("p", "a", "X") == atom("p", "a", "X")
        assert atom("p", "a") != atom("p", "b")
        assert atom("p", "a") != atom("q", "a")

    def test_arity_and_indicator(self):
        t = atom("bond", "m1", "a1", "a2", 2)
        assert t.arity == 4
        assert t.indicator == ("bond", 4)

    def test_str(self):
        assert str(atom("p", "a", "X")) == "p(a, X)"

    def test_nested(self):
        t = Struct("f", (Struct("g", (Const("a"),)), Var("X")))
        assert str(t) == "f(g(a), X)"


class TestMkTerm:
    def test_uppercase_is_var(self):
        assert isinstance(mk_term("Xyz"), Var)
        assert isinstance(mk_term("_foo"), Var)

    def test_lowercase_is_const(self):
        assert mk_term("abc") == Const("abc")

    def test_numbers(self):
        assert mk_term(3) == Const(3)
        assert mk_term(2.5) == Const(2.5)

    def test_bool_becomes_symbol(self):
        assert mk_term(True) == Const("true")

    def test_passthrough(self):
        v = Var("Q")
        assert mk_term(v) is v

    def test_rejects_other_types(self):
        with pytest.raises(TypeError):
            mk_term([1, 2])


class TestAtomHelper:
    def test_zero_arity_is_const(self):
        assert atom("nil") == Const("nil")

    def test_mixed_args(self):
        t = atom("p", "X", "a", 7)
        assert isinstance(t.args[0], Var)
        assert t.args[1] == Const("a")
        assert t.args[2] == Const(7)


class TestTraversals:
    def test_variables_of_order_and_repeats(self):
        t = atom("p", "X", "Y", "X")
        assert [v.name for v in variables_of(t)] == ["X", "Y", "X"]

    def test_constants_of(self):
        t = Struct("f", (Const("a"), Struct("g", (Const(2),))))
        assert [c.value for c in constants_of(t)] == ["a", 2]

    def test_term_size(self):
        assert term_size(Const("a")) == 1
        assert term_size(atom("p", "a", "X")) == 3

    def test_term_depth(self):
        assert term_depth(Const("a")) == 0
        assert term_depth(atom("p", "a")) == 1
        assert term_depth(Struct("f", (Struct("g", (Const("a"),)),))) == 2

    def test_is_ground(self):
        assert is_ground(atom("p", "a", 1))
        assert not is_ground(atom("p", "a", "X"))


class TestFreshVar:
    def test_unique(self):
        vs = {fresh_var() for _ in range(100)}
        assert len(vs) == 100

    def test_prefix(self):
        assert fresh_var("_Q").name.startswith("_Q")

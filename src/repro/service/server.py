"""The service front door: an async socket tier (stdlib only).

Protocol
--------
The default transport is JSON-lines — one request per line, one response
per line, both JSON objects over plain TCP (``nc localhost 7341``
works).  Every response has ``"ok"``; failures carry ``"error"`` instead
of payload fields::

    → {"op": "submit", "spec": {"dataset": "trains", "algo": "p2mdie", "p": 2}}
    ← {"ok": true, "job": "job-0001"}
    → {"op": "query", "theory": "trains-demo", "examples": ["eastbound(t1)"]}
    ← {"ok": true, "n": 1, "n_covered": 1, "covered": [true]}

Operations: ``ping``, ``hello``, ``submit``, ``jobs``, ``status``,
``wait``, ``cancel``, ``query``, ``registry`` (actions ``list`` /
``versions`` / ``show`` / ``diff`` / ``promote``), ``gc`` (targets
``jobs`` / ``registry``), ``stats``, ``shutdown``.

**Hello, auth and transport negotiation.**  ``hello`` is the optional
handshake: it authenticates the connection (when the server was started
with ``--auth-token``, every other op except ``ping`` is rejected until
a hello carries the right token) and negotiates the transport.  A client
asking for ``"transport": "wire"`` gets the hello response on JSON-lines
and then the connection switches to the compact binary framing of
:mod:`repro.service.wiremsg` (4-byte length prefix + wire-codec
message); servers without the hello op reject it, so clients fall back
to JSON-lines automatically.

**Streaming queries.**  ``{"op": "query", ..., "stream": true,
"shards": k}`` shards the batch over the query engine's worker pool and
streams one response *per shard* as it completes (ascending spans:
``"frame": "shard"`` with span-local ``covered``), then an end-of-batch
summary (``"frame": "end"`` with the merged result) — so first results
arrive after ~1/k of the batch work.  The merged answer is bit-identical
to the sequential path.  If the client disconnects mid-stream the server
cancels the remaining shard work.

Architecture
------------
:class:`Service` is the transport-free core — a request dict in, a
response dict out — so the protocol is unit-testable without sockets and
reusable behind any other transport.  :class:`ServiceServer` wraps it in
an **asyncio event loop**: one task per connection (thousands of idle
connections cost no threads), with blocking operations (``wait`` can
legitimately block for minutes; queries hold a CPU) dispatched to a
bounded thread pool so the loop itself never stalls.  Learning jobs run
in the scheduler's own slot threads, so slow jobs never block queries.
:class:`ServiceClient` is the matching blocking client used by the
``repro jobs`` / ``repro serve``-side CLI verbs and the tests.
"""

from __future__ import annotations

import asyncio
import json
import random
import signal
import socket
import struct
import threading
import time
import uuid
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeout
from dataclasses import dataclass, field
from typing import Callable, Iterator, Optional

from repro.fault.service import ServiceFaultInjector, normalize_service_plan
from repro.logic import ParseError, parse_term
from repro.obs import NULL_TRACER, MetricsRegistry
from repro.parallel.wire import WireError
from repro.util.log import get_logger, log_context
from repro.service import wiremsg
from repro.service.errors import (
    RETRYABLE_CODES,
    BadRequest,
    DeadlineExceeded,
    FrameTooLarge,
    Overloaded,
    ServiceFault,
    ShuttingDown,
    error_response,
)
from repro.service.jobs import JobSpec
from repro.service.query import QueryEngine, QueryResult, QueryStream
from repro.service.registry import RegistryError, TheoryRegistry
from repro.service.scheduler import JobScheduler, SchedulerError

__all__ = ["Service", "ServiceServer", "ServiceClient", "ClientContext", "serve"]

#: transports a server can negotiate in the hello op.
TRANSPORTS = ("json", "wire")

_log = get_logger("repro.service")


def stamp_request_id(request: dict) -> str:
    """Ensure the request carries an id; return it.

    Called by the transport the moment a request is parsed — every
    response and every structured log line about this request echoes the
    same id, so one grep correlates a client-visible failure with the
    server-side story.  Clients may supply their own ``request_id``
    (kept verbatim); anything else gets a fresh ``req-`` id.
    """
    rid = request.get("request_id")
    if not isinstance(rid, str) or not rid:
        rid = f"req-{uuid.uuid4().hex[:12]}"
        request["request_id"] = rid
    return rid


def stamp_deadline(request: dict) -> None:
    """Convert a valid relative ``deadline_ms`` to absolute ``_deadline``.

    Called by the transport the moment a request is parsed, so time a
    request spends queued behind the op executor counts against its own
    deadline.  Invalid values are left for :func:`deadline_of` to reject
    inside the normal error path.
    """
    ms = request.get("deadline_ms")
    if isinstance(ms, (int, float)) and not isinstance(ms, bool) and ms > 0:
        request["_deadline"] = time.monotonic() + ms / 1000.0


def deadline_of(request: dict) -> Optional[float]:
    """The request's absolute monotonic deadline, or None.

    Stamps direct (in-process) requests that skipped the transport.
    """
    dl = request.get("_deadline")
    if dl is not None:
        return dl
    ms = request.get("deadline_ms")
    if ms is None:
        return None
    if not isinstance(ms, (int, float)) or isinstance(ms, bool) or ms <= 0:
        raise BadRequest(f"deadline_ms must be a positive number, got {ms!r}")
    stamp_deadline(request)
    return request["_deadline"]


@dataclass
class ClientContext:
    """Per-connection state threaded through :meth:`Service.handle`.

    ``client_id`` keys the per-client job quota (the peer address by
    default; a hello may override it with a self-reported name, which is
    fine — quotas are a fairness knob, not a security boundary; the
    security boundary is the token).
    """

    client_id: str = "local"
    authenticated: bool = False
    transport: str = "json"
    #: bytes read ahead of the current parse point (pipelined requests
    #: surfaced by the mid-stream disconnect watch).
    pushback: bytes = b""


class Service:
    """Transport-free request handler bundling the three subsystems.

    Owns a :class:`JobScheduler` (learning), a :class:`TheoryRegistry`
    (artifacts) and a :class:`QueryEngine` (application).  All handlers
    are thread-safe: the scheduler and registry lock internally, and
    handler dispatch itself is stateless.

    ``auth_token`` gates every op except ``ping``/``hello`` behind a
    shared-secret hello.  ``max_jobs_per_client`` bounds each client's
    *active* (queued or running) jobs — over-quota submits are rejected
    with a friendly error instead of silently queueing forever.
    ``query_shards`` is the server-side default shard count for queries
    that don't pick their own.  ``max_queue`` bounds the scheduler's
    queued-job depth (excess submits are shed with ``overloaded`` +
    ``retry_after``).  ``fault_plan`` (chaos testing only) injects the
    deterministic faults of a
    :class:`~repro.fault.service.ServiceFaultPlan` into every layer.
    """

    def __init__(
        self,
        slots: int = 2,
        state_dir: Optional[str] = None,
        registry_dir: Optional[str] = None,
        chunk_epochs: int = 1,
        auth_token: Optional[str] = None,
        max_jobs_per_client: int = 0,
        query_shards: int = 0,
        shard_workers: Optional[int] = None,
        max_queue: int = 0,
        fault_plan=None,
        tracer=None,
    ):
        #: per-service metrics registry — one scrape surface per server,
        #: isolated across instances (tests spin up many).
        self.metrics = MetricsRegistry()
        #: request-span recorder; NULL_TRACER (no-op) unless serve was
        #: started with --trace-out.
        self.tracer = tracer if tracer is not None else NULL_TRACER
        plan = normalize_service_plan(fault_plan)
        self.fault_injector = ServiceFaultInjector(plan) if plan is not None else None
        self.registry = (
            TheoryRegistry(registry_dir, fault_injector=self.fault_injector)
            if registry_dir
            else None
        )
        self.scheduler = JobScheduler(
            slots=slots, state_dir=state_dir, registry=self.registry,
            chunk_epochs=chunk_epochs, max_queue=max_queue,
            fault_injector=self.fault_injector,
        )
        self.query_engine = QueryEngine(
            registry=self.registry, shard_workers=shard_workers,
            fault_injector=self.fault_injector,
        )
        self.auth_token = auth_token
        self.max_jobs_per_client = max_jobs_per_client
        self.query_shards = query_shards
        #: True once a graceful drain started: no new jobs are accepted.
        self.draining = False
        self._quota_lock = threading.Lock()
        self._client_jobs: dict[str, list[str]] = {}
        if state_dir:
            self.scheduler.recover_jobs()
        if self.registry is not None:
            # Same hygiene as job recovery: quarantine (never crash on)
            # corrupt certificate artifacts left by torn writes.
            self.registry.recover()

    def close(self, drain: bool = False) -> None:
        self.scheduler.close(drain=drain)

    def drain(self) -> None:
        """Graceful-drain the job tier (blocking).

        Stops the scheduler without waiting for queued jobs: running
        preemptible jobs park at their next checkpoint (recoverable),
        running non-preemptible jobs finish, queued jobs stay queued on
        disk.  New submits are already rejected (``shutting_down``) the
        moment :attr:`draining` is set.
        """
        self.draining = True
        self.scheduler.close(drain=False)

    # -- dispatch ----------------------------------------------------------------

    def handle(self, request: dict, ctx: Optional[ClientContext] = None) -> dict:
        """Answer one request dict; never raises (errors become fields).

        Requests may carry ``"deadline_ms"`` (relative, stamped to an
        absolute monotonic ``"_deadline"`` at transport read time so
        executor queueing counts against it): work whose deadline passed
        is rejected up front with ``deadline_exceeded`` instead of run
        uselessly, and sharded queries are cancelled mid-flight when the
        deadline expires.
        """
        if ctx is None:
            # Direct (in-process) callers are implicitly trusted — the
            # token protects the socket boundary, not the library API.
            ctx = ClientContext(client_id="local", authenticated=True)
        op = request.get("op")
        op_name = op if isinstance(op, str) else "?"
        rid = request.get("request_id")
        t0 = time.perf_counter()
        with log_context(**({"request_id": rid} if isinstance(rid, str) else {})):
            with self.tracer.span(f"op:{op_name}", client=ctx.client_id):
                response = self._dispatch(request, ctx, op)
            dt = time.perf_counter() - t0
            self._account(op_name, response, dt, ctx)
        if isinstance(rid, str) and rid:
            # Echo the transport-stamped id so clients and logs correlate.
            response["request_id"] = rid
        return response

    def _dispatch(self, request: dict, ctx: ClientContext, op) -> dict:
        try:
            handler = getattr(self, f"_op_{op}", None)
            if not isinstance(op, str) or handler is None:
                return {
                    "ok": False,
                    "error": f"unknown op {op!r}",
                    "code": "bad_request",
                }
            if (
                self.auth_token is not None
                and not ctx.authenticated
                and op not in ("ping", "hello")
            ):
                return {
                    "ok": False,
                    "error": 'authentication required: send {"op": "hello", '
                    '"token": "..."} first',
                    "code": "unauthenticated",
                }
            deadline = deadline_of(request)
            if deadline is not None and time.monotonic() >= deadline:
                raise DeadlineExceeded(
                    f"deadline expired before the {op!r} op ran"
                )
            if self.draining and op == "submit":
                raise ShuttingDown()
            return {"ok": True, **handler(request, ctx)}
        except ServiceFault as exc:
            return error_response(exc)
        except (SchedulerError, RegistryError, ParseError, ValueError, KeyError, TypeError) as exc:
            return error_response(exc)

    def _account(self, op: str, response: dict, dt: float, ctx: ClientContext) -> None:
        """Count, time, and log one handled request (never raises)."""
        try:
            self.metrics.counter(
                "repro_requests_total", "requests handled, by op", op=op
            ).inc()
            self.metrics.histogram(
                "repro_request_latency_seconds", "request handling latency", op=op
            ).observe(dt)
            if op == "query":
                self.metrics.histogram(
                    "repro_query_latency_seconds", "query op latency end to end"
                ).observe(dt)
            if not response.get("ok"):
                code = response.get("code", "error")
                self.metrics.counter(
                    "repro_request_errors_total", "error responses, by code", code=code
                ).inc()
                _log.warning(
                    "request_failed", op=op, code=code,
                    duration_ms=round(dt * 1000, 3), client=ctx.client_id,
                )
            else:
                _log.debug(
                    "request", op=op, duration_ms=round(dt * 1000, 3),
                    client=ctx.client_id,
                )
        except Exception:  # pragma: no cover - accounting must never fail a request
            pass

    # -- operations --------------------------------------------------------------

    def _op_ping(self, request: dict, ctx: ClientContext) -> dict:
        return {"pong": True}

    def _op_hello(self, request: dict, ctx: ClientContext) -> dict:
        if self.auth_token is not None:
            token = request.get("token")
            if token != self.auth_token:
                raise ValueError("bad or missing token")
        ctx.authenticated = True
        if isinstance(request.get("client"), str) and request["client"]:
            ctx.client_id = request["client"]
        requested = request.get("transport", "json")
        granted = requested if requested in TRANSPORTS else "json"
        return {
            "server": "repro-service",
            "transports": list(TRANSPORTS),
            "transport": granted,
            "auth": self.auth_token is not None,
            "client": ctx.client_id,
        }

    def _op_submit(self, request: dict, ctx: ClientContext) -> dict:
        spec = JobSpec.from_dict(request["spec"])
        if spec.register_as and self.registry is None:
            raise ValueError("register_as needs the server started with a registry dir")
        idem = request.get("idempotency_key")
        if idem is not None and (not isinstance(idem, str) or not idem):
            raise BadRequest("idempotency_key must be a non-empty string")
        if idem is not None:
            # A retried submit whose first response was lost: return the
            # job it already created — before quota, which it consumed
            # the first time around.
            existing = self.scheduler.lookup_idempotent(idem)
            if existing is not None:
                return {"job": existing, "deduplicated": True}
        if not self.max_jobs_per_client:
            return {"job": self.scheduler.submit(spec, idempotency_key=idem)}
        with self._quota_lock:
            active = [
                j
                for j in self._client_jobs.get(ctx.client_id, [])
                if self.scheduler.status(j)["state"] in ("queued", "running")
            ]
            if len(active) >= self.max_jobs_per_client:
                raise ValueError(
                    f"quota exceeded: client {ctx.client_id!r} already has "
                    f"{len(active)} active job(s) of {self.max_jobs_per_client} "
                    "allowed; wait for one to finish or cancel it"
                )
            job = self.scheduler.submit(spec, idempotency_key=idem)
            if job not in active:
                self._client_jobs[ctx.client_id] = active + [job]
            return {"job": job}

    def _op_jobs(self, request: dict, ctx: ClientContext) -> dict:
        return {"jobs": self.scheduler.jobs()}

    def _op_status(self, request: dict, ctx: ClientContext) -> dict:
        return self.scheduler.status(request["job"])

    def _op_wait(self, request: dict, ctx: ClientContext) -> dict:
        return self.scheduler.wait(request["job"], timeout=request.get("timeout"))

    def _op_cancel(self, request: dict, ctx: ClientContext) -> dict:
        return {"cancelled": self.scheduler.cancel(request["job"])}

    # -- queries -----------------------------------------------------------------

    def _resolve_shards(self, requested) -> Optional[int]:
        shards = int(requested or 0) or self.query_shards
        return shards if shards and shards > 1 else None

    def query_result(
        self,
        name: str,
        examples,
        version: Optional[int] = None,
        micro_batch: int = 1024,
        shards=None,
        deadline: Optional[float] = None,
    ) -> QueryResult:
        """One batched query over already-parsed example terms.

        Under shard-pool saturation a sharded request degrades to the
        sequential path (``result.shards == 1``) instead of queueing or
        failing — bit-identical answer, just slower.  With a
        ``deadline`` (absolute monotonic), sharded evaluation is drained
        frame-by-frame with the remaining budget and cancelled (pending
        shard tasks dropped) the moment it expires.
        """
        if self.registry is None:
            raise ValueError("query needs the server started with a registry dir")
        shards_r = self._resolve_shards(shards)
        if shards_r is not None and self.query_engine.should_degrade():
            self.query_engine.note_degraded()
            shards_r = None
        if deadline is not None and time.monotonic() >= deadline:
            raise DeadlineExceeded("deadline expired before query evaluation")
        if deadline is None or shards_r is None or len(examples) <= 1:
            result = self.query_engine.query(
                name,
                examples,
                version=version,
                micro_batch=micro_batch or 1024,
                shards=shards_r,
            )
            self._observe_fanout(result.shards)
            return result
        stream = self.query_engine.query_stream(
            name, examples, version=version,
            micro_batch=micro_batch or 1024, shards=shards_r,
        )
        try:
            while True:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise FuturesTimeout()
                if stream.next_frame(timeout=remaining) is None:
                    break
        except FuturesTimeout:
            stream.cancel()
            raise DeadlineExceeded(
                f"deadline exceeded mid-query "
                f"({stream._next} of {len(stream.spans)} shards done)"
            ) from None
        except BaseException:
            stream.cancel()
            raise
        result = stream.result()
        self._observe_fanout(result.shards)
        return result

    def _observe_fanout(self, shards: int) -> None:
        self.metrics.histogram(
            "repro_query_fanout_shards",
            "shards a query batch fanned out over",
            buckets=(1, 2, 4, 8, 16, 32, 64),
        ).observe(shards)

    def open_query_stream(self, request: dict) -> QueryStream:
        """Open the sharded stream behind a ``"stream": true`` query.

        The transport layer owns the returned stream: it must drain
        every frame or :meth:`~repro.service.query.QueryStream.cancel`
        it (it cancels on client disconnect).
        """
        if self.registry is None:
            raise ValueError("query needs the server started with a registry dir")
        examples = [parse_term(s) for s in request["examples"]]
        return self.query_engine.query_stream(
            request["theory"],
            examples,
            version=request.get("version"),
            micro_batch=int(request.get("micro_batch") or 1024),
            shards=self._resolve_shards(request.get("shards")) or 1,
        )

    def _op_query(self, request: dict, ctx: ClientContext) -> dict:
        examples = [parse_term(s) for s in request["examples"]]
        requested = self._resolve_shards(request.get("shards"))
        result = self.query_result(
            request["theory"],
            examples,
            version=request.get("version"),
            micro_batch=int(request.get("micro_batch") or 1024),
            shards=request.get("shards"),
            deadline=request.get("_deadline"),
        )
        out = {
            "n": result.n,
            "n_covered": result.n_covered,
            "ops": result.ops,
            "shards": result.shards,
            "covered": result.decisions(),
        }
        if requested is not None and result.shards == 1 and len(examples) > 1:
            out["degraded"] = True
        return out

    # -- registry / retention ----------------------------------------------------

    def _op_registry(self, request: dict, ctx: ClientContext) -> dict:
        if self.registry is None:
            raise ValueError("server started without a registry dir")
        reg = self.registry
        action = request.get("action", "list")
        if action == "list":
            return {
                "theories": [
                    {
                        "name": n,
                        "versions": reg.versions(n),
                        "promoted": reg.promoted_version(n),
                    }
                    for n in reg.names()
                ]
            }
        if action == "versions":
            return {"versions": reg.versions(request["name"])}
        if action == "show":
            record = reg.get(request["name"], request.get("version"))
            out = {"record": record.to_dict()}
            try:
                cert = reg.get_certificate(request["name"], request.get("version"))
            except Exception as exc:
                # A damaged certificate never blocks serving the theory
                # (the exact record is the artifact of record).
                out["certificate_error"] = str(exc)
            else:
                if cert is not None:
                    out["certificate"] = cert.to_dict()
            return out
        if action == "diff":
            diff = reg.diff(request["name"], request["old"], request["new"])
            return {k: [str(c) for c in v] for k, v in diff.items()}
        if action == "promote":
            return {"promoted": reg.promote(request["name"], request["version"])}
        raise ValueError(f"unknown registry action {action!r}")

    def _op_gc(self, request: dict, ctx: ClientContext) -> dict:
        target = request.get("target", "jobs")
        if target == "jobs":
            removed = self.scheduler.gc(keep=int(request.get("keep", 0)))
            return {"target": "jobs", "removed": removed}
        if target == "registry":
            if self.registry is None:
                raise ValueError("server started without a registry dir")
            removed = self.registry.gc(
                request["name"], keep=int(request.get("keep", 1))
            )
            return {"target": "registry", "removed": removed}
        raise ValueError(f"unknown gc target {target!r}")

    def _op_stats(self, request: dict, ctx: ClientContext) -> dict:
        jobs = self.scheduler.jobs()
        by_state: dict[str, int] = {}
        for j in jobs:
            by_state[j["state"]] = by_state.get(j["state"], 0) + 1
        out = {
            "slots": self.scheduler.slots,
            "jobs": by_state,
            "query": self.query_engine.stats(),
            "resilience": {
                "draining": self.draining,
                **self.scheduler.resilience_stats(),
                "registry_quarantined": list(
                    self.registry.quarantined if self.registry is not None else ()
                ),
            },
            "metrics": self.metrics_snapshot(),
        }
        if self.fault_injector is not None:
            out["faults"] = self.fault_injector.snapshot()
        return out

    def _op_metrics(self, request: dict, ctx: ClientContext) -> dict:
        return {"metrics": self.metrics_snapshot()}

    def refresh_gauges(self) -> None:
        """Point-in-time gauges pulled from the subsystems at scrape time.

        Counters and histograms are pushed on the hot paths; queue depth,
        slot occupancy, cache hit rates and resilience tallies live in
        the scheduler / query engine and are sampled here so one scrape
        sees one consistent moment.
        """
        jobs = self.scheduler.jobs()
        by_state: dict[str, int] = {}
        for j in jobs:
            by_state[j["state"]] = by_state.get(j["state"], 0) + 1
        g = self.metrics.gauge
        g("repro_scheduler_slots", "scheduler slot count").set(self.scheduler.slots)
        g("repro_scheduler_slots_busy", "slots running a job").set(
            by_state.get("running", 0)
        )
        g("repro_jobs_queued", "jobs waiting for a slot").set(by_state.get("queued", 0))
        for state, n in sorted(by_state.items()):
            g("repro_jobs", "jobs by state", state=state).set(n)
        g("repro_draining", "1 while a graceful drain is in progress").set(
            int(self.draining)
        )
        res = self.scheduler.resilience_stats()
        g("repro_persist_errors", "durable-write failures").set(res["persist_errors"])
        g("repro_slot_crashes", "scheduler slot crashes").set(res["slot_crashes"])
        g("repro_quarantined_records", "records quarantined on recovery").set(
            len(res["quarantined"])
        )
        for k, v in self.query_engine.stats().items():
            if isinstance(v, (int, float)) and not isinstance(v, bool):
                g(f"repro_query_{k}", "query engine counter (see stats op)").set(v)

    def metrics_snapshot(self) -> dict:
        """Plain-dict metrics view (the ``metrics`` op / stats section)."""
        self.refresh_gauges()
        return self.metrics.snapshot()

    def render_metrics(self) -> str:
        """Prometheus text exposition for the --metrics-port endpoint."""
        self.refresh_gauges()
        return self.metrics.render_prometheus()

    def _op_shutdown(self, request: dict, ctx: ClientContext) -> dict:
        # The transport layer watches for this marker and stops accepting.
        return {"shutdown": True}


def _query_frames(stream: QueryStream) -> Iterator[dict]:
    """Render a drained stream's frames as protocol dicts (shared by tests)."""
    for frame in stream.frames():
        yield {
            "ok": True,
            "frame": "shard",
            "shard": frame.shard,
            "lo": frame.lo,
            "n": frame.n,
            "ops": frame.ops,
            "covered": frame.decisions(),
        }
    result = stream.result()
    yield {
        "ok": True,
        "frame": "end",
        "n": result.n,
        "n_covered": result.n_covered,
        "ops": result.ops,
        "shards": result.shards,
        "covered": result.decisions(),
    }


class ServiceServer:
    """Asyncio front end multiplexing many connections over one loop.

    Connections cost one task each, not one thread; blocking service
    operations run on ``self._ops`` (sized generously because ``wait``
    parks a worker for the duration of a learning job).  Use
    :func:`serve` for the blocking entry point; tests reach the bound
    port through the ``ready`` callback.
    """

    #: executor headroom beyond scheduler slots: concurrent waits + queries.
    OPS_WORKERS = 32

    def __init__(
        self,
        service: Service,
        max_inflight: int = 0,
        metrics_port: Optional[int] = None,
    ):
        self.service = service
        self.port: Optional[int] = None
        #: admission bound on concurrently executing ops (0 = unbounded);
        #: excess requests are shed with ``overloaded`` + ``retry_after``.
        self.max_inflight = max_inflight
        #: when not None, a plain-HTTP Prometheus text exposition endpoint
        #: is bound here (0 = ephemeral; the bound port lands in
        #: :attr:`metrics_bound_port`).
        self.metrics_port = metrics_port
        self.metrics_bound_port: Optional[int] = None
        self._metrics_server: Optional[asyncio.base_events.Server] = None
        self._inflight = 0  # loop-thread only
        self._server: Optional[asyncio.base_events.Server] = None
        self._shutdown: Optional[asyncio.Event] = None
        self._drain: Optional[asyncio.Event] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._ops = ThreadPoolExecutor(
            max_workers=max(self.OPS_WORKERS, service.scheduler.slots * 4),
            thread_name_prefix="repro-svc-op",
        )

    async def start(self, host: str, port: int) -> None:
        self._shutdown = asyncio.Event()
        self._drain = asyncio.Event()
        self._loop = asyncio.get_running_loop()
        # The reader limit bounds one JSON line; large query batches are
        # legitimate, so allow what the wire framing allows.
        self._server = await asyncio.start_server(
            self._on_client, host, port, limit=wiremsg.MAX_FRAME
        )
        self.port = self._server.sockets[0].getsockname()[1]
        if self.metrics_port is not None:
            self._metrics_server = await asyncio.start_server(
                self._on_metrics_client, host, self.metrics_port
            )
            self.metrics_bound_port = self._metrics_server.sockets[0].getsockname()[1]
            _log.info(
                "metrics_listening", host=host, port=self.metrics_bound_port
            )

    def initiate_shutdown(self) -> None:
        """Stop accepting and unwind :meth:`run_until_shutdown` (loop-thread)."""
        if self._shutdown is not None:
            self._shutdown.set()

    def initiate_drain(self) -> None:
        """Begin a graceful drain (thread- and signal-safe).

        The SIGTERM handler: new submits are rejected immediately
        (``shutting_down``), the listener closes, in-flight jobs finish
        or checkpoint-park, then the server unwinds.
        """
        self.service.draining = True
        if self._loop is not None and self._drain is not None:
            self._loop.call_soon_threadsafe(self._drain.set)

    async def run_until_shutdown(self) -> None:
        shut = asyncio.ensure_future(self._shutdown.wait())
        drain = asyncio.ensure_future(self._drain.wait())
        try:
            await asyncio.wait({shut, drain}, return_when=asyncio.FIRST_COMPLETED)
            if self._drain.is_set() and not self._shutdown.is_set():
                # Graceful drain: stop accepting connections, let the job
                # tier finish or checkpoint-park its in-flight work
                # (Service.drain blocks in a worker thread, so existing
                # connections keep getting status/stats answers), then
                # fall through to the normal shutdown path.
                self._server.close()
                await self._server.wait_closed()
                await asyncio.get_running_loop().run_in_executor(
                    None, self.service.drain
                )
                self._shutdown.set()
            await self._shutdown.wait()
        finally:
            for t in (shut, drain):
                if not t.done():
                    t.cancel()
                    try:
                        await t
                    except asyncio.CancelledError:
                        pass
        self._server.close()
        await self._server.wait_closed()
        if self._metrics_server is not None:
            self._metrics_server.close()
            await self._metrics_server.wait_closed()
        # Blocked waits are unstuck by Service.close cancelling their jobs
        # (the caller's `finally`), so don't join the worker threads here.
        self._ops.shutdown(wait=False, cancel_futures=True)

    async def _on_metrics_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Answer one plain-HTTP GET with the Prometheus text exposition.

        Deliberately minimal (stdlib-only, HTTP/1.0, connection-per-
        scrape): enough for ``curl`` and any Prometheus scraper, with no
        routing — every path serves the metrics page.
        """
        try:
            try:
                await asyncio.wait_for(reader.readuntil(b"\r\n\r\n"), timeout=5.0)
            except (asyncio.IncompleteReadError, asyncio.TimeoutError, ValueError):
                return
            body = (
                await asyncio.get_running_loop().run_in_executor(
                    self._ops, self.service.render_metrics
                )
            ).encode("utf-8")
            writer.write(
                b"HTTP/1.0 200 OK\r\n"
                b"Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n"
                + f"Content-Length: {len(body)}\r\n\r\n".encode("ascii")
                + body
            )
            await writer.drain()
        except Exception:
            pass  # a failed scrape must never disturb the serving loop
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    # -- per-connection protocol loop --------------------------------------------

    async def _on_client(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        peer = writer.get_extra_info("peername")
        ctx = ClientContext(client_id=peer[0] if peer else "unknown")
        try:
            while not self._shutdown.is_set():
                if ctx.transport == "wire":
                    alive = await self._serve_wire_once(reader, writer, ctx)
                else:
                    alive = await self._serve_json_once(reader, writer, ctx)
                if not alive:
                    return
        except (ConnectionError, asyncio.IncompleteReadError):
            return  # client went away; nothing to answer
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _serve_json_once(self, reader, writer, ctx) -> bool:
        try:
            line = await self._readline(reader, ctx)
        except (asyncio.LimitOverrunError, ValueError):
            # One request line exceeding the frame cap: answer with a
            # structured error, then close — the tail of the oversized
            # line cannot be resynchronized.
            await self._send_json(
                writer,
                error_response(
                    FrameTooLarge(
                        f"request line exceeds the {wiremsg.MAX_FRAME}-byte cap"
                    )
                ),
            )
            return False
        if not line:
            return False
        line = line.strip()
        if not line:
            return True
        try:
            request = json.loads(line)
            if not isinstance(request, dict):
                raise ValueError("request must be a JSON object")
        except ValueError as exc:
            await self._send_json(
                writer,
                {"ok": False, "error": f"bad request: {exc}", "code": "bad_request"},
            )
            return True
        stamp_deadline(request)
        stamp_request_id(request)
        reset = self._injected_reset(request.get("op"))
        if reset is not None:
            if reset.when == "after":
                # The nasty case: the work happens, the response is lost.
                await self._run_op(request, ctx)
            self._abort_connection(writer)
            return False
        if request.get("op") == "query" and request.get("stream"):
            return await self._stream_query(
                request, ctx, reader, writer,
                send=lambda resp: self._send_json(writer, resp),
            )
        response = await self._run_op(request, ctx)
        await self._send_json(writer, response)
        if response.get("ok") and request.get("op") == "hello":
            # Switch only after the acknowledgement went out on JSON-lines.
            if response.get("transport") == "wire":
                ctx.transport = "wire"
        if response.get("shutdown"):
            self.initiate_shutdown()
            return False
        return True

    async def _serve_wire_once(self, reader, writer, ctx) -> bool:
        try:
            msg = await self._read_frame(reader, ctx)
        except FrameTooLarge as exc:
            # The oversized frame body was discarded, so the framing is
            # still in sync: answer structurally and keep serving.
            await self._send_frame(writer, wiremsg.WireJson(error_response(exc)))
            return True
        except WireError as exc:
            # Garbage that didn't decode: answer, then close — after a
            # framing desync nothing later on the connection is trustworthy.
            await self._send_frame(
                writer, wiremsg.WireJson(error_response(exc, code="bad_request"))
            )
            return False
        if msg is None:
            return False
        if isinstance(msg, wiremsg.WireQuery):
            reset = self._injected_reset("query")
            if reset is not None:
                self._abort_connection(writer)
                return False
            return await self._wire_query(msg, ctx, reader, writer)
        if not isinstance(msg, wiremsg.WireJson):
            await self._send_frame(
                writer,
                wiremsg.WireJson(
                    {
                        "ok": False,
                        "error": f"unexpected {type(msg).__name__}",
                        "code": "bad_request",
                    }
                ),
            )
            return True
        request = msg.payload
        if not isinstance(request, dict):
            await self._send_frame(
                writer,
                wiremsg.WireJson(
                    {
                        "ok": False,
                        "error": "request must be a JSON object",
                        "code": "bad_request",
                    }
                ),
            )
            return True
        stamp_deadline(request)
        stamp_request_id(request)
        reset = self._injected_reset(request.get("op"))
        if reset is not None:
            if reset.when == "after":
                await self._run_op(request, ctx)
            self._abort_connection(writer)
            return False
        if request.get("op") == "query" and request.get("stream"):
            return await self._stream_query(
                request, ctx, reader, writer,
                send=lambda resp: self._send_frame(writer, _frame_to_wire(resp)),
            )
        response = await self._run_op(request, ctx)
        await self._send_frame(writer, wiremsg.WireJson(response))
        if response.get("shutdown"):
            self.initiate_shutdown()
            return False
        return True

    async def _wire_query(self, msg: wiremsg.WireQuery, ctx, reader, writer) -> bool:
        """A native wire query: terms arrive parsed, bitsets leave packed."""
        svc = self.service
        if svc.auth_token is not None and not ctx.authenticated:
            await self._send_frame(
                writer, wiremsg.WireJson({"ok": False, "error": "authentication required"})
            )
            return True
        loop = asyncio.get_running_loop()
        if msg.stream:
            def opener():
                return svc.query_engine.query_stream(
                    msg.name,
                    msg.examples,
                    version=msg.version,
                    micro_batch=msg.micro_batch,
                    shards=svc._resolve_shards(msg.shards) or 1,
                )

            return await self._stream_query(
                None, ctx, reader, writer,
                send=lambda m: self._send_frame(writer, m),
                opener=opener, wire=True,
            )
        try:
            result = await loop.run_in_executor(
                self._ops,
                lambda: svc.query_result(
                    msg.name, msg.examples, version=msg.version,
                    micro_batch=msg.micro_batch, shards=msg.shards,
                ),
            )
        except ServiceFault as exc:
            await self._send_frame(writer, wiremsg.WireJson(error_response(exc)))
            return True
        except (SchedulerError, RegistryError, ParseError, ValueError, KeyError) as exc:
            await self._send_frame(writer, wiremsg.WireJson(error_response(exc)))
            return True
        await self._send_frame(
            writer,
            wiremsg.WireQueryEnd(
                covered=result.covered, n=result.n, ops=result.ops, shards=result.shards
            ),
        )
        return True

    async def _stream_query(
        self, request, ctx, reader, writer,
        send: Callable, opener: Optional[Callable] = None, wire: bool = False,
    ) -> bool:
        """Stream one sharded query; True iff the connection stays usable.

        The disconnect watch races every frame against a read on the
        client socket: an EOF there means the client is gone, so the
        stream is cancelled and its not-yet-started shard tasks never
        run (the leak the streaming tests pin).  Data that arrives
        instead of EOF is a pipelined request — pushed back for the main
        loop, never dropped.
        """
        loop = asyncio.get_running_loop()
        if request is not None:
            svc = self.service
            if svc.auth_token is not None and not ctx.authenticated:
                err = {
                    "ok": False,
                    "error": "authentication required",
                    "code": "unauthenticated",
                }
                await send(wiremsg.WireJson(err) if wire else err)
                return True
        deadline = request.get("_deadline") if request is not None else None
        try:
            stream = await loop.run_in_executor(
                self._ops, opener or (lambda: self.service.open_query_stream(request))
            )
        except (ServiceFault, SchedulerError, RegistryError, ParseError, ValueError, KeyError) as exc:
            err = error_response(exc)
            await send(wiremsg.WireJson(err) if wire else err)
            return True
        eof_watch = asyncio.ensure_future(reader.read(4096))
        frame_task = None
        alive = True
        try:
            while True:
                if frame_task is None:
                    if deadline is None:
                        frame_task = loop.run_in_executor(self._ops, stream.next_frame)
                    else:
                        remaining = deadline - time.monotonic()
                        if remaining <= 0:
                            stream.cancel()
                            err = error_response(
                                DeadlineExceeded("deadline exceeded mid-stream")
                            )
                            await send(wiremsg.WireJson(err) if wire else err)
                            break
                        frame_task = loop.run_in_executor(
                            self._ops,
                            lambda r=remaining: stream.next_frame(timeout=r),
                        )
                done, _ = await asyncio.wait(
                    {frame_task, eof_watch}, return_when=asyncio.FIRST_COMPLETED
                )
                if eof_watch in done:
                    data = eof_watch.result()
                    if not data:  # client disconnected mid-stream
                        stream.cancel()
                        alive = False
                        break
                    ctx.pushback += data
                    eof_watch = asyncio.ensure_future(reader.read(4096))
                    continue
                try:
                    frame = frame_task.result()
                except FuturesTimeout:
                    # The deadline ran out while a shard was evaluating:
                    # cancel the pending shard tasks and answer with a
                    # structured error on the still-usable connection.
                    frame_task = None
                    stream.cancel()
                    err = error_response(
                        DeadlineExceeded(
                            f"deadline exceeded mid-stream ({stream._next} of "
                            f"{len(stream.spans)} shards delivered)"
                        )
                    )
                    await send(wiremsg.WireJson(err) if wire else err)
                    break
                except ServiceFault as exc:
                    # e.g. an injected engine-lease failure: never partial
                    # results — cancel the whole stream and report.
                    frame_task = None
                    stream.cancel()
                    err = error_response(exc)
                    await send(wiremsg.WireJson(err) if wire else err)
                    break
                frame_task = None
                if frame is None:
                    break
                if wire:
                    await send(
                        wiremsg.WireShard(
                            shard=frame.shard, lo=frame.lo, n=frame.n,
                            covered=frame.covered, ops=frame.ops,
                        )
                    )
                else:
                    await send(
                        {
                            "ok": True, "frame": "shard", "shard": frame.shard,
                            "lo": frame.lo, "n": frame.n, "ops": frame.ops,
                            "covered": frame.decisions(),
                        }
                    )
            if alive and stream.done:
                result = stream.result()
                if wire:
                    await send(
                        wiremsg.WireQueryEnd(
                            covered=result.covered, n=result.n,
                            ops=result.ops, shards=result.shards,
                        )
                    )
                else:
                    await send(
                        {
                            "ok": True, "frame": "end", "n": result.n,
                            "n_covered": result.n_covered, "ops": result.ops,
                            "shards": result.shards, "covered": result.decisions(),
                        }
                    )
        except ConnectionError:
            stream.cancel()
            alive = False
        finally:
            if frame_task is not None:
                # Let the in-flight next_frame call retire before returning
                # the connection to the main loop (or closing it).
                stream.cancel()
                try:
                    await frame_task
                except Exception:
                    pass
            if not eof_watch.done():
                # Must settle before the main loop reads again: two
                # coroutines waiting on one StreamReader is an error, and
                # cancellation only lands at the next loop step.
                eof_watch.cancel()
                try:
                    await eof_watch
                except asyncio.CancelledError:
                    pass
            if eof_watch.done() and not eof_watch.cancelled():
                data = eof_watch.result()
                if data:
                    ctx.pushback += data
                else:
                    alive = False
        return alive

    # -- plumbing ----------------------------------------------------------------

    def _injected_reset(self, op):
        """The ConnReset to apply to this request, else None (chaos only)."""
        injector = self.service.fault_injector
        if injector is None:
            return None
        return injector.on_request(op if isinstance(op, str) else None)

    @staticmethod
    def _abort_connection(writer) -> None:
        """Make the coming close a hard TCP reset (RST), not a clean FIN.

        SO_LINGER with a zero timeout discards untransmitted data and
        sends RST on close, so an injected "connection reset" looks to
        the client exactly like a mid-flight network failure
        (``ConnectionResetError``), not like an orderly shutdown.
        """
        sock = writer.get_extra_info("socket")
        if sock is not None:
            try:
                sock.setsockopt(
                    socket.SOL_SOCKET, socket.SO_LINGER, struct.pack("ii", 1, 0)
                )
            except OSError:  # pragma: no cover - platform without SO_LINGER
                pass

    async def _run_op(self, request: dict, ctx: ClientContext) -> dict:
        if self.max_inflight and self._inflight >= self.max_inflight:
            # Load shedding: answering "overloaded" costs microseconds on
            # the loop thread; executing the op would hold an executor
            # worker.  Clients honour retry_after and back off.
            self.service.metrics.counter(
                "repro_requests_shed_total", "requests shed by admission control"
            ).inc()
            resp = error_response(
                Overloaded(
                    f"{self._inflight} requests in flight "
                    f"(cap {self.max_inflight})",
                    retry_after=0.05,
                )
            )
            rid = request.get("request_id")
            if isinstance(rid, str) and rid:
                resp["request_id"] = rid
            return resp
        self._inflight += 1
        try:
            loop = asyncio.get_running_loop()
            return await loop.run_in_executor(
                self._ops, self.service.handle, request, ctx
            )
        finally:
            self._inflight -= 1

    @staticmethod
    async def _send_json(writer, response: dict) -> None:
        writer.write((json.dumps(response) + "\n").encode("utf-8"))
        await writer.drain()

    @staticmethod
    async def _send_frame(writer, message) -> None:
        writer.write(wiremsg.pack_frame(message))
        await writer.drain()

    @staticmethod
    async def _readline(reader, ctx: ClientContext) -> bytes:
        if ctx.pushback:
            head, sep, rest = ctx.pushback.partition(b"\n")
            if sep:
                ctx.pushback = rest
                return head + sep
            ctx.pushback = b""
            return head + await reader.readline()
        return await reader.readline()

    async def _read_exact(self, reader, ctx: ClientContext, n: int) -> Optional[bytes]:
        buf = ctx.pushback[:n]
        ctx.pushback = ctx.pushback[n:]
        while len(buf) < n:
            chunk = await reader.read(n - len(buf))
            if not chunk:
                return None
            buf += chunk
        return bytes(buf)

    async def _discard(self, reader, ctx: ClientContext, n: int) -> None:
        """Drain ``n`` payload bytes without buffering them."""
        drop = min(n, len(ctx.pushback))
        ctx.pushback = ctx.pushback[drop:]
        n -= drop
        while n > 0:
            chunk = await reader.read(min(65536, n))
            if not chunk:
                return
            n -= len(chunk)

    async def _read_frame(self, reader, ctx: ClientContext):
        header = await self._read_exact(reader, ctx, wiremsg.FRAME_HEADER.size)
        if header is None:
            return None
        (length,) = wiremsg.FRAME_HEADER.unpack(header)
        if length > wiremsg.MAX_FRAME:
            # Discard the body so the framing stays in sync, then let the
            # caller answer with a structured frame_too_large error.
            await self._discard(reader, ctx, length)
            raise FrameTooLarge(
                f"wire frame of {length} bytes exceeds the "
                f"{wiremsg.MAX_FRAME}-byte cap"
            )
        data = await self._read_exact(reader, ctx, length)
        if data is None:
            return None
        from repro.parallel import wire

        try:
            return wire.decode(data)
        except WireError:
            raise
        except Exception as exc:
            # Garbage bytes must never take down the connection task
            # unanswered (let alone the event loop): normalize every
            # decoder blow-up to the WireError the caller reports.
            raise WireError(
                f"undecodable wire frame: {type(exc).__name__}: {exc}"
            ) from exc


def _frame_to_wire(resp: dict):
    """Map a streaming-protocol dict onto its wire message."""
    if resp.get("frame") == "shard":
        covered = 0
        for i, bit in enumerate(resp["covered"]):
            if bit:
                covered |= 1 << i
        return wiremsg.WireShard(
            shard=resp["shard"], lo=resp["lo"], n=resp["n"],
            covered=covered, ops=resp["ops"],
        )
    if resp.get("frame") == "end":
        covered = 0
        for i, bit in enumerate(resp["covered"]):
            if bit:
                covered |= 1 << i
        return wiremsg.WireQueryEnd(
            covered=covered, n=resp["n"], ops=resp["ops"], shards=resp["shards"]
        )
    return wiremsg.WireJson(resp)


def serve(
    host: str = "127.0.0.1",
    port: int = 7341,
    slots: int = 2,
    state_dir: Optional[str] = None,
    registry_dir: Optional[str] = None,
    chunk_epochs: int = 1,
    ready=None,
    auth_token: Optional[str] = None,
    max_jobs_per_client: int = 0,
    query_shards: int = 0,
    shard_workers: Optional[int] = None,
    max_queue: int = 0,
    max_inflight: int = 0,
    fault_plan=None,
    metrics_port: Optional[int] = None,
    tracer=None,
) -> None:
    """Run the service until a ``shutdown`` request (blocking).

    ``port=0`` binds an ephemeral port.  ``ready``, when given, is
    called with the listening :class:`ServiceServer` once the socket is
    bound (tests use it to learn the port; the CLI prints it).
    ``metrics_port`` additionally binds a plain-HTTP Prometheus text
    exposition endpoint (``curl http://host:metrics_port/metrics``);
    ``tracer`` (a :class:`repro.obs.Tracer`) records one span per
    handled request, which ``repro serve --trace-out`` streams to JSONL.

    SIGTERM triggers a graceful drain (when the loop runs in the main
    thread, where signal handlers can be installed): new submits are
    rejected, in-flight jobs finish or checkpoint-park, then the server
    exits — so orchestrators that SIGTERM-then-wait never lose work.
    """
    service = Service(
        slots=slots, state_dir=state_dir, registry_dir=registry_dir,
        chunk_epochs=chunk_epochs, auth_token=auth_token,
        max_jobs_per_client=max_jobs_per_client, query_shards=query_shards,
        shard_workers=shard_workers, max_queue=max_queue, fault_plan=fault_plan,
        tracer=tracer,
    )

    async def main():
        server = ServiceServer(
            service, max_inflight=max_inflight, metrics_port=metrics_port
        )
        await server.start(host, port)
        loop = asyncio.get_running_loop()
        try:
            loop.add_signal_handler(signal.SIGTERM, server.initiate_drain)
        except (NotImplementedError, RuntimeError, ValueError):
            pass  # non-main thread or platform without loop signal support
        _log.info("serving", host=host, port=server.port, slots=slots)
        if ready is not None:
            ready(server)
        await server.run_until_shutdown()
        _log.info("stopped", port=server.port)

    try:
        asyncio.run(main())
    finally:
        service.close(drain=False)
        service.tracer.close()


class ServiceClient:
    """Blocking client for :func:`serve` endpoints.

    Speaks JSON-lines by default; ``transport="wire"`` negotiates the
    compact binary framing via a hello (falling back to JSON-lines
    against servers that predate it), and ``token`` authenticates the
    connection the same way.  ``bytes_sent`` / ``bytes_received`` count
    transport bytes, so transports can be compared on real workloads.

    ``timeout`` (seconds) bounds *connection setup*; established
    connections block indefinitely by default — ``wait`` requests
    legitimately outlast any fixed socket timeout (learning jobs run for
    minutes), and the server answers every request eventually.  Pass
    ``read_timeout`` to bound individual responses instead.

    **Retries.**  ``retries`` > 0 arms :meth:`request_with_retry` (used
    by every convenience wrapper): capped exponential backoff with
    deterministic jitter, transparent reconnection (re-running the
    hello, so auth + transport survive), and honouring server
    ``retry_after`` hints on ``overloaded``/``unavailable``/
    ``shutting_down`` answers.  Connection loss only triggers a resend
    for idempotent requests — a submit is idempotent exactly when it
    carries an idempotency key (:meth:`submit` generates one whenever
    retries are armed).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 7341,
        timeout: float = 60.0,
        read_timeout: Optional[float] = None,
        token: Optional[str] = None,
        transport: str = "json",
        retries: int = 0,
        backoff: float = 0.05,
        backoff_max: float = 2.0,
        retry_seed: int = 0,
    ):
        if transport not in TRANSPORTS:
            raise ValueError(f"unknown transport {transport!r}")
        if retries < 0:
            raise ValueError("retries must be >= 0")
        self.host = host
        self.port = port
        self.timeout = timeout
        self.read_timeout = read_timeout
        self.retries = retries
        self.backoff = backoff
        self.backoff_max = backoff_max
        self._rng = random.Random(retry_seed)
        self._token = token
        self._transport_requested = transport
        self.bytes_sent = 0
        self.bytes_received = 0
        self.reconnects = 0
        self.retried = 0
        self.sock: Optional[socket.socket] = None
        self._file = None
        self._connect()

    def _connect(self) -> None:
        self.sock = socket.create_connection(
            (self.host, self.port), timeout=self.timeout
        )
        self.sock.settimeout(self.read_timeout)
        self._file = self.sock.makefile("rwb")
        self.transport = "json"
        if self._token is not None or self._transport_requested != "json":
            self.hello(token=self._token, transport=self._transport_requested)

    def reconnect(self) -> None:
        """Drop the connection and redo auth + transport negotiation."""
        self._teardown()
        self._connect()
        self.reconnects += 1

    def _teardown(self) -> None:
        try:
            if self._file is not None:
                self._file.close()
            if self.sock is not None:
                self.sock.close()
        except OSError:
            pass
        self._file = None
        self.sock = None

    @staticmethod
    def _friendly(exc: OSError, context: str) -> ConnectionError:
        kind = (
            "connection reset"
            if isinstance(exc, ConnectionResetError)
            else "broken pipe"
        )
        return ConnectionError(
            f"repro: {context} ({kind}); the server may or may not have "
            "processed the request — idempotent requests are safe to retry"
        )

    # -- transport ---------------------------------------------------------------

    def _request_json(self, payload: dict) -> dict:
        data = (json.dumps(payload) + "\n").encode("utf-8")
        try:
            self._file.write(data)
            self._file.flush()
            self.bytes_sent += len(data)
            line = self._file.readline()
        except (ConnectionResetError, BrokenPipeError) as exc:
            raise self._friendly(exc, "lost connection to the service") from exc
        if not line:
            raise ConnectionError("server closed the connection")
        self.bytes_received += len(line)
        return json.loads(line)

    def _send_msg(self, message) -> None:
        try:
            self.bytes_sent += wiremsg.write_frame_to(self._file, message)
        except (ConnectionResetError, BrokenPipeError) as exc:
            raise self._friendly(exc, "lost connection to the service") from exc

    def _recv_msg(self):
        try:
            message, n = wiremsg.read_frame_from(self._file)
        except (ConnectionResetError, BrokenPipeError) as exc:
            raise self._friendly(exc, "lost connection to the service") from exc
        self.bytes_received += n
        if message is None:
            raise ConnectionError("server closed the connection")
        return message

    def hello(
        self, token: Optional[str] = None, transport: str = "json", client: Optional[str] = None
    ) -> dict:
        """Authenticate and/or negotiate the transport for this connection."""
        if token is not None:
            self._token = token  # remembered so reconnects re-authenticate
        self._transport_requested = transport
        req = {"op": "hello", "transport": transport}
        if token is not None:
            req["token"] = token
        if client is not None:
            req["client"] = client
        resp = self._request_json(req)
        if not resp.get("ok"):
            if token is None and "unknown op" in resp.get("error", ""):
                return resp  # legacy server: stay on JSON-lines
            raise RuntimeError(resp.get("error", "hello failed"))
        if resp.get("transport") == "wire":
            self.transport = "wire"
        return resp

    def request(self, payload: dict) -> dict:
        """Send one request; return the decoded response dict."""
        if self._file is None:
            raise ConnectionError("client is disconnected (call reconnect())")
        if self.transport == "json":
            return self._request_json(payload)
        self._send_msg(wiremsg.WireJson(payload))
        message = self._recv_msg()
        if not isinstance(message, wiremsg.WireJson):
            raise ConnectionError(f"unexpected wire message {type(message).__name__}")
        return message.payload

    def _backoff_delay(self, attempt: int, hint: Optional[float] = None) -> float:
        """Capped exponential backoff with jitter; server hints win."""
        base = min(self.backoff * (2 ** attempt), self.backoff_max)
        delay = base * (0.5 + self._rng.random())  # jitter in [0.5x, 1.5x)
        if hint is not None:
            delay = max(delay, float(hint))
        return delay

    def request_with_retry(self, payload: dict, idempotent: bool = True) -> dict:
        """Send with retries: reconnect on connection loss, back off on shed.

        Two retryable situations, handled differently:

        * **connection loss** — reconnect (redoing hello) and resend,
          but only for idempotent requests: the server may have done the
          work before the connection died, and resending a
          non-idempotent request (a submit without an idempotency key)
          could duplicate it;
        * **coded retryable errors** (``overloaded``/``unavailable``/
          ``shutting_down``) — same connection, wait at least the
          server's ``retry_after`` hint, resend.

        With ``retries=0`` this is exactly :meth:`request`.
        """
        last_exc: Optional[Exception] = None
        for attempt in range(self.retries + 1):
            if self._file is None:
                try:
                    self._connect()
                    self.reconnects += 1
                except OSError as exc:
                    last_exc = exc
                    if attempt >= self.retries:
                        raise
                    self.retried += 1
                    time.sleep(self._backoff_delay(attempt))
                    continue
            try:
                resp = self.request(payload)
            except (ConnectionError, OSError) as exc:
                self._teardown()
                last_exc = exc
                if not idempotent or attempt >= self.retries:
                    raise
                self.retried += 1
                time.sleep(self._backoff_delay(attempt))
                continue
            if (
                not resp.get("ok")
                and resp.get("code") in RETRYABLE_CODES
                and attempt < self.retries
            ):
                self.retried += 1
                time.sleep(self._backoff_delay(attempt, hint=resp.get("retry_after")))
                continue
            return resp
        raise last_exc if last_exc is not None else ConnectionError(
            "retries exhausted"
        )

    def close(self) -> None:
        self._teardown()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- convenience wrappers ----------------------------------------------------

    def submit(self, spec: JobSpec, idempotency_key: Optional[str] = None) -> str:
        """Submit one job; returns its id.

        When retries are armed and no ``idempotency_key`` is given, a
        fresh one is generated — so a retried submit whose response was
        lost mid-air can never create the job twice.
        """
        if idempotency_key is None and self.retries:
            idempotency_key = uuid.uuid4().hex
        req = {"op": "submit", "spec": spec.to_dict()}
        if idempotency_key is not None:
            req["idempotency_key"] = idempotency_key
        resp = self.request_with_retry(req, idempotent=idempotency_key is not None)
        if not resp.get("ok"):
            raise RuntimeError(resp.get("error", "submit failed"))
        return resp["job"]

    def wait(self, job_id: str, timeout: Optional[float] = None) -> dict:
        return self.request_with_retry({"op": "wait", "job": job_id, "timeout": timeout})

    def query(
        self,
        theory: str,
        examples: list[str],
        version: Optional[int] = None,
        shards: Optional[int] = None,
        deadline_ms: Optional[float] = None,
    ) -> dict:
        """One batched query; response dict is transport-independent.

        ``deadline_ms`` attaches a relative deadline the server enforces
        end-to-end (expired work is rejected, mid-flight shard work is
        cancelled).  Deadlines and retries ride the JSON op form — the
        packed-bitset wire query is kept for the bare fast path.
        """
        if self.transport == "json" or deadline_ms is not None or self.retries:
            req = {
                "op": "query", "theory": theory, "examples": examples,
                "version": version, "shards": shards,
            }
            if deadline_ms is not None:
                req["deadline_ms"] = deadline_ms
            return self.request_with_retry(req)
        self._send_msg(
            wiremsg.WireQuery(
                name=theory,
                examples=tuple(parse_term(s) for s in examples),
                version=version,
                shards=shards or 0,
            )
        )
        return self._query_end_dict(self._recv_msg())

    def query_stream(
        self,
        theory: str,
        examples: list[str],
        version: Optional[int] = None,
        shards: Optional[int] = None,
        deadline_ms: Optional[float] = None,
    ) -> Iterator[dict]:
        """Stream a sharded query; yields shard frames, then the end frame.

        Every yielded dict has ``"frame"`` (``"shard"`` or ``"end"``);
        shard frames carry span-local ``covered`` at offset ``lo``, the
        end frame the merged batch result.  Streams are never retried
        transparently (already-yielded frames cannot be unseen) — on a
        mid-stream connection loss the caller re-issues the whole query.
        """
        if self.transport == "json":
            req = {
                "op": "query", "theory": theory, "examples": examples,
                "version": version, "shards": shards, "stream": True,
            }
            if deadline_ms is not None:
                req["deadline_ms"] = deadline_ms
            data = (json.dumps(req) + "\n").encode("utf-8")
            try:
                self._file.write(data)
                self._file.flush()
                self.bytes_sent += len(data)
            except (ConnectionResetError, BrokenPipeError) as exc:
                raise self._friendly(exc, "lost connection opening the stream") from exc
            while True:
                try:
                    line = self._file.readline()
                except (ConnectionResetError, BrokenPipeError) as exc:
                    raise self._friendly(
                        exc, "lost connection mid-stream; re-issue the query"
                    ) from exc
                if not line:
                    raise ConnectionError("server closed the connection mid-stream")
                self.bytes_received += len(line)
                resp = json.loads(line)
                if not resp.get("ok"):
                    raise RuntimeError(resp.get("error", "query failed"))
                yield resp
                if resp.get("frame") == "end":
                    return
        else:
            self._send_msg(
                wiremsg.WireQuery(
                    name=theory,
                    examples=tuple(parse_term(s) for s in examples),
                    version=version,
                    shards=shards or 0,
                    stream=True,
                )
            )
            while True:
                try:
                    message = self._recv_msg()
                except ConnectionError as exc:
                    if "mid-" in str(exc) or "repro:" in str(exc):
                        raise
                    raise ConnectionError(
                        f"repro: lost connection mid-stream ({exc}); "
                        "re-issue the query"
                    ) from exc
                if isinstance(message, wiremsg.WireShard):
                    yield {
                        "ok": True, "frame": "shard", "shard": message.shard,
                        "lo": message.lo, "n": message.n, "ops": message.ops,
                        "covered": [
                            bool((message.covered >> i) & 1) for i in range(message.n)
                        ],
                    }
                    continue
                if isinstance(message, wiremsg.WireQueryEnd):
                    yield self._query_end_dict(message)
                    return
                if isinstance(message, wiremsg.WireJson):
                    raise RuntimeError(message.payload.get("error", "query failed"))
                raise ConnectionError(
                    f"unexpected wire message {type(message).__name__}"
                )

    def _query_end_dict(self, message) -> dict:
        if isinstance(message, wiremsg.WireJson):
            return message.payload  # an error response
        if not isinstance(message, wiremsg.WireQueryEnd):
            raise ConnectionError(f"unexpected wire message {type(message).__name__}")
        return {
            "ok": True,
            "frame": "end",
            "n": message.n,
            "n_covered": message.covered.bit_count(),
            "ops": message.ops,
            "shards": message.shards,
            "covered": [bool((message.covered >> i) & 1) for i in range(message.n)],
        }

"""Deterministic fault & elasticity plans.

A :class:`FaultPlan` is the single description of every fault a run must
survive: worker crashes, stragglers (compute slowdowns), message loss on
individual links, and elastic pool growth (spare hosts joining mid-run).
The same plan drives both execution substrates —
:class:`~repro.backend.sim.SimBackend` injects the events into the
discrete-event scheduler, :class:`~repro.backend.local.LocalProcessBackend`
injects them into the real worker processes — so a fault scenario is
reproducible across virtual and wall-clock time.

Triggers are therefore *logical* wherever cross-substrate determinism is
needed: "crash rank 2 when it is about to process its 2nd
``start_pipeline`` message" means the same thing in virtual and real time.
Purely time-based triggers (``at_time``) exist for the simulator only.

An *empty* plan is indistinguishable from no plan at all: the parallel
front-ends fall back to the exact PR 3 protocol (no heartbeats, no
fault-tolerance messages), so fault-free runs stay charge-for-charge and
byte-for-byte identical to the non-fault-aware code path.  Set
``supervise=True`` to force the fault-tolerance protocol on with no
injected faults — that is how the recovery benchmark measures the
protocol's own overhead.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from typing import Optional, Sequence

__all__ = [
    "WorkerCrash",
    "Straggler",
    "MessageLoss",
    "WorkerJoin",
    "FaultPlan",
    "FaultRecord",
    "normalize_plan",
    "MAX_STRAGGLE_SLEEP",
]

#: cap on the extra *real* sleep a straggler adds per compute interval on
#: the wall-clock substrates (local, mpi), so pathological factors cannot
#: hang a run.  Shared here so both backends stay in sync.
MAX_STRAGGLE_SLEEP = 1.0


@dataclass(frozen=True)
class WorkerCrash:
    """Kill one physical worker rank.

    ``on_recv``/``tag`` is the deterministic cross-substrate trigger: the
    rank dies when it is about to process its ``on_recv``-th received
    message matching ``tag`` (``tag=None`` counts every message).
    ``at_time`` triggers at a virtual-clock instant instead and is only
    honoured by the simulator.
    """

    rank: int
    on_recv: Optional[int] = None
    tag: Optional[str] = None
    at_time: Optional[float] = None

    def __post_init__(self):
        if self.rank < 1:
            raise ValueError("only worker ranks (>= 1) can crash; the master is assumed reliable")
        if (self.on_recv is None) == (self.at_time is None):
            raise ValueError("exactly one of on_recv / at_time must be set")
        if self.on_recv is not None and self.on_recv < 1:
            raise ValueError("on_recv is 1-based")


@dataclass(frozen=True)
class Straggler:
    """Slow one rank's compute down by ``factor`` from ``after_time`` on.

    The simulator multiplies charged compute intervals; the local backend
    sleeps the extra time for real.  Stragglers change timing, never
    results.
    """

    rank: int
    factor: float
    after_time: float = 0.0

    def __post_init__(self):
        if self.factor < 1.0:
            raise ValueError("straggler factor must be >= 1.0")


@dataclass(frozen=True)
class MessageLoss:
    """Drop the ``nth`` (1-based) message sent on the ``src -> dst`` link.

    The sender is still charged for the send (it cannot know the network
    dropped the message); the payload is simply never delivered.
    """

    src: int
    dst: int
    nth: int = 1

    def __post_init__(self):
        if self.nth < 1:
            raise ValueError("nth is 1-based")


@dataclass(frozen=True)
class WorkerJoin:
    """Admit spare physical host ``rank`` at the start of ``epoch``.

    Spare hosts (provisioned via the front-ends' ``spares`` argument)
    idle until the master activates them at the named epoch boundary and
    rebalances logical workers onto the grown pool.
    """

    rank: int
    epoch: int

    def __post_init__(self):
        if self.epoch < 1:
            raise ValueError("epoch is 1-based")


@dataclass(frozen=True)
class FaultPlan:
    """Everything injected into (and tolerated by) one run.

    ``timeout`` is the failure-detection timeout the masters use for
    blocking receives and heartbeat probes — virtual seconds under the
    sim backend, wall-clock seconds under the local and mpi backends.
    """

    crashes: tuple[WorkerCrash, ...] = ()
    stragglers: tuple[Straggler, ...] = ()
    losses: tuple[MessageLoss, ...] = ()
    joins: tuple[WorkerJoin, ...] = ()
    timeout: float = 10.0
    #: run the fault-tolerance protocol even with nothing to inject.
    supervise: bool = False

    @property
    def empty(self) -> bool:
        """True when the plan changes nothing: front-ends treat an empty
        plan exactly like ``fault_plan=None`` (the PR 3 fast path)."""
        return not (
            self.crashes or self.stragglers or self.losses or self.joins or self.supervise
        )

    def replace(self, **kw) -> "FaultPlan":
        return replace(self, **kw)

    # -- per-substrate views -----------------------------------------------------
    def crash_for(self, rank: int) -> Optional[WorkerCrash]:
        for ev in self.crashes:
            if ev.rank == rank:
                return ev
        return None

    def straggler_for(self, rank: int) -> Optional[Straggler]:
        for ev in self.stragglers:
            if ev.rank == rank:
                return ev
        return None

    def losses_for(self, src: int) -> dict[int, frozenset[int]]:
        """dst -> set of 1-based send indices to drop, for one sender."""
        out: dict[int, set[int]] = {}
        for ev in self.losses:
            if ev.src == src:
                out.setdefault(ev.dst, set()).add(ev.nth)
        return {dst: frozenset(ns) for dst, ns in out.items()}

    def joins_at(self, epoch: int) -> tuple[WorkerJoin, ...]:
        return tuple(ev for ev in self.joins if ev.epoch == epoch)

    def validate_ranks(self, p: int, spares: int = 0) -> "FaultPlan":
        """Fail fast on events naming ranks outside the provisioned pool.

        The pool is ranks ``0`` (master) plus workers ``1..p+spares``;
        joins must name provisioned spares (``p+1..p+spares``).  Called by
        the run front-ends and — via ``FaultPlan.load(path, p=...)`` — by
        the CLI, so a bad plan fails at load time, not mid-run.
        """
        hi = p + spares
        for ev in self.crashes:
            if not 1 <= ev.rank <= hi:
                raise ValueError(f"crash rank {ev.rank} outside worker pool 1..{hi}")
        for ev in self.stragglers:
            if not 0 <= ev.rank <= hi:
                raise ValueError(f"straggler rank {ev.rank} outside rank range 0..{hi}")
        for ev in self.losses:
            for end, rank in (("src", ev.src), ("dst", ev.dst)):
                if not 0 <= rank <= hi:
                    raise ValueError(f"drop {end} rank {rank} outside rank range 0..{hi}")
        for ev in self.joins:
            if not p < ev.rank <= hi:
                raise ValueError(
                    f"join rank {ev.rank} is not a provisioned spare ({p + 1}..{hi})"
                )
        return self

    # -- (de)serialization --------------------------------------------------------
    def to_json(self) -> str:
        events: list[dict] = []
        for ev in self.crashes:
            d: dict = {"kind": "crash", "rank": ev.rank}
            if ev.on_recv is not None:
                d["on_recv"] = ev.on_recv
                if ev.tag is not None:
                    d["tag"] = ev.tag
            else:
                d["at_time"] = ev.at_time
            events.append(d)
        for ev in self.stragglers:
            events.append(
                {"kind": "straggler", "rank": ev.rank, "factor": ev.factor, "after_time": ev.after_time}
            )
        for ev in self.losses:
            events.append({"kind": "drop", "src": ev.src, "dst": ev.dst, "nth": ev.nth})
        for ev in self.joins:
            events.append({"kind": "join", "rank": ev.rank, "epoch": ev.epoch})
        return json.dumps(
            {"timeout": self.timeout, "supervise": self.supervise, "events": events},
            indent=2,
        )

    @classmethod
    def from_json(
        cls, text: str, *, p: Optional[int] = None, spares: int = 0
    ) -> "FaultPlan":
        """Parse a plan; with ``p`` set, also :meth:`validate_ranks`."""
        doc = json.loads(text)
        crashes: list[WorkerCrash] = []
        stragglers: list[Straggler] = []
        losses: list[MessageLoss] = []
        joins: list[WorkerJoin] = []
        for i, ev in enumerate(doc.get("events", ())):
            kind = ev.get("kind")
            if kind == "crash":
                crashes.append(
                    WorkerCrash(
                        rank=ev["rank"],
                        on_recv=ev.get("on_recv"),
                        tag=ev.get("tag"),
                        at_time=ev.get("at_time"),
                    )
                )
            elif kind == "straggler":
                stragglers.append(
                    Straggler(
                        rank=ev["rank"],
                        factor=ev["factor"],
                        after_time=ev.get("after_time", 0.0),
                    )
                )
            elif kind == "drop":
                losses.append(MessageLoss(src=ev["src"], dst=ev["dst"], nth=ev.get("nth", 1)))
            elif kind == "join":
                joins.append(WorkerJoin(rank=ev["rank"], epoch=ev["epoch"]))
            else:
                raise ValueError(f"event #{i}: unknown fault event kind {kind!r}")
        plan = cls(
            crashes=tuple(crashes),
            stragglers=tuple(stragglers),
            losses=tuple(losses),
            joins=tuple(joins),
            timeout=float(doc.get("timeout", 10.0)),
            supervise=bool(doc.get("supervise", False)),
        )
        if p is not None:
            plan.validate_ranks(p, spares)
        return plan

    @classmethod
    def load(cls, path: str, *, p: Optional[int] = None, spares: int = 0) -> "FaultPlan":
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_json(fh.read(), p=p, spares=spares)

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_json() + "\n")


def normalize_plan(plan: Optional[FaultPlan]) -> Optional[FaultPlan]:
    """None, or a plan that actually does something (empty plans → None)."""
    if plan is None or plan.empty:
        return None
    return plan


@dataclass(frozen=True)
class FaultRecord:
    """One injected/observed fault event, for run reports."""

    kind: str  # "crash" | "straggle" | "drop" | "join" | "detect" | "adopt"
    rank: int
    time: float
    detail: str = ""

    def __str__(self) -> str:
        extra = f" {self.detail}" if self.detail else ""
        return f"[t={self.time:.3f}] {self.kind} rank={self.rank}{extra}"

"""JobSpec validation/round-trips and run_job parity with direct runs."""

import pytest

from repro.ilp import mdie
from repro.parallel import run_p2mdie, wire
from repro.service import JobRecord, JobSpec, run_job
from repro.service.jobs import WIDTH_DEFAULT, WIDTH_NOLIMIT


class TestJobSpec:
    def test_defaults(self):
        spec = JobSpec(dataset="trains")
        assert spec.algo == "mdie"
        assert spec.backend == "sim"
        assert spec.width == WIDTH_DEFAULT
        assert spec.checkpointable

    @pytest.mark.parametrize(
        "kw",
        [
            {"dataset": "no_such_dataset"},
            {"dataset": "trains", "algo": "no_such_algo"},
            {"dataset": "trains", "backend": "no_such_backend"},
            {"dataset": "trains", "scale": "huge"},
            {"dataset": "trains", "algo": "p2mdie", "p": 0},
            {"dataset": "trains", "width": 0},
            {"dataset": "trains", "max_epochs": 0},
            # independent writes no checkpoints / has a single merge epoch
            {"dataset": "trains", "algo": "independent", "preemptible": True},
            {"dataset": "trains", "algo": "independent", "max_epochs": 3},
            # register_as must satisfy the registry naming rule up front,
            # not after the learning run completes
            {"dataset": "trains", "register_as": "my theory"},
            {"dataset": "trains", "register_as": ".hidden"},
        ],
    )
    def test_validation(self, kw):
        with pytest.raises(ValueError):
            JobSpec(**kw)

    def test_mpi_backend_is_a_valid_spec(self):
        # The scheduler pool may host MPI jobs (rank 0 of an mpiexec
        # launch); validity is a spec question, availability a run one.
        spec = JobSpec(dataset="trains", algo="p2mdie", p=2, backend="mpi")
        assert JobSpec.from_dict(spec.to_dict()) == spec

    def test_json_round_trip(self):
        spec = JobSpec(
            dataset="krki", algo="p2mdie", p=3, width=WIDTH_NOLIMIT, seed=7,
            backend="local", priority=-2, max_epochs=5, preemptible=True,
            register_as="krki-prod",
        )
        assert JobSpec.from_dict(spec.to_dict()) == spec

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown job-spec fields"):
            JobSpec.from_dict({"dataset": "trains", "bogus": 1})
        with pytest.raises(ValueError, match="dataset"):
            JobSpec.from_dict({})

    def test_wire_round_trip(self):
        spec = JobSpec(
            dataset="mesh", algo="covpar", p=4, seed=3, backend="local",
            priority=9, preemptible=True, register_as="mesh-v2",
        )
        rec = JobRecord(
            job_id="job-0042", seq=42, spec=spec, state="running",
            epochs_done=3, error="",
        )
        data = wire.encode_always(rec)
        assert wire.decode(data) == rec

    def test_wire_bytes_deterministic(self):
        rec = JobRecord(
            job_id="job-0001", seq=1,
            spec=JobSpec(dataset="trains", algo="p2mdie", p=2),
            state="queued",
        )
        assert wire.encode_always(rec) == wire.encode_always(rec)


class TestRunJob:
    def test_mdie_parity_with_direct_run(self, trains):
        outcome = run_job(JobSpec(dataset="trains", algo="mdie", seed=0))
        direct = mdie(
            trains.kb, trains.pos, trains.neg, trains.modes, trains.config, seed=0
        )
        assert list(outcome.theory) == list(direct.theory)
        assert outcome.epochs == direct.epochs
        assert outcome.uncovered == direct.uncovered
        assert outcome.ops == direct.ops
        assert outcome.finished
        assert outcome.train_accuracy == pytest.approx(100.0)
        assert outcome.config_sig == repr(trains.config)

    def test_p2mdie_parity_with_direct_run(self, trains):
        spec = JobSpec(dataset="trains", algo="p2mdie", p=2, seed=0)
        outcome = run_job(spec)
        direct = run_p2mdie(
            trains.kb, trains.pos, trains.neg, trains.modes, trains.config,
            p=2, seed=0,
        )
        assert list(outcome.theory) == list(direct.theory)
        assert outcome.epochs == direct.epochs
        assert outcome.seconds == direct.seconds
        assert outcome.mbytes == direct.mbytes

    def test_independent_runs(self):
        outcome = run_job(JobSpec(dataset="trains", algo="independent", p=2, seed=0))
        assert len(outcome.theory) >= 1
        assert outcome.finished

    def test_epoch_cap_marks_unfinished(self, krki):
        capped = run_job(JobSpec(dataset="krki", algo="mdie", seed=0, max_epochs=1))
        full = run_job(JobSpec(dataset="krki", algo="mdie", seed=0))
        assert full.epochs > 1
        assert capped.epochs == 1
        assert not capped.finished
        assert full.finished

    def test_summary_is_plain_data(self, trains_theory):
        import json

        summary = trains_theory.summary()
        json.dumps(summary)  # must be JSON-serializable as-is
        assert summary["rules"] == len(trains_theory.theory)
        assert "eastbound" in summary["theory"]

"""Unit tests for the SLD resolution engine."""

import pytest

from repro.logic.engine import Engine, QueryBudget
from repro.logic.knowledge import KnowledgeBase
from repro.logic.parser import parse_term
from repro.logic.terms import atom


def make_engine(program: str, **budget) -> Engine:
    kb = KnowledgeBase()
    kb.add_program(program)
    return Engine(kb, QueryBudget(**budget) if budget else None)


class TestFacts:
    def test_ground_hit(self):
        e = make_engine("p(a).")
        assert e.prove(parse_term("p(a)"))

    def test_ground_miss(self):
        e = make_engine("p(a).")
        assert not e.prove(parse_term("p(b)"))

    def test_enumerate(self):
        e = make_engine("p(a). p(b). p(c).")
        sols = [str(s) for s in e.solve(parse_term("p(X)"))]
        assert sols == ["p(a)", "p(b)", "p(c)"]

    def test_limit(self):
        e = make_engine("p(a). p(b). p(c).")
        assert len(list(e.solve(parse_term("p(X)"), limit=2))) == 2

    def test_conjunction(self):
        e = make_engine("p(a). p(b). q(b).")
        sols = list(e.solve(parse_term("p(X), q(X)")))
        assert len(sols) == 1

    def test_first_arg_binding_uses_index(self):
        e = make_engine("p(a, 1). p(a, 2). p(b, 3).")
        ops0 = e.total_ops
        assert e.prove(parse_term("p(b, X)"))
        assert e.total_ops - ops0 <= 2  # only the b bucket scanned


class TestRules:
    def test_chaining(self):
        e = make_engine("p(a). q(X) :- p(X).")
        assert e.prove(parse_term("q(a)"))

    def test_recursion_with_depth_bound(self):
        e = make_engine(
            "edge(a, b). edge(b, c). edge(c, d)."
            "path(X, Y) :- edge(X, Y)."
            "path(X, Z) :- edge(X, Y), path(Y, Z)."
        )
        assert e.prove(parse_term("path(a, d)"))
        assert not e.prove(parse_term("path(d, a)"))

    def test_depth_bound_blocks_deep_proofs(self):
        e = make_engine(
            "edge(a, b). edge(b, c). edge(c, d). edge(d, f)."
            "path(X, Y) :- edge(X, Y)."
            "path(X, Z) :- edge(X, Y), path(Y, Z).",
            max_depth=2,
            max_ops=100_000,
        )
        assert e.prove(parse_term("path(a, c)"))
        assert not e.prove(parse_term("path(a, f)"))  # needs depth 4

    def test_infinite_left_recursion_terminates(self):
        e = make_engine("loop(X) :- loop(X).", max_depth=16, max_ops=10_000)
        assert not e.prove(parse_term("loop(a)"))


class TestBuiltins:
    def test_true_fail(self):
        e = make_engine("p(a).")
        assert e.prove(parse_term("true"))
        assert not e.prove(parse_term("fail"))

    def test_unify_builtin(self):
        e = make_engine("p(a).")
        assert e.prove(parse_term("X = a, p(X)"))
        assert not e.prove(parse_term("a = b"))

    def test_not_unifiable(self):
        e = make_engine("p(a).")
        assert e.prove(parse_term("a \\= b"))
        assert not e.prove(parse_term("X \\= a"))  # X unifiable with a

    def test_structural_equality(self):
        e = make_engine("p(a).")
        assert e.prove(parse_term("f(a) == f(a)"))
        assert e.prove(parse_term("f(a) \\== f(b)"))

    def test_arith_comparisons(self):
        e = make_engine("p(a).")
        assert e.prove(parse_term("3 < 4"))
        assert e.prove(parse_term("4 >= 4"))
        assert e.prove(parse_term("2 + 2 =< 5"))
        assert not e.prove(parse_term("5 > 2 * 3"))

    def test_is(self):
        e = make_engine("p(a).")
        sols = list(e.solve(parse_term("X is (2 + 4) / 2")))
        assert len(sols) == 1
        assert sols[0].args[0].value == 3.0

    def test_is_with_unbound_rhs_fails(self):
        e = make_engine("p(a).")
        assert not e.prove(parse_term("X is Y + 1"))

    def test_comparison_non_numeric_fails(self):
        e = make_engine("p(a).")
        assert not e.prove(parse_term("a < b"))

    def test_negation_as_failure(self):
        e = make_engine("p(a).")
        assert e.prove(parse_term("\\+ p(b)"))
        assert not e.prove(parse_term("\\+ p(a)"))

    def test_negation_does_not_leak_bindings(self):
        e = make_engine("p(a). q(b).")
        sols = list(e.solve(parse_term("\\+ p(b), q(X)")))
        assert len(sols) == 1

    def test_between_generate(self):
        e = make_engine("p(a).")
        sols = list(e.solve(parse_term("between(1, 3, X)")))
        assert [s.args[2].value for s in sols] == [1, 2, 3]

    def test_between_check(self):
        e = make_engine("p(a).")
        assert e.prove(parse_term("between(1, 5, 3)"))
        assert not e.prove(parse_term("between(1, 5, 9)"))

    def test_dif_const(self):
        e = make_engine("p(a). p(b).")
        sols = list(e.solve(parse_term("p(X), p(Y), dif_const(X, Y)")))
        assert len(sols) == 2


class TestResourceBounds:
    def test_ops_budget_fails_query(self):
        e = make_engine(" ".join(f"p({i})." for i in range(100)), max_depth=5, max_ops=10)
        # counting all solutions needs > 10 ops
        n = e.count_solutions(parse_term("p(X)"))
        assert e.last_exhausted
        assert n < 100

    def test_ops_accumulate(self):
        e = make_engine("p(a).")
        before = e.total_ops
        e.prove(parse_term("p(a)"))
        e.prove(parse_term("p(a)"))
        assert e.total_ops > before

    def test_budget_validation(self):
        with pytest.raises(ValueError):
            QueryBudget(max_depth=0)
        with pytest.raises(ValueError):
            QueryBudget(max_ops=0)


class TestSolutions:
    def test_count_distinct(self):
        e = make_engine("p(a). p(a). q(a). q(b).")
        # p(a) stored once (dedup); join yields distinct instances
        assert e.count_solutions(parse_term("q(X)")) == 2

    def test_multi_goal_solutions_are_tuples(self):
        e = make_engine("p(a). q(a).")
        sols = list(e.solve([parse_term("p(X)"), parse_term("q(X)")]))
        assert sols == [(parse_term("p(a)"), parse_term("q(a)"))]

    def test_unbound_goal_raises(self):
        e = make_engine("p(a).")
        with pytest.raises(TypeError):
            list(e.solve(parse_term("X")))

"""Pipe-transport regression tests for LocalProcessBackend.

Covers the failure modes a real message-passing substrate adds over the
simulation: OS pipe-buffer backpressure (ring deadlock), protocol
deadlock (timeout + cleanup), child crashes, and accounting parity.
"""

import multiprocessing as mp
import time

import pytest

from repro.backend import (
    BackendError,
    BackendTimeoutError,
    LocalProcessBackend,
    SimBackend,
)
from repro.cluster.process import SimProcess


class Ping(SimProcess):
    def run(self, ctx):
        yield ctx.send(1, "ping", tag="t")
        msg = yield ctx.recv(src=1)
        self.got = msg.payload
        yield ctx.compute(10, label="work")


class Pong(SimProcess):
    def run(self, ctx):
        msg = yield ctx.recv(src=0)
        yield ctx.send(0, msg.payload + "-pong", tag="t")


class Hang(SimProcess):
    """Blocks forever on a receive nothing will satisfy."""

    def run(self, ctx):
        yield ctx.recv(tag="never")


class BulkExchanger(SimProcess):
    """Sends a large volume to its peer *before* receiving anything.

    Each payload is far bigger than the OS pipe buffer, and both ranks
    send first: with naive blocking ``Connection.send`` both block with
    full buffers and the run deadlocks.  The sender-thread transport must
    survive this.
    """

    N_MSGS = 24
    PAYLOAD = b"x" * 262_144  # 256 KiB each, ~6 MiB per direction

    def run(self, ctx):
        peer = 1 - self.rank
        for i in range(self.N_MSGS):
            yield ctx.send(peer, (i, self.PAYLOAD), tag="bulk")
        self.received = 0
        for _ in range(self.N_MSGS):
            msg = yield ctx.recv(src=peer, tag="bulk")
            self.received += 1
            assert msg.payload[1] == self.PAYLOAD


class RingForwarder(SimProcess):
    """Rank r sends to (r+1) % n and receives from (r-1) % n, bulk-first."""

    N_MSGS = 8
    PAYLOAD = b"y" * 262_144

    def __init__(self, rank, n):
        super().__init__(rank)
        self.n = n

    def run(self, ctx):
        nxt = (self.rank + 1) % self.n
        prv = (self.rank - 1) % self.n
        for i in range(self.N_MSGS):
            yield ctx.send(nxt, (i, self.PAYLOAD), tag="ring")
        self.received = 0
        for _ in range(self.N_MSGS):
            yield ctx.recv(src=prv, tag="ring")
            self.received += 1


class Crasher(SimProcess):
    def run(self, ctx):
        yield ctx.compute(1)
        raise ValueError("boom in child")


class MidEpochRaiser(SimProcess):
    """A 'worker' that serves a couple of requests, then raises — the
    others keep waiting on it, mimicking a worker dying mid-epoch."""

    def run(self, ctx):
        for _ in range(2):
            msg = yield ctx.recv(tag="req")
            yield ctx.send(msg.src, "ack", tag="ack")
        raise ValueError("worker exploded mid-epoch")


class NeedyMaster(SimProcess):
    """Keeps asking rank 1 and waiting for answers (forever)."""

    def run(self, ctx):
        while True:
            yield ctx.send(1, "work", tag="req")
            yield ctx.recv(tag="ack")


class BadDest(SimProcess):
    def run(self, ctx):
        yield ctx.send(99, "x", tag="t")


class Solo(SimProcess):
    def run(self, ctx):
        yield ctx.compute(5)
        self.done = True


def _no_repro_children():
    deadline = time.monotonic() + 10.0
    while time.monotonic() < deadline:
        leftovers = [c for c in mp.active_children() if c.name.startswith("repro-rank")]
        if not leftovers:
            return True
        time.sleep(0.05)
    return False


class TestHappyPath:
    def test_ping_pong(self):
        run = LocalProcessBackend(timeout=30).run([Ping(0), Pong(1)])
        assert run.proc(0).got == "ping-pong"
        assert run.comm.messages == 2
        assert len(run.clocks) == 2
        assert run.seconds == max(run.clocks) > 0.0

    def test_comm_accounting_matches_sim(self):
        """Same messages, same pickled sizes — Table 4 numbers carry over."""
        sim = SimBackend().run([Ping(0), Pong(1)])
        loc = LocalProcessBackend(timeout=30).run([Ping(0), Pong(1)])
        assert loc.comm.messages == sim.comm.messages
        assert loc.comm.bytes_total == sim.comm.bytes_total
        assert loc.comm.bytes_by_tag == sim.comm.bytes_by_tag
        assert loc.comm.bytes_by_link == sim.comm.bytes_by_link

    def test_record_trace(self):
        run = LocalProcessBackend(timeout=30, record_trace=True).run([Ping(0), Pong(1)])
        assert any(iv.label == "work" and iv.rank == 0 for iv in run.trace)


class TestBackpressure:
    def test_bidirectional_bulk_does_not_deadlock(self):
        """Regression: sends must not block the generator thread even when
        both directions exceed the OS pipe buffer."""
        run = LocalProcessBackend(timeout=120).run([BulkExchanger(0), BulkExchanger(1)])
        assert run.proc(0).received == BulkExchanger.N_MSGS
        assert run.proc(1).received == BulkExchanger.N_MSGS
        assert run.comm.messages == 2 * BulkExchanger.N_MSGS

    def test_ring_bulk_does_not_deadlock(self):
        n = 4
        run = LocalProcessBackend(timeout=120).run([RingForwarder(r, n) for r in range(n)])
        assert all(run.proc(r).received == RingForwarder.N_MSGS for r in range(n))


class TestFailureModes:
    def test_deadlock_times_out_and_cleans_up(self):
        """Regression: an unsatisfiable receive must end in a timeout error,
        not a hung parent, and must leave no live children behind."""
        with pytest.raises(BackendTimeoutError, match="timed out"):
            LocalProcessBackend(timeout=1.5).run([Hang(0), Hang(1)])
        assert _no_repro_children(), "timed-out children were not terminated"

    def test_child_exception_propagates(self):
        with pytest.raises(BackendError, match="boom in child"):
            LocalProcessBackend(timeout=30).run([Crasher(0), Hang(1)])
        assert _no_repro_children()

    def test_mid_epoch_worker_traceback_surfaced(self):
        """Regression: when a worker raises mid-epoch while its peers
        block on it, the error must carry the *failing worker's* repr and
        traceback — not just a timeout or a derivative peer error."""
        with pytest.raises(BackendError) as excinfo:
            LocalProcessBackend(timeout=20).run(
                [NeedyMaster(0), MidEpochRaiser(1), Hang(2)]
            )
        text = str(excinfo.value)
        assert "worker exploded mid-epoch" in text
        assert "Traceback" in text
        assert "rank 1" in text
        assert _no_repro_children()

    def test_timeout_includes_reported_tracebacks(self):
        """Regression: the deadlock watchdog must surface any traceback a
        child managed to report before the timeout fired, instead of only
        saying 'timed out'."""

        class LateRaiser(SimProcess):
            def run(self, ctx):
                yield ctx.compute(1)
                raise ValueError("slow doom")

        class Stubborn(SimProcess):
            def run(self, ctx):
                yield ctx.recv(tag="never")

        # Rank 1 raises promptly; rank 0 hangs until the watchdog fires.
        # (The parent fails fast on the error here; the point is that the
        # message always names the root cause with its traceback.)
        with pytest.raises(BackendError) as excinfo:
            LocalProcessBackend(timeout=3.0).run([Stubborn(0), LateRaiser(1)])
        text = str(excinfo.value)
        assert "slow doom" in text
        assert "Traceback" in text
        assert _no_repro_children()

    def test_send_to_unknown_rank(self):
        with pytest.raises(BackendError, match="unknown rank"):
            LocalProcessBackend(timeout=30).run([BadDest(0), Hang(1)])
        assert _no_repro_children()

    def test_recv_from_exited_peer_fails_fast(self):
        """Regression: a receive that can never be satisfied because every
        peer already exited must raise promptly (via EOF detection), not
        hang until the watchdog timeout."""
        class_exit = Solo(0)  # sends nothing, exits immediately
        t0 = time.monotonic()
        with pytest.raises(BackendError, match="never be satisfied"):
            LocalProcessBackend(timeout=60).run([class_exit, Hang(1)])
        assert time.monotonic() - t0 < 30, "EOF fail-fast did not trigger"
        assert _no_repro_children()

    def test_timeout_env_var(self, monkeypatch):
        monkeypatch.setenv("REPRO_LOCAL_TIMEOUT", "1.5")
        bk = LocalProcessBackend()
        assert bk.timeout == 1.5
        with pytest.raises(BackendTimeoutError):
            bk.run([Hang(0), Hang(1)])
        assert _no_repro_children()

    def test_non_contiguous_ranks_rejected(self):
        with pytest.raises(ValueError, match="contiguous"):
            LocalProcessBackend(timeout=30).run([Ping(0), Pong(2)])

    def test_single_rank(self):
        run = LocalProcessBackend(timeout=30).run([Solo(0)])
        assert run.proc(0).done is True
        assert run.comm.messages == 0

"""Real wall-clock scaling of the LocalProcessBackend.

Unlike the virtual-time tables (which model an 8-node Beowulf), this
bench runs P²-MDIE on *real* OS processes and records genuine wall-clock
seconds for p ∈ {1, 2, 4} workers, plus the speedup relative to p=1.
Numbers depend on this host's core count — on a single-core machine the
"speedup" legitimately hovers around 1.0 or below (the point is that the
same code exercises real parallel hardware when it exists).

Knobs: ``REPRO_WALLCLOCK_DATASET`` (default ``krki``) and the usual
``REPRO_SCALE``/``REPRO_SEED``.
"""

from __future__ import annotations

import os

from conftest import SEED, one_shot
from repro.backend import LocalProcessBackend
from repro.datasets import make_dataset
from repro.parallel import run_p2mdie

DATASET = os.environ.get("REPRO_WALLCLOCK_DATASET", "krki")
SCALE = os.environ.get("REPRO_SCALE", "small")
WORKERS = (1, 2, 4)


def _sweep(ds):
    results = {}
    for p in WORKERS:
        results[p] = run_p2mdie(
            ds.kb,
            ds.pos,
            ds.neg,
            ds.modes,
            ds.config,
            p=p,
            width=10,
            seed=SEED,
            backend=LocalProcessBackend(timeout=1800.0),
        )
    return results


def _render(results) -> str:
    base = results[WORKERS[0]].seconds
    lines = [
        f"Backend wall-clock — LocalProcessBackend on {DATASET} ({SCALE} scale)",
        f"{'p':>4}  {'wall s':>10}  {'speedup':>8}  {'MB':>8}  {'epochs':>6}  {'clauses':>7}",
    ]
    for p in WORKERS:
        r = results[p]
        speedup = base / r.seconds if r.seconds else float("inf")
        lines.append(
            f"{p:>4}  {r.seconds:>10.3f}  {speedup:>8.2f}  {r.mbytes:>8.3f}  "
            f"{r.epochs:>6}  {len(r.theory):>7}"
        )
    return "\n".join(lines)


def test_backend_wallclock(benchmark, table_sink):
    ds = make_dataset(DATASET, seed=SEED, scale=SCALE)
    results = one_shot(benchmark, _sweep, ds)
    table_sink("backend_wallclock", _render(results))
    for p, r in results.items():
        assert r.seconds > 0.0, f"p={p}: no wall-clock recorded"
        assert len(r.theory) >= 1, f"p={p}: nothing learned"
        assert r.uncovered == 0 or r.epochs >= 1
    # Real transport moved real bytes for every parallel configuration.
    assert all(results[p].comm.messages > 0 for p in WORKERS)

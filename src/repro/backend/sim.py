"""SimBackend: the discrete-event VirtualCluster behind the backend protocol.

This is the default substrate — deterministic virtual time over the
paper's network/cost models, unchanged from the original
:class:`~repro.cluster.cluster.VirtualCluster` stack.
"""

from __future__ import annotations

from typing import Sequence

from repro.backend.base import Backend, BackendRun
from repro.cluster.cluster import VirtualCluster
from repro.cluster.costmodel import CostModel, DEFAULT_COST_MODEL
from repro.cluster.network import FAST_ETHERNET, NetworkModel
from repro.cluster.process import SimProcess
from repro.fault.plan import FaultPlan

__all__ = ["SimBackend"]


class SimBackend(Backend):
    """Deterministic simulation: virtual clocks, modelled network."""

    name = "sim"
    supports_fault_injection = True

    def __init__(
        self,
        network: NetworkModel = FAST_ETHERNET,
        cost_model: CostModel = DEFAULT_COST_MODEL,
        record_trace: bool = False,
        fault_plan: "FaultPlan | None" = None,
    ):
        self.network = network
        self.cost_model = cost_model
        self.record_trace = record_trace
        self.fault_plan = fault_plan

    def run(self, procs: Sequence[SimProcess]) -> BackendRun:
        ordered = sorted(procs, key=lambda p: p.rank)
        cluster = VirtualCluster(
            ordered,
            network=self.network,
            cost_model=self.cost_model,
            record_trace=self.record_trace,
            fault_plan=self.fault_plan,
        )
        run = cluster.run()
        # Crashed ranks' process objects hold stale pre-crash state (their
        # logical workers were rebuilt elsewhere); per the BackendRun
        # contract they are absent from the returned procs.
        crashed = set(run.crashed)
        return BackendRun(
            seconds=run.makespan,
            comm=run.comm,
            clocks=run.clocks,
            trace=run.trace,
            procs=[p for p in ordered if p.rank not in crashed],
            fault_log=run.fault_log,
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"SimBackend(network={self.network!r})"

"""Unit tests for the learn_rule search (Figs. 2 and 7)."""

import pytest

from repro.ilp.bottom import build_bottom
from repro.ilp.config import ILPConfig
from repro.ilp.search import learn_rule
from repro.ilp.store import ExampleStore
from repro.logic.parser import parse_clause


@pytest.fixture
def bottom(family_engine, family_modes, family_config, family_pos):
    return build_bottom(family_pos[0], family_engine, family_modes, family_config)


@pytest.fixture
def store(family_pos, family_neg):
    return ExampleStore(family_pos, family_neg)


class TestBasicSearch:
    def test_finds_target(self, family_engine, bottom, store, family_config):
        res = learn_rule(family_engine, bottom, store, family_config, width=None)
        best = res.best
        assert best is not None
        assert best.stats.pos == 5 and best.stats.neg == 0
        target = parse_clause("daughter(A, B) :- parent(B, A), female(A).")
        assert any(er.clause == target for er in res.good)

    def test_good_rules_are_good(self, family_engine, bottom, store, family_config):
        res = learn_rule(family_engine, bottom, store, family_config, width=None)
        for er in res.good:
            assert er.stats.pos >= family_config.min_pos
            assert er.stats.neg <= family_config.noise

    def test_sorted_by_score(self, family_engine, bottom, store, family_config):
        res = learn_rule(family_engine, bottom, store, family_config, width=None)
        scores = [er.score for er in res.good]
        assert scores == sorted(scores, reverse=True)

    def test_bare_head_never_in_good(self, family_engine, bottom, store, family_config):
        res = learn_rule(family_engine, bottom, store, family_config, width=None)
        assert all(er.clause.body for er in res.good)


class TestWidth:
    def test_width_truncates(self, family_engine, bottom, store, family_config):
        full = learn_rule(family_engine, bottom, store, family_config, width=None)
        w2 = learn_rule(family_engine, bottom, store, family_config, width=2)
        assert len(w2.good) == min(2, len(full.good))
        assert [e.clause for e in w2.good] == [e.clause for e in full.good[:2]]

    def test_default_width_from_config(self, family_engine, bottom, store, family_config):
        cfg = family_config.replace(pipeline_width=1)
        res = learn_rule(family_engine, bottom, store, cfg)
        assert len(res.good) <= 1


class TestSeeds:
    def test_seeds_included_in_good(self, family_engine, bottom, store, family_config):
        first = learn_rule(family_engine, bottom, store, family_config, width=3)
        seeds = [er.rule for er in first.good]
        res = learn_rule(family_engine, bottom, store, family_config, seeds=seeds, width=None)
        good_clauses = {er.clause for er in res.good}
        for s in seeds:
            assert s.clause in good_clauses

    def test_seeded_search_continues_refining(self, family_engine, bottom, store, family_config):
        # seeding with the bare head reproduces the unseeded search
        from repro.ilp.refinement import start_rule

        unseeded = learn_rule(family_engine, bottom, store, family_config, width=None)
        seeded = learn_rule(
            family_engine, bottom, store, family_config, seeds=[start_rule(bottom)], width=None
        )
        assert [e.clause for e in unseeded.good] == [e.clause for e in seeded.good]


class TestResourceAccounting:
    def test_max_nodes_respected(self, family_engine, bottom, store, family_config):
        cfg = family_config.replace(max_nodes=5)
        res = learn_rule(family_engine, bottom, store, cfg, width=None)
        assert res.nodes_generated <= 5
        assert res.exhausted

    def test_ops_positive(self, family_engine, bottom, store, family_config):
        res = learn_rule(family_engine, bottom, store, family_config, width=None)
        assert res.ops > 0

    def test_deterministic(self, family_engine, bottom, store, family_config):
        a = learn_rule(family_engine, bottom, store, family_config, width=None)
        b = learn_rule(family_engine, bottom, store, family_config, width=None)
        assert [e.clause for e in a.good] == [e.clause for e in b.good]


class TestPruning:
    def test_zero_pos_prunes_expansion(self, family_engine, bottom, family_config):
        # a store where nothing is alive: search evaluates the root and
        # cannot find good rules
        dead = ExampleStore([], [])
        res = learn_rule(family_engine, bottom, dead, family_config, width=None)
        assert res.good == []
        assert res.nodes_generated == 1  # the bare head only

"""Knowledge base: indexed ground facts plus rules.

The background knowledge ``B`` of an ILP problem is a
:class:`KnowledgeBase`.  Facts are stored per predicate indicator with
**argument indexes**: any argument position that a goal binds to a ground
term is an access path.  A single bound position uses its per-position
index; several bound positions use a composite index over exactly that
signature — at least as selective as any single-position bucket, so only
facts matching *all* bound arguments are ever offered for unification.
Position 0 is indexed eagerly (the dominant access path during coverage
testing: ``bond(m17, A1, A2)`` with the molecule id bound); every other
index is built lazily the first time a goal needs it, so e.g.
``bond(A, m17_a3, B)`` stops scanning the whole store after its first
occurrence.  Rules are stored per indicator in insertion order,
Prolog-style.

The base also carries a monotonic ``version`` counter, bumped on every
mutation — consumers that cache derived results (the engine's ground-goal
memo table) use it for invalidation.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable, Iterator, Optional

from repro.logic.clause import Clause, head_indicator
from repro.logic.parser import parse_program
from repro.logic.terms import Const, Struct, Term, Var, is_ground

__all__ = ["FactStore", "KnowledgeBase"]

_EMPTY: list = []


class FactStore:
    """Ground facts of a single predicate, with multi-argument indexing."""

    __slots__ = ("indicator", "facts", "fact_set", "_indexes", "_composite")

    def __init__(self, indicator: tuple[str, int]):
        self.indicator = indicator
        self.facts: list[Term] = []
        self.fact_set: set[Term] = set()
        # arg position -> {ground arg term -> facts with that arg, in
        # insertion order}.  Position 0 is built eagerly, others on demand.
        self._indexes: dict[int, dict[Term, list[Term]]] = {}
        # bound-position signature (pos, pos, ...) -> {arg tuple -> facts}:
        # composite indexes for goals binding several arguments at once,
        # e.g. bond(a3, C, 2) with (0, 2) bound.
        self._composite: dict[tuple[int, ...], dict[tuple, list[Term]]] = {}
        if indicator[1] >= 1:
            self._indexes[0] = {}

    def add(self, fact: Term) -> bool:
        """Add a ground fact; returns False if it was already present."""
        if fact in self.fact_set:
            return False
        self.fact_set.add(fact)
        self.facts.append(fact)
        if isinstance(fact, Struct):
            for pos, index in self._indexes.items():
                index.setdefault(fact.args[pos], []).append(fact)
            for sig, index in self._composite.items():
                key = tuple(fact.args[p] for p in sig)
                index.setdefault(key, []).append(fact)
        return True

    def _index_on(self, pos: int) -> dict[Term, list[Term]]:
        """The index for argument position ``pos``, built on first use."""
        index = self._indexes.get(pos)
        if index is None:
            index = {}
            for fact in self.facts:
                index.setdefault(fact.args[pos], []).append(fact)
            self._indexes[pos] = index
        return index

    def _composite_on(self, sig: tuple[int, ...]) -> dict[tuple, list[Term]]:
        index = self._composite.get(sig)
        if index is None:
            index = {}
            for fact in self.facts:
                key = tuple(fact.args[p] for p in sig)
                index.setdefault(key, []).append(fact)
            self._composite[sig] = index
        return index

    def candidates(self, goal: Term) -> list[Term]:
        """Facts possibly unifying with ``goal``.

        A single bound position uses its per-position index; several bound
        positions use a composite index over exactly that signature, so
        only facts matching *all* bound arguments are ever offered for
        unification.  Bucket order is insertion order, so enumeration
        order matches a full scan with non-matching facts skipped.
        """
        if type(goal) is not Struct:
            return self.facts
        args = goal.args
        bound = [
            pos
            for pos in range(len(args))
            if type(args[pos]) is Const or (type(args[pos]) is Struct and args[pos].ground)
        ]
        return self.candidates_bound(list(args), bound)

    def candidates_bound(self, walked: list, bound: list) -> list[Term]:
        """Like :meth:`candidates`, for a goal the engine already walked.

        ``walked`` holds the effective argument values and ``bound`` the
        positions holding ground terms — the engine computes both in its
        per-goal dispatch, so no argument is traversed twice.
        """
        n = len(bound)
        if n == 0:
            return self.facts
        if n == 1:
            p = bound[0]
            return self._index_on(p).get(walked[p], _EMPTY)
        if n == len(walked):
            # Fully bound: exact membership, at most one candidate.
            key = Struct(self.indicator[0], tuple(walked))
            return [key] if key in self.fact_set else _EMPTY
        sig = tuple(bound)
        key = tuple(walked[p] for p in bound)
        return self._composite_on(sig).get(key, _EMPTY)

    def candidates_first_walked(self, walked: list) -> list[Term]:
        """Seed-compatible first-argument retrieval over walked args."""
        if walked:
            first = walked[0]
            if type(first) is Const:
                return self._index_on(0).get(first, _EMPTY)
        return self.facts

    def candidates_first(self, goal: Term) -> list[Term]:
        """Seed-compatible retrieval: first-argument index only.

        Kept as the measurable baseline for the legacy coverage kernel
        (``REPRO_COVERAGE_KERNEL=legacy``).
        """
        if isinstance(goal, Struct) and goal.args:
            first = goal.args[0]
            if isinstance(first, Const):
                return self._index_on(0).get(first, _EMPTY)
        return self.facts

    def __len__(self) -> int:
        return len(self.facts)

    def __iter__(self) -> Iterator[Term]:
        return iter(self.facts)

    def __contains__(self, fact: Term) -> bool:
        return fact in self.fact_set


class KnowledgeBase:
    """Background knowledge: ground facts + definite rules.

    >>> kb = KnowledgeBase()
    >>> kb.add_program("parent(ann, bob). parent(bob, cat).")
    >>> kb.add_program("grand(X, Z) :- parent(X, Y), parent(Y, Z).")
    >>> len(kb.facts_for(("parent", 2)))
    2
    """

    def __init__(self, clauses: Iterable[Clause] = ()):
        self._facts: dict[tuple[str, int], FactStore] = {}
        self._rules: dict[tuple[str, int], list[Clause]] = defaultdict(list)
        self.n_facts = 0
        #: monotonic mutation counter (memo-table invalidation stamp).
        self.version = 0
        for c in clauses:
            self.add_clause(c)

    # -- mutation ----------------------------------------------------------------
    def add_clause(self, clause: Clause) -> None:
        if clause.is_fact:
            self.add_fact(clause.head)
        else:
            self.add_rule(clause)

    def add_fact(self, fact: Term) -> bool:
        if not is_ground(fact):
            raise ValueError(f"facts must be ground: {fact}")
        ind = head_indicator(fact)
        store = self._facts.get(ind)
        if store is None:
            store = self._facts[ind] = FactStore(ind)
        added = store.add(fact)
        if added:
            self.n_facts += 1
            self.version += 1
        return added

    def add_rule(self, clause: Clause) -> None:
        self._rules[clause.indicator].append(clause)
        self.version += 1

    def remove_rule(self, clause: Clause) -> None:
        self._rules[clause.indicator].remove(clause)
        self.version += 1

    def add_program(self, src: str) -> None:
        """Parse and add a Prolog-ish program string."""
        for clause in parse_program(src):
            self.add_clause(clause)

    # -- queries -----------------------------------------------------------------
    def facts_for(self, indicator: tuple[str, int]) -> FactStore:
        store = self._facts.get(indicator)
        if store is None:
            store = self._facts[indicator] = FactStore(indicator)
        return store

    def rules_for(self, indicator: tuple[str, int]) -> list[Clause]:
        return self._rules.get(indicator, [])

    def has_predicate(self, indicator: tuple[str, int]) -> bool:
        return bool(self._facts.get(indicator)) or bool(self._rules.get(indicator))

    def predicates(self) -> list[tuple[str, int]]:
        out = set(self._facts) | set(self._rules)
        return sorted(out)

    def __len__(self) -> int:
        """Total clause count (facts + rules)."""
        return self.n_facts + sum(len(rs) for rs in self._rules.values())

    def copy(self) -> "KnowledgeBase":
        """Shallow-ish copy: fact stores are rebuilt, clauses shared."""
        out = KnowledgeBase()
        for ind, store in self._facts.items():
            for f in store.facts:
                out.add_fact(f)
        for ind, rules in self._rules.items():
            out._rules[ind] = list(rules)
        return out

    def stats(self) -> dict:
        return {
            "predicates": len(self.predicates()),
            "facts": self.n_facts,
            "rules": sum(len(rs) for rs in self._rules.values()),
        }

"""Execution-backend protocol: one algorithm, many substrates.

Every parallel strategy in :mod:`repro.parallel` is written as a set of
:class:`~repro.cluster.process.SimProcess` generators that ``yield``
syscalls (send / bcast / recv / compute) to whatever is driving them.
A *backend* supplies that driver:

* :class:`~repro.backend.sim.SimBackend` — the discrete-event
  :class:`~repro.cluster.cluster.VirtualCluster` (deterministic virtual
  time, the paper's evaluation substrate);
* :class:`~repro.backend.local.LocalProcessBackend` — real
  ``multiprocessing`` processes with pipe transport and wall-clock time;
* :class:`~repro.backend.mpi.MPIBackend` — a real MPI communicator via
  mpi4py (when installed).

Because the master/worker generators only ever touch the
:class:`ExecutionContext` surface, the *same* code learns the *same*
theory on every substrate; only the timing/communication measurements
change meaning (virtual seconds vs. wall-clock seconds).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Iterable, Optional, Protocol, Sequence, runtime_checkable

from repro.cluster.process import ComputeInterval, SimProcess
from repro.cluster.scheduler import CommStats

__all__ = [
    "Backend",
    "BackendRun",
    "BackendError",
    "BackendTimeoutError",
    "BackendUnavailableError",
    "ExecutionContext",
    "drive",
]


class BackendError(RuntimeError):
    """A backend failed to execute the process set."""


class BackendTimeoutError(BackendError):
    """The run exceeded the backend's wall-clock timeout (likely deadlock)."""


class BackendUnavailableError(BackendError):
    """The backend's substrate is not usable on this host (e.g. no mpi4py)."""


@runtime_checkable
class ExecutionContext(Protocol):
    """The per-rank surface a :class:`SimProcess` generator runs against.

    Implementations provide the four syscall *constructors* (whose return
    values the process ``yield``\\ s) plus rank/size introspection.  The sim
    backend's :class:`~repro.cluster.process.ProcContext` and the real
    backends' contexts all satisfy this protocol, which is what makes the
    master/worker code backend-agnostic.
    """

    rank: int

    def send(self, dst: int, payload: object, tag: str): ...

    def bcast(self, payload: object, tag: str, dsts: Optional[Iterable[int]] = None): ...

    def recv(
        self,
        src: Optional[int] = None,
        tag: Optional[str] = None,
        timeout: Optional[float] = None,
    ): ...

    def compute(self, ops: int, label: str = "compute"): ...

    @property
    def n_procs(self) -> int: ...


@dataclass
class BackendRun:
    """Artifacts of one completed execution, whatever the substrate.

    ``seconds`` is virtual time under :class:`SimBackend` and real
    wall-clock time under the real backends; ``comm`` always carries the
    same pickled-payload-size accounting, so Table 4-style communication
    numbers are directly comparable across substrates.
    """

    #: makespan: virtual seconds (sim) or wall-clock seconds (local/mpi).
    seconds: float
    comm: CommStats
    #: final per-rank clocks, rank order.
    clocks: list[float] = field(default_factory=list)
    trace: list[ComputeInterval] = field(default_factory=list)
    #: final process objects in rank order.  For in-process backends these
    #: are the very objects passed in; for multi-process backends they are
    #: the children's final states shipped back — read run artifacts
    #: (learned theory, epoch logs, ...) from here, never from the inputs.
    #: Ranks that crashed (injected faults) are absent.
    procs: list[SimProcess] = field(default_factory=list)
    #: injected fault events observed by the substrate, in firing order.
    fault_log: list = field(default_factory=list)

    def proc(self, rank: int) -> SimProcess:
        for p in self.procs:
            if p.rank == rank:
                return p
        raise KeyError(f"no process with rank {rank}")

    @property
    def makespan(self) -> float:
        return self.seconds

    @property
    def mbytes(self) -> float:
        return self.comm.mbytes_total


class Backend(ABC):
    """Executes a set of :class:`SimProcess` ranks to completion."""

    #: registry name ("sim", "local", "mpi").
    name: str = "?"

    #: True when the substrate can inject :class:`~repro.fault.plan.FaultPlan`
    #: events (and carries a ``fault_plan`` attribute to arm).  Checked by
    #: :func:`~repro.backend.make_backend` and ``fault_injection_scope``
    #: instead of backend-name string matching.
    supports_fault_injection: bool = False

    @abstractmethod
    def run(self, procs: Sequence[SimProcess]) -> BackendRun:
        """Run all ranks to completion and return the merged artifacts."""

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}()"


def drive(proc: SimProcess, ctx) -> None:
    """Drive one process generator against an immediate-mode context.

    ``ctx`` must expose ``execute(op)`` performing one syscall and
    returning the value the generator is resumed with (a
    :class:`~repro.cluster.message.Message` for receives, ``None``
    otherwise).  Used by the real backends; the sim backend's scheduler
    interleaves generators itself.
    """
    gen = proc.run(ctx)
    result = None
    try:
        while True:
            op = gen.send(result)
            result = ctx.execute(op)
    except StopIteration:
        return

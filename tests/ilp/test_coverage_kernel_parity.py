"""Golden parity: the overhauled coverage kernel (iterative machine,
ground-goal memo, multi-argument indexing, coverage inheritance) must
learn **bit-identical** theories and coverage bitsets to the seed kernel
(recursive interpreter, first-argument index, full-list evaluation) on
every dataset and search strategy.
"""

import pytest

from repro.datasets import make_dataset
from repro.ilp.config import ILPConfig
from repro.ilp.coverage import coverage_eval
from repro.ilp.mdie import mdie
from repro.ilp.modes import ModeSet
from repro.ilp.store import ExampleStore
from repro.logic.engine import Engine, QueryBudget
from repro.logic.knowledge import KnowledgeBase
from repro.logic.parser import parse_clause, parse_term


def legacy_config(config: ILPConfig) -> ILPConfig:
    return config.replace(coverage_kernel="legacy", coverage_inheritance=False)


def new_config(config: ILPConfig) -> ILPConfig:
    return config.replace(coverage_kernel="new", coverage_inheritance=True)


def run_pair(ds, config: ILPConfig, seed: int = 0):
    a = mdie(ds.kb, ds.pos, ds.neg, ds.modes, legacy_config(config), seed=seed)
    b = mdie(ds.kb, ds.pos, ds.neg, ds.modes, new_config(config), seed=seed)
    return a, b


def assert_identical(a, b):
    assert sorted(str(c) for c in a.theory) == sorted(str(c) for c in b.theory)
    assert a.epochs == b.epochs
    assert a.uncovered == b.uncovered
    # per-epoch log parity: same seeds, same accepted rules, same cover
    assert [(str(s), str(r), c) for s, r, c, _ in a.log] == [
        (str(s), str(r), c) for s, r, c, _ in b.log
    ]


DATASETS = [
    ("trains", dict(seed=0, scale="small")),
    ("krki", dict(seed=0, n_pos=40, n_neg=40)),
    ("carcinogenesis", dict(seed=0, n_pos=24, n_neg=20)),
]


class TestSequentialParity:
    @pytest.mark.parametrize("name,kw", DATASETS)
    @pytest.mark.parametrize("strategy", ["bfs", "best_first", "beam"])
    def test_mdie_parity(self, name, kw, strategy):
        ds = make_dataset(name, **kw)
        config = ds.config.replace(search_strategy=strategy)
        a, b = run_pair(ds, config)
        assert_identical(a, b)

    @pytest.mark.parametrize("name,kw", DATASETS[:2])
    def test_mdie_parity_with_reorder(self, name, kw):
        ds = make_dataset(name, **kw)
        config = ds.config.replace(reorder_body=True)
        a, b = run_pair(ds, config)
        assert_identical(a, b)

    @pytest.mark.parametrize("seed", [1, 2])
    def test_mdie_parity_other_seeds(self, seed):
        ds = make_dataset("krki", seed=seed, n_pos=30, n_neg=30)
        a, b = run_pair(ds, ds.config, seed=seed)
        assert_identical(a, b)


class TestBitsetParity:
    def engines(self, kb):
        budget = QueryBudget(max_depth=8, max_ops=100_000)
        return Engine(kb, budget, kernel="legacy"), Engine(kb, budget, kernel="new")

    def test_dataset_rule_bitsets(self):
        ds = make_dataset("krki", seed=0, n_pos=30, n_neg=30)
        legacy, new = self.engines(ds.kb)
        rules = [
            "illegal(A) :- wk(A, B, C), bk(A, D, E), adj(B, D), adj(C, E).",
            "illegal(A) :- wr(A, B, C), bk(A, B, E).",
            "illegal(A) :- wr(A, B, C), bk(A, D, C).",
            "illegal(A) :- wk(A, B, C), wr(A, B, C).",
        ]
        for src in rules:
            rule = parse_clause(src)
            for examples in (ds.pos, ds.neg):
                lb, le = coverage_eval(legacy, rule, examples)
                nb, ne = coverage_eval(new, rule, examples)
                assert (lb, le) == (nb, ne), src

    def test_negation_and_builtin_heavy_program(self):
        """Bodies with negation, arithmetic, disequality and rule-defined
        (memoizable and non-memoizable) predicates evaluate identically."""
        kb = KnowledgeBase()
        kb.add_program(
            """
            e(c1, c2). e(c2, c3). e(c3, c1). e(c4, c5).
            f(c3). f(c5).
            size(c1, 3). size(c2, 1). size(c3, 5). size(c4, 2). size(c5, 4).
            linked(X, Y) :- e(X, Y).
            linked(X, Z) :- e(X, Y), linked(Y, Z).
            unflagged(X) :- size(X, N), \\+ f(X).
            """
        )
        examples = [parse_term(f"t(c{i})") for i in range(1, 6)]
        rules = [
            "t(X) :- e(X, Y), \\+ f(Y).",
            "t(X) :- e(X, Y), e(Y, Z), dif_const(X, Z).",
            "t(X) :- size(X, N), N > 2.",
            "t(X) :- size(X, N), M is N * 2, M >= 6.",
            "t(X) :- linked(X, c1).",
            "t(X) :- unflagged(X), size(X, N), N =< 3.",
            "t(X) :- \\+ linked(X, c9).",
            "t(X) :- between(1, 4, N), size(X, N).",
        ]
        legacy, new = self.engines(kb)
        for src in rules:
            rule = parse_clause(src)
            lb, le = coverage_eval(legacy, rule, examples)
            nb, ne = coverage_eval(new, rule, examples)
            assert (lb, le) == (nb, ne), src

    def test_store_evaluation_parity(self):
        """ExampleStore with inheritance+alive restriction reports the same
        CoverageStats as the seed-faithful store at every covering step."""
        ds = make_dataset("trains", seed=0, scale="small")
        legacy, new = self.engines(ds.kb)
        s_old = ExampleStore(ds.pos, ds.neg, inherit=False)
        s_new = ExampleStore(ds.pos, ds.neg, inherit=True)
        parent = parse_clause("eastbound(A) :- has_car(A, B).")
        child = parse_clause("eastbound(A) :- has_car(A, B), closed(B).")
        grandchild = parse_clause("eastbound(A) :- has_car(A, B), closed(B), short(B).")
        lineage = [(parent, None), (child, parent), (grandchild, child)]
        for rule, par in lineage:
            a = s_old.evaluate(legacy, rule)
            b = s_new.evaluate(new, rule, parent=par)
            assert (a.pos, a.neg, a.pos_bits, a.neg_bits) == (b.pos, b.neg, b.pos_bits, b.neg_bits)
        # kill the child's cover and re-evaluate the lineage from cache
        killed = s_old.evaluate(legacy, child).pos_bits
        s_old.kill(killed)
        s_new.kill(killed)
        for rule, par in lineage:
            a = s_old.evaluate(legacy, rule)
            b = s_new.evaluate(new, rule, parent=par)
            assert (a.pos, a.neg, a.pos_bits, a.neg_bits) == (b.pos, b.neg, b.pos_bits, b.neg_bits)


class TestParallelParity:
    @pytest.mark.parametrize("p", [2, 3])
    def test_p2mdie_parity(self, p):
        from repro.parallel.p2mdie import run_p2mdie

        ds = make_dataset("krki", seed=0, n_pos=30, n_neg=30)
        a = run_p2mdie(ds.kb, ds.pos, ds.neg, ds.modes, legacy_config(ds.config), p=p, seed=0)
        b = run_p2mdie(ds.kb, ds.pos, ds.neg, ds.modes, new_config(ds.config), p=p, seed=0)
        assert sorted(str(c) for c in a.theory) == sorted(str(c) for c in b.theory)
        assert a.epochs == b.epochs
        assert a.uncovered == b.uncovered

    def test_coverage_parallel_parity(self):
        from repro.parallel.coverage_parallel import run_coverage_parallel

        ds = make_dataset("trains", seed=0, scale="small")
        a = run_coverage_parallel(
            ds.kb, ds.pos, ds.neg, ds.modes, legacy_config(ds.config), p=2, batch_size=4, seed=0
        )
        b = run_coverage_parallel(
            ds.kb, ds.pos, ds.neg, ds.modes, new_config(ds.config), p=2, batch_size=4, seed=0
        )
        assert sorted(str(c) for c in a.theory) == sorted(str(c) for c in b.theory)
        assert a.uncovered == b.uncovered

    def test_independent_parity(self):
        from repro.parallel.independent import run_independent

        ds = make_dataset("trains", seed=0, scale="small")
        a = run_independent(ds.kb, ds.pos, ds.neg, ds.modes, legacy_config(ds.config), p=2, seed=0)
        b = run_independent(ds.kb, ds.pos, ds.neg, ds.modes, new_config(ds.config), p=2, seed=0)
        assert sorted(str(c) for c in a.theory) == sorted(str(c) for c in b.theory)
        assert a.uncovered == b.uncovered

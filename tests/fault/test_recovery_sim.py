"""Self-healing on the simulated cluster: every fault scenario must learn
the exact fault-free theory (and epoch logs), for all three strategies.

Also the golden-parity guarantees: an *empty* plan is byte-for-byte
identical to no plan at all, and the supervised (fault-free, protocol-on)
run matches the unsupervised theory.
"""

import pytest

from helpers_fault import log_tuples, run_args
from repro.fault.plan import (
    FaultPlan,
    MessageLoss,
    Straggler,
    WorkerCrash,
    WorkerJoin,
)
from repro.fault.recovery import PoolSupervisor, RecoveryError
from repro.parallel import run_coverage_parallel, run_independent, run_p2mdie

TIMEOUT = 2.0


@pytest.fixture(scope="module")
def base(krki):
    return run_p2mdie(*run_args(krki), p=3, width=10, seed=0)


class TestEmptyPlanGoldenParity:
    """fault_plan=FaultPlan() must be indistinguishable from None."""

    def test_p2mdie_bitwise_identical(self, trains):
        a = run_p2mdie(*run_args(trains), p=3, width=10, seed=0)
        b = run_p2mdie(*run_args(trains), p=3, width=10, seed=0, fault_plan=FaultPlan())
        assert b.theory == a.theory
        assert log_tuples(b) == log_tuples(a)
        assert b.comm.messages == a.comm.messages
        assert b.comm.bytes_total == a.comm.bytes_total
        assert b.comm.bytes_by_tag == a.comm.bytes_by_tag
        assert b.seconds == a.seconds

    def test_spares_require_a_plan(self, trains):
        with pytest.raises(ValueError, match="spares require a fault plan"):
            run_p2mdie(*run_args(trains), p=2, width=10, seed=0, spares=1)

    def test_fault_plan_rejects_messages_share_mode(self, trains):
        with pytest.raises(ValueError, match="shared-filesystem"):
            run_p2mdie(
                *run_args(trains), p=2, width=10, seed=0,
                share_mode="messages",
                fault_plan=FaultPlan(supervise=True),
            )


class TestSupervisedParity:
    """Protocol on, no faults: same theory, same epoch decisions."""

    def test_p2mdie(self, krki, base):
        r = run_p2mdie(
            *run_args(krki), p=3, width=10, seed=0,
            fault_plan=FaultPlan(supervise=True, timeout=TIMEOUT),
        )
        assert r.theory == base.theory
        assert log_tuples(r) == log_tuples(base)
        assert r.fault_events == []

    def test_epoch_logs_carry_cache_counters(self, krki):
        r = run_p2mdie(
            *run_args(krki), p=3, width=10, seed=0,
            fault_plan=FaultPlan(supervise=True, timeout=TIMEOUT),
        )
        assert all(l.cache_hits is not None and l.cache_misses is not None for l in r.epoch_logs)
        assert any(l.cache_misses > 0 for l in r.epoch_logs)
        assert r.cache_stats and set(r.cache_stats) == {1, 2, 3}

    def test_fault_free_path_has_no_cache_counters(self, base):
        # The PR 3 wire protocol carries no cache reports; the fields stay unset.
        assert all(l.cache_hits is None for l in base.epoch_logs)


class TestCrashRecovery:
    @pytest.mark.parametrize(
        "crash",
        [
            WorkerCrash(rank=2, on_recv=1, tag="load_examples"),  # before loading
            WorkerCrash(rank=2, on_recv=2, tag="start_pipeline"),  # pipeline phase, epoch 2
            WorkerCrash(rank=1, on_recv=1, tag="evaluate"),  # evaluation phase
            WorkerCrash(rank=3, on_recv=4),  # whatever arrives 4th
        ],
        ids=["at-load", "pipeline-epoch2", "eval-phase", "fourth-message"],
    )
    def test_p2mdie_single_crash_exact_recovery(self, krki, base, crash):
        plan = FaultPlan(crashes=(crash,), timeout=TIMEOUT)
        r = run_p2mdie(*run_args(krki), p=3, width=10, seed=0, fault_plan=plan)
        assert r.theory == base.theory
        assert log_tuples(r) == log_tuples(base)
        assert any("declared dead" in ev for ev in r.fault_events)
        assert any(f.kind == "crash" for f in r.fault_log)
        assert r.seconds > base.seconds  # recovery costs time, never results

    def test_crash_adopts_onto_standby_spare(self, krki, base):
        plan = FaultPlan(
            crashes=(WorkerCrash(rank=3, on_recv=2, tag="start_pipeline"),), timeout=TIMEOUT
        )
        r = run_p2mdie(*run_args(krki), p=3, width=10, seed=0, fault_plan=plan, spares=1)
        assert r.theory == base.theory
        assert any("adopted by host 4" in ev for ev in r.fault_events)

    def test_two_crashes(self, krki, base):
        plan = FaultPlan(
            crashes=(
                WorkerCrash(rank=2, on_recv=2, tag="start_pipeline"),
                WorkerCrash(rank=3, on_recv=1, tag="evaluate"),
            ),
            timeout=TIMEOUT,
        )
        r = run_p2mdie(*run_args(krki), p=3, width=10, seed=0, fault_plan=plan)
        assert r.theory == base.theory
        assert sum(1 for ev in r.fault_events if "declared dead" in ev) == 2

    def test_independent_crash(self, krki):
        b = run_independent(*run_args(krki), p=3, seed=0)
        plan = FaultPlan(crashes=(WorkerCrash(rank=2, on_recv=2),), timeout=TIMEOUT)
        r = run_independent(*run_args(krki), p=3, seed=0, fault_plan=plan)
        assert r.theory == b.theory
        assert log_tuples(r) == log_tuples(b)

    def test_covpar_crash(self, krki):
        b = run_coverage_parallel(*run_args(krki), p=3, batch_size=4, seed=0, max_epochs=5)
        plan = FaultPlan(crashes=(WorkerCrash(rank=1, on_recv=4),), timeout=TIMEOUT)
        r = run_coverage_parallel(
            *run_args(krki), p=3, batch_size=4, seed=0, max_epochs=5, fault_plan=plan
        )
        assert r.theory == b.theory
        assert log_tuples(r) == log_tuples(b)


class TestElasticity:
    def test_join_rebalances_and_preserves_theory(self, krki, base):
        plan = FaultPlan(joins=(WorkerJoin(rank=4, epoch=2),), timeout=TIMEOUT)
        r = run_p2mdie(*run_args(krki), p=3, width=10, seed=0, fault_plan=plan, spares=1)
        assert r.theory == base.theory
        assert any("joined the pool" in ev for ev in r.fault_events)

    def test_crash_then_join_migrates_shards(self, krki, base):
        plan = FaultPlan(
            crashes=(WorkerCrash(rank=2, on_recv=2, tag="start_pipeline"),),
            joins=(WorkerJoin(rank=4, epoch=3),),
            timeout=TIMEOUT,
        )
        r = run_p2mdie(*run_args(krki), p=3, width=10, seed=0, fault_plan=plan, spares=1)
        assert r.theory == base.theory
        assert any("migrated to host" in ev for ev in r.fault_events)

    def test_join_rank_must_be_a_spare(self, krki):
        plan = FaultPlan(joins=(WorkerJoin(rank=2, epoch=2),), timeout=TIMEOUT)
        with pytest.raises(ValueError, match="not a provisioned spare"):
            run_p2mdie(*run_args(krki), p=3, width=10, seed=0, fault_plan=plan, spares=1)


class TestTimingFaults:
    def test_straggler_changes_time_not_theory(self, krki, base):
        plan = FaultPlan(stragglers=(Straggler(rank=1, factor=5.0),), timeout=60.0)
        r = run_p2mdie(*run_args(krki), p=3, width=10, seed=0, fault_plan=plan)
        assert r.theory == base.theory
        assert log_tuples(r) == log_tuples(base)
        assert r.seconds > base.seconds

    def test_backend_instance_armed_per_run_only(self, trains):
        """A caller-owned backend instance must not stay armed after a
        faulty run: the next run on the same instance is fault-free."""
        from repro.backend import SimBackend

        bk = SimBackend()
        plan = FaultPlan(crashes=(WorkerCrash(rank=2, on_recv=2),), timeout=TIMEOUT)
        run_p2mdie(*run_args(trains), p=2, width=10, seed=0, backend=bk, fault_plan=plan)
        assert bk.fault_plan is None
        clean = run_p2mdie(*run_args(trains), p=2, width=10, seed=0, backend=bk)
        assert clean.fault_log == [] and clean.fault_events == []

    def test_message_loss_healed_by_reissue(self, krki, base):
        plan = FaultPlan(losses=(MessageLoss(src=0, dst=2, nth=3),), timeout=TIMEOUT)
        r = run_p2mdie(*run_args(krki), p=3, width=10, seed=0, fault_plan=plan)
        assert r.theory == base.theory
        assert any(f.kind == "drop" for f in r.fault_log)

    def test_crash_recovery_survives_losing_any_control_message(self, trains):
        """Dropping ANY single master→adopter message after a crash —
        including the one-shot AdoptWorker / UpdateRouting control
        messages — must still converge to the fault-free theory (the
        master reinforces adoption state when collectives stall)."""
        b = run_p2mdie(*run_args(trains), p=2, width=10, seed=0)
        crash = WorkerCrash(rank=2, on_recv=1, tag="start_pipeline")
        for nth in range(2, 10):
            plan = FaultPlan(
                crashes=(crash,),
                losses=(MessageLoss(src=0, dst=1, nth=nth),),
                timeout=1.0,
            )
            r = run_p2mdie(*run_args(trains), p=2, width=10, seed=0, fault_plan=plan)
            assert r.theory == b.theory, f"lost message #{nth} broke recovery"


class TestPoolSupervisor:
    def test_reassign_prefers_idle_spares(self):
        sup = PoolSupervisor(n_logical=3, spares=1)
        sup.declare_dead(2)
        moves = sup.reassign({2})
        assert moves == [(2, 4)]
        assert sup.host_of(2) == 4

    def test_reassign_round_robin_without_spares(self):
        sup = PoolSupervisor(n_logical=4)
        sup.declare_dead(1)
        sup.declare_dead(2)
        moves = sup.reassign({1, 2})
        assert [m[0] for m in moves] == [1, 2]
        assert all(h in (3, 4) for _, h in moves)

    def test_no_hosts_left_raises(self):
        sup = PoolSupervisor(n_logical=2)
        sup.declare_dead(1)
        sup.declare_dead(2)
        with pytest.raises(RecoveryError):
            sup.reassign({1, 2})

    def test_admit_balances_over_grown_pool(self):
        sup = PoolSupervisor(n_logical=4, spares=2)
        sup.declare_dead(2)
        sup.reassign({2})
        moves = sup.admit(6)
        hosts = {sup.host_of(l) for l in (1, 2, 3, 4)}
        assert 6 in sup.active
        assert 2 not in hosts
        assert moves  # something actually moved

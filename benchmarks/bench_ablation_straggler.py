"""Ablation — heterogeneous nodes (load balance sensitivity).

§4.1 argues the pipeline is naturally balanced because every stage does
the same kind of work on similarly sized subsets.  That argument assumes
*homogeneous* nodes (the paper's cluster was 4 identical duals).  This
ablation slows one worker down by increasing factors and measures how the
makespan degrades — quantifying the pipeline's straggler sensitivity,
which the paper leaves as future work ("processor load balancing").
"""

import pytest

from conftest import SEED, one_shot
from repro.cluster import OpsCostModel, PerRankCostModel
from repro.datasets import make_dataset
from repro.parallel import run_p2mdie
from repro.util.fmt import fmt_float, render_table

SLOWDOWNS = (1.0, 1.5, 2.0, 4.0)


@pytest.fixture(scope="module")
def sweep(scale):
    ds = make_dataset("carcinogenesis", seed=SEED, scale=scale)
    out = {}
    for s in SLOWDOWNS:
        cm = PerRankCostModel(OpsCostModel(), scales={1: s})
        out[s] = run_p2mdie(
            ds.kb, ds.pos, ds.neg, ds.modes, ds.config, p=4, width=10, seed=SEED, cost_model=cm
        )
    return out


def test_ablation_straggler(benchmark, sweep, table_sink):
    one_shot(benchmark, lambda: None)  # timing lives in the module fixture
    base = sweep[1.0]
    rows = []
    for s, r in sweep.items():
        rows.append(
            [f"{s:.1f}x", fmt_float(r.seconds, 1), fmt_float(r.seconds / base.seconds, 2),
             r.epochs, len(r.theory)]
        )
    table_sink(
        "ablation_straggler",
        render_table(
            ["worker-1 slowdown", "vtime(s)", "vs uniform", "epochs", "rules"],
            rows,
            title="Ablation: one straggler node in a p=4 pipeline (W=10)",
        ),
    )
    # Makespan grows with the straggler's slowdown...
    assert sweep[4.0].seconds > sweep[1.0].seconds
    # ...but sublinearly: the other three workers' stages overlap the
    # straggler, so a 4x-slower node must not cost 4x overall.
    assert sweep[4.0].seconds < 4.0 * sweep[1.0].seconds
    # Learning outcome is timing-independent.
    for r in sweep.values():
        assert list(r.theory) == list(base.theory)

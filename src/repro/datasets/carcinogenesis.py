"""Carcinogenesis-like synthetic dataset (molecular substructure discovery).

The real carcinogenesis dataset [Srinivasan et al. 97] classifies molecules
by rodent-bioassay outcome from atom/bond structure.  This generator
produces the same *shape* of problem: random molecular graphs (atoms with
elements and charges, bonds with types) and an activity label planted as a
small disjunctive substructure theory:

* rule 1 — the molecule contains a double bond to an oxygen atom
  (carbonyl-like);
* rule 2 — the molecule contains a negatively charged chlorine.

Labels are flipped with probability ``label_noise`` to emulate bioassay
noise, and generation continues until the requested |E+|/|E-| quotas are
met exactly (Table 1: 162/136 at paper scale).
"""

from __future__ import annotations

import random

from repro.datasets.base import Dataset, register_dataset
from repro.ilp.config import ILPConfig
from repro.ilp.modes import ModeSet
from repro.logic.knowledge import KnowledgeBase
from repro.logic.terms import atom
from repro.util.rng import make_rng

__all__ = ["make_carcinogenesis"]

_ELEMENTS = ("c", "o", "n", "cl", "s")
_ELEM_WEIGHTS = (0.62, 0.15, 0.10, 0.07, 0.06)
_BOND_TYPES = (1, 2, 7)  # single, double, aromatic
_BOND_WEIGHTS = (0.78, 0.16, 0.06)
_CHARGES = ("c_neg", "c_zero", "c_pos")
_CHARGE_WEIGHTS = (0.3, 0.55, 0.15)


def _weighted(rng: random.Random, values, weights):
    return rng.choices(values, weights=weights, k=1)[0]


def _gen_molecule(rng: random.Random, mol: str, kb_facts: list) -> bool:
    """Emit one molecule's facts into ``kb_facts``; return its true label."""
    n_atoms = rng.randint(5, 10)
    atoms = [f"{mol}_a{i}" for i in range(n_atoms)]
    elems = [_weighted(rng, _ELEMENTS, _ELEM_WEIGHTS) for _ in atoms]
    charges = [_weighted(rng, _CHARGES, _CHARGE_WEIGHTS) for _ in atoms]
    # Connected random tree plus a few extra edges (ring bonds).
    bonds: list[tuple[int, int, int]] = []
    for i in range(1, n_atoms):
        j = rng.randint(0, i - 1)
        bonds.append((i, j, _weighted(rng, _BOND_TYPES, _BOND_WEIGHTS)))
    for _ in range(rng.randint(0, 3)):
        i, j = rng.sample(range(n_atoms), 2)
        bonds.append((i, j, _weighted(rng, _BOND_TYPES, _BOND_WEIGHTS)))

    for a in atoms:
        kb_facts.append(atom("atom_of", mol, a))
    for a, e in zip(atoms, elems):
        kb_facts.append(atom("elem", a, e))
    for a, ch in zip(atoms, charges):
        kb_facts.append(atom("charge", a, ch))
    for i, j, t in bonds:
        kb_facts.append(atom("bond", atoms[i], atoms[j], t))
        kb_facts.append(atom("bond", atoms[j], atoms[i], t))

    # Planted theory (expressible in the mode language below):
    #   active(M) :- atom_of(M,A), bond(A,B,2), elem(B,o).
    #   active(M) :- atom_of(M,A), elem(A,cl), charge(A,c_neg).
    rule1 = any(
        t == 2 and (elems[i] == "o" or elems[j] == "o") for i, j, t in bonds
    )
    rule2 = any(e == "cl" and ch == "c_neg" for e, ch in zip(elems, charges))
    return rule1 or rule2


@register_dataset("carcinogenesis")
def make_carcinogenesis(
    seed: int = 0,
    scale: str = "small",
    n_pos: int | None = None,
    n_neg: int | None = None,
    label_noise: float = 0.03,
) -> Dataset:
    """Generate a carcinogenesis-like problem (Table 1: 162+/136- at
    ``scale="paper"``; 56+/48- at ``"small"``)."""
    if n_pos is None or n_neg is None:
        n_pos, n_neg = (162, 136) if scale == "paper" else (56, 48)
    rng = make_rng(seed, "carcinogenesis")
    kb = KnowledgeBase()
    pos, neg = [], []
    attempts = 0
    max_attempts = 60 * (n_pos + n_neg)
    m = 0
    while (len(pos) < n_pos or len(neg) < n_neg) and attempts < max_attempts:
        attempts += 1
        mol = f"m{m}"
        facts: list = []
        label = _gen_molecule(rng, mol, facts)
        if label_noise > 0 and rng.random() < label_noise:
            label = not label
        target = pos if label else neg
        quota = n_pos if label else n_neg
        if len(target) >= quota:
            continue  # quota filled; discard this molecule
        for f in facts:
            kb.add_fact(f)
        target.append(atom("active", mol))
        m += 1
    if len(pos) < n_pos or len(neg) < n_neg:  # pragma: no cover - defensive
        raise RuntimeError("carcinogenesis generator failed to meet quotas")

    modes = ModeSet(
        [
            "modeh(1, active(+mol))",
            "modeb(*, atom_of(+mol, -atm))",
            "modeb(1, elem(+atm, #element))",
            "modeb(*, bond(+atm, -atm, #btype))",
            "modeb(1, charge(+atm, #chargeb))",
        ]
    )
    config = ILPConfig(
        max_clause_length=3,
        var_depth=3,
        recall=12,
        # Planted rules legitimately cover label-flipped negatives (expected
        # ~label_noise * activity-rate * n_neg of them, with real variance
        # across seeds); the allowance needs headroom above that mean or a
        # noisy seed makes the true theory unlearnable.
        noise=max(3, round(0.08 * n_neg)),
        min_pos=2,
        max_nodes=250,
        max_bottom_literals=100,
        engine_max_ops=50_000,
        pipeline_width=10,
    )
    return Dataset(
        name="carcinogenesis",
        kb=kb,
        pos=pos,
        neg=neg,
        modes=modes,
        config=config,
        target_description=(
            "active(M) :- atom_of(M,A), bond(A,B,2), elem(B,o).  ;  "
            "active(M) :- atom_of(M,A), elem(A,cl), charge(A,c_neg)."
        ),
    )

"""ExampleStore cache-effectiveness counters (benchmark reporting hooks)."""

from repro.ilp.store import ExampleStore
from repro.logic.clause import Clause
from repro.logic.engine import Engine
from repro.logic.knowledge import KnowledgeBase
from repro.logic.parser import parse_clause, parse_term


def _setup():
    kb = KnowledgeBase()
    kb.add_program("p(a). p(b). q(a).")
    engine = Engine(kb)
    pos = [parse_term("p(a)"), parse_term("p(b)")]
    neg = [parse_term("p(c)")]
    store = ExampleStore(pos, neg)
    rule = parse_clause("p(X) :- q(X).")
    return engine, store, rule


def test_hits_and_misses_counted():
    engine, store, rule = _setup()
    assert store.cache_hits() == store.cache_misses() == 0
    assert store.cache_hit_rate() == 0.0
    store.evaluate(engine, rule)
    assert (store.cache_misses(), store.cache_hits()) == (1, 0)
    store.evaluate(engine, rule)
    store.evaluate(engine, rule)
    assert (store.cache_misses(), store.cache_hits()) == (1, 2)
    assert store.cache_hit_rate() == 2 / 3
    assert store.cache_size() == 1


def test_cache_survives_kill_and_counts_hits():
    engine, store, rule = _setup()
    first = store.evaluate(engine, rule)
    store.kill(first.pos_bits)
    again = store.evaluate(engine, rule)
    assert store.cache_hits() == 1
    assert again.pos == 0  # the covered positive is dead now


def test_clear_cache_preserves_counters():
    engine, store, rule = _setup()
    store.evaluate(engine, rule)
    store.evaluate(engine, rule)
    store.clear_cache()
    assert store.cache_size() == 0
    assert (store.cache_misses(), store.cache_hits()) == (1, 1)
    store.evaluate(engine, rule)
    assert store.cache_misses() == 2

"""Unit tests for coverage evaluation and bitsets."""

import pytest

from repro.ilp.coverage import (
    CoverageStats,
    bitset_from_indices,
    coverage_bitset,
    covers,
    indices_from_bitset,
    popcount,
)
from repro.logic.engine import Engine
from repro.logic.knowledge import KnowledgeBase
from repro.logic.parser import parse_clause, parse_term


@pytest.fixture
def eng():
    kb = KnowledgeBase()
    kb.add_program("q(a). q(b). r(b).")
    return Engine(kb)


class TestCovers:
    def test_fact_rule(self, eng):
        assert covers(eng, parse_clause("p(X) :- q(X)."), parse_term("p(a)"))

    def test_miss(self, eng):
        assert not covers(eng, parse_clause("p(X) :- q(X)."), parse_term("p(z)"))

    def test_conjunction(self, eng):
        rule = parse_clause("p(X) :- q(X), r(X).")
        assert covers(eng, rule, parse_term("p(b)"))
        assert not covers(eng, rule, parse_term("p(a)"))

    def test_bare_head_covers_matching(self, eng):
        assert covers(eng, parse_clause("p(X)."), parse_term("p(anything)"))

    def test_head_functor_mismatch(self, eng):
        assert not covers(eng, parse_clause("p(X) :- q(X)."), parse_term("s(a)"))

    def test_head_constant_filter(self, eng):
        rule = parse_clause("p(a) :- q(a).")
        assert covers(eng, rule, parse_term("p(a)"))
        assert not covers(eng, rule, parse_term("p(b)"))

    def test_rule_variables_fresh_per_example(self, eng):
        # same rule evaluated twice must not leak bindings
        rule = parse_clause("p(X) :- q(X).")
        assert covers(eng, rule, parse_term("p(a)"))
        assert covers(eng, rule, parse_term("p(b)"))


class TestBitsets:
    def test_coverage_bitset(self, eng):
        rule = parse_clause("p(X) :- q(X).")
        examples = [parse_term("p(a)"), parse_term("p(z)"), parse_term("p(b)")]
        bits = coverage_bitset(eng, rule, examples)
        assert bits == 0b101

    def test_popcount(self):
        assert popcount(0) == 0
        assert popcount(0b10110) == 3

    def test_roundtrip(self):
        idx = [0, 3, 17]
        assert list(indices_from_bitset(bitset_from_indices(idx))) == idx


class TestCoverageStats:
    def test_of(self, eng):
        rule = parse_clause("p(X) :- q(X).")
        pos = [parse_term("p(a)"), parse_term("p(b)")]
        neg = [parse_term("p(z)")]
        st = CoverageStats.of(eng, rule, pos, neg)
        assert (st.pos, st.neg) == (2, 0)
        assert st.pos_bits == 0b11

    def test_merged_shifts(self):
        a = CoverageStats(pos=1, neg=0, pos_bits=0b1, neg_bits=0)
        b = CoverageStats(pos=2, neg=1, pos_bits=0b11, neg_bits=0b1)
        m = a.merged(b, pos_shift=1, neg_shift=1)
        assert m.pos == 3 and m.neg == 1
        assert m.pos_bits == 0b111
        assert m.neg_bits == 0b10

"""QueryEngine: batched coverage must be bit-identical to one-shot eval."""

import pytest

from repro.ilp import predicts
from repro.ilp.coverage import coverage_eval
from repro.logic import parse_term
from repro.logic.engine import Engine
from repro.service import QueryEngine


def fresh_engine(ds):
    return Engine(ds.kb, ds.config.engine_budget(), kernel=ds.config.coverage_kernel)


@pytest.fixture
def published(registry, trains_theory):
    registry.publish(
        "trains-th",
        trains_theory.theory,
        config_sig=trains_theory.config_sig,
        provenance={"dataset": "trains", "seed": "0", "scale": "small"},
    )
    return registry


class TestBatchedParity:
    def test_batch_equals_oneshot_coverage_eval(self, published, trains, trains_theory):
        qe = QueryEngine(registry=published)
        examples = trains.pos + trains.neg
        result = qe.query("trains-th", examples)
        # One-shot ground truth: full-candidate coverage_eval per clause, OR-ed.
        expected = 0
        for clause in trains_theory.theory:
            bits, _ = coverage_eval(fresh_engine(trains), clause, examples)
            expected |= bits
        assert result.covered == expected
        assert result.n == len(examples)

    def test_batch_equals_per_example_predicts(self, published, trains, trains_theory):
        qe = QueryEngine(registry=published)
        examples = trains.pos + trains.neg
        decisions = qe.query("trains-th", examples).decisions()
        engine = fresh_engine(trains)
        assert decisions == [
            predicts(engine, trains_theory.theory, e) for e in examples
        ]

    def test_micro_batch_invariance(self, published, trains):
        qe = QueryEngine(registry=published)
        examples = trains.pos + trains.neg
        full = qe.query("trains-th", examples, micro_batch=1024)
        for micro in (1, 3, 7):
            assert qe.query("trains-th", examples, micro_batch=micro).covered == full.covered

    def test_empty_batch(self, published):
        result = QueryEngine(registry=published).query("trains-th", [])
        assert result.covered == 0 and result.n == 0 and result.n_covered == 0


class TestPreparedCache:
    def test_prepare_once_reuse_after(self, published, trains):
        qe = QueryEngine(registry=published)
        qe.query("trains-th", trains.pos[:4])
        qe.query("trains-th", trains.pos[4:8])
        qe.query("trains-th", trains.neg)
        stats = qe.stats()
        assert stats["prepared_misses"] == 1
        assert stats["prepared_hits"] == 2
        assert stats["prepared_entries"] == 1
        assert stats["batches"] == 3

    def test_versions_prepare_separately(self, published, trains_theory, trains):
        published.publish(
            "trains-th", trains_theory.theory,
            provenance={"dataset": "trains", "seed": "0"},
        )
        qe = QueryEngine(registry=published)
        qe.query("trains-th", trains.pos[:2], version=1)
        qe.query("trains-th", trains.pos[:2], version=2)
        assert qe.stats()["prepared_entries"] == 2


class TestValidation:
    def test_non_ground_example_rejected(self, published):
        qe = QueryEngine(registry=published)
        with pytest.raises(ValueError, match="ground"):
            qe.query("trains-th", [parse_term("eastbound(X)")])

    def test_no_registry(self):
        with pytest.raises(ValueError, match="no registry"):
            QueryEngine().prepare("anything")

    def test_record_without_dataset_provenance(self, registry, trains_theory):
        registry.publish("orphan", trains_theory.theory)
        qe = QueryEngine(registry=registry)
        with pytest.raises(ValueError, match="dataset provenance"):
            qe.prepare("orphan")

    def test_prepare_theory_without_registry(self, trains, trains_theory):
        qe = QueryEngine()
        prepared = qe.prepare_theory(trains_theory.theory, trains.kb, trains.config)
        result = prepared.query(trains.pos)
        assert result.n_covered == len(trains.pos)


class TestShardedQuery:
    """The query(shards=k) surface; deeper coverage in test_streaming.py."""

    @pytest.fixture
    def published(self, registry, trains_theory):
        registry.publish(
            "trains-th",
            trains_theory.theory,
            config_sig=trains_theory.config_sig,
            provenance={"dataset": "trains", "seed": "0", "scale": "small"},
        )
        return registry

    def test_result_records_shard_count(self, published, trains):
        qe = QueryEngine(registry=published)
        examples = trains.pos + trains.neg
        assert qe.query("trains-th", examples).shards == 1
        assert qe.query("trains-th", examples, shards=4).shards == 4
        # More shards than examples collapses to one span per example.
        assert qe.query("trains-th", examples[:3], shards=50).shards == 3

    def test_sharded_equals_sequential(self, published, trains):
        qe = QueryEngine(registry=published)
        examples = trains.pos + trains.neg
        seq = qe.query("trains-th", examples)
        shd = qe.query("trains-th", examples, shards=4)
        assert (shd.covered, shd.n) == (seq.covered, seq.n)

    def test_single_example_stays_sequential(self, published, trains):
        qe = QueryEngine(registry=published)
        result = qe.query("trains-th", trains.pos[:1], shards=8)
        assert result.shards == 1
        assert qe.stats()["streams_started"] == 0

"""Backend protocol, registry, and sim-backend equivalence tests."""

import pytest

from repro.backend import (
    Backend,
    BackendRun,
    BackendUnavailableError,
    LocalProcessBackend,
    SimBackend,
    make_backend,
    resolve_backend,
)
from repro.backend.base import ExecutionContext
from repro.cluster.cluster import VirtualCluster
from repro.cluster.network import GIGABIT
from repro.cluster.process import ProcContext, SimProcess


class Ping(SimProcess):
    def run(self, ctx):
        yield ctx.send(1, "ping", tag="t")
        msg = yield ctx.recv(src=1)
        self.got = msg.payload
        yield ctx.compute(10, label="work")


class Pong(SimProcess):
    def run(self, ctx):
        msg = yield ctx.recv(src=0)
        yield ctx.send(0, msg.payload + "-pong", tag="t")


class TestRegistry:
    def test_make_backend_names(self):
        assert isinstance(make_backend("sim"), SimBackend)
        assert isinstance(make_backend("local"), LocalProcessBackend)

    def test_make_backend_unknown(self):
        with pytest.raises(ValueError, match="unknown backend"):
            make_backend("quantum")

    def test_mpi_unavailable(self):
        try:
            import mpi4py  # noqa: F401

            pytest.skip("mpi4py installed on this host")
        except ImportError:
            pass
        with pytest.raises(BackendUnavailableError, match="mpi4py"):
            make_backend("mpi")

    def test_resolve_backend_passthrough(self):
        bk = LocalProcessBackend()
        assert resolve_backend(bk) is bk
        assert isinstance(resolve_backend(None), SimBackend)
        assert isinstance(resolve_backend("sim"), SimBackend)

    def test_resolve_backend_forwards_sim_options(self):
        bk = resolve_backend("sim", network=GIGABIT, record_trace=True)
        assert bk.network is GIGABIT
        assert bk.record_trace is True


class TestSimBackend:
    def test_matches_virtual_cluster(self):
        direct = VirtualCluster([Ping(0), Pong(1)]).run()
        via = SimBackend().run([Ping(0), Pong(1)])
        assert isinstance(via, BackendRun)
        assert via.seconds == direct.makespan
        assert via.comm.messages == direct.comm.messages
        assert via.comm.bytes_total == direct.comm.bytes_total
        assert via.clocks == direct.clocks

    def test_procs_are_inputs(self):
        ping, pong = Ping(0), Pong(1)
        run = SimBackend().run([ping, pong])
        assert run.proc(0) is ping
        assert run.proc(1) is pong
        assert ping.got == "ping-pong"

    def test_proc_unknown_rank(self):
        run = SimBackend().run([Ping(0), Pong(1)])
        with pytest.raises(KeyError):
            run.proc(7)

    def test_is_backend(self):
        assert isinstance(SimBackend(), Backend)


class TestContextProtocol:
    def test_proc_context_satisfies_protocol(self):
        cluster_like = type("C", (), {"n_procs": 2, "clock_of": lambda self, r: 0.0})()
        assert isinstance(ProcContext(0, cluster_like), ExecutionContext)

    def test_local_context_surface(self):
        # The local context satisfies the protocol structurally; checked
        # end-to-end by the transport tests (it needs live pipes to build).
        from repro.backend.local import LocalContext

        for attr in ("send", "bcast", "recv", "compute"):
            assert callable(getattr(LocalContext, attr))

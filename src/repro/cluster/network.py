"""Network model for the simulated cluster.

Models a 2005-era Beowulf interconnect (switched Fast Ethernet under
LAM/MPI over TCP): a fixed per-message latency plus a bandwidth term, with
the sender's CPU occupied for the marshalling/transmission time (TCP send
path) and the message arriving one latency later.

All knobs are explicit so ablations can explore faster/slower fabrics.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["NetworkModel", "FAST_ETHERNET", "GIGABIT", "INFINIBAND_LIKE"]


@dataclass(frozen=True)
class NetworkModel:
    """Latency/bandwidth cost model for one message.

    Attributes
    ----------
    latency_s:
        One-way message latency in seconds (wire + MPI stack).
    bandwidth_bps:
        Sustained point-to-point bandwidth in *bytes* per second.
    send_overhead_s:
        Fixed CPU cost on the sender per message (marshalling, syscalls).
    """

    latency_s: float = 100e-6
    bandwidth_bps: float = 11.0e6  # ~Fast Ethernet sustained (bytes/s)
    send_overhead_s: float = 50e-6

    def __post_init__(self):
        if self.latency_s < 0 or self.bandwidth_bps <= 0 or self.send_overhead_s < 0:
            raise ValueError("invalid network parameters")

    def sender_busy_time(self, nbytes: int) -> float:
        """CPU time the sender spends pushing ``nbytes`` out."""
        return self.send_overhead_s + nbytes / self.bandwidth_bps

    def arrival_delay(self) -> float:
        """Extra delay between send completion and delivery."""
        return self.latency_s


#: ~100 Mbit switched Ethernet — the paper's likely fabric.
FAST_ETHERNET = NetworkModel(latency_s=100e-6, bandwidth_bps=11.0e6, send_overhead_s=50e-6)
#: ~1 Gbit Ethernet.
GIGABIT = NetworkModel(latency_s=50e-6, bandwidth_bps=110.0e6, send_overhead_s=20e-6)
#: Low-latency fabric for ablations.
INFINIBAND_LIKE = NetworkModel(latency_s=5e-6, bandwidth_bps=900.0e6, send_overhead_s=2e-6)

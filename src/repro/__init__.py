"""repro — a reproduction of "A pipelined data-parallel algorithm for ILP"
(Fonseca, Silva, Santos Costa, Camacho; IEEE CLUSTER 2005).

The package implements, from scratch:

* :mod:`repro.logic` — a first-order logic substrate (terms, unification,
  θ-subsumption, resource-bounded SLD resolution) replacing the Prolog
  system the paper's April ILP engine ran on;
* :mod:`repro.ilp` — an MDIE ILP engine: mode declarations, bottom-clause
  saturation, top-down breadth-first rule search, and the sequential
  covering algorithm (paper Figs. 1-2);
* :mod:`repro.cluster` — a deterministic discrete-event simulated
  distributed-memory cluster (virtual clocks, mpi4py-style messaging,
  latency/bandwidth network model, communication accounting);
* :mod:`repro.parallel` — **P²-MDIE**, the paper's pipelined data-parallel
  covering algorithm (Figs. 5-7), plus the related-work baseline;
* :mod:`repro.fault` — fault tolerance & elasticity: deterministic fault
  plans (crashes, stragglers, message loss, elastic joins), epoch
  checkpoints with bit-identical resume, and self-healing masters that
  rebuild lost workers by deterministic replay;
* :mod:`repro.datasets` — seeded synthetic equivalents of the paper's
  three evaluation datasets (Table 1);
* :mod:`repro.experiments` — the §5 evaluation protocol: 5-fold CV,
  paired t-tests, and renderers for Tables 1-6 and the Fig. 3-4 trace.

Quickstart::

    from repro.datasets import make_dataset
    from repro.parallel import run_p2mdie

    ds = make_dataset("trains", seed=0)
    result = run_p2mdie(ds.kb, ds.pos, ds.neg, ds.modes, ds.config, p=4)
    print(result.theory)
"""

__version__ = "1.0.0"

__all__ = ["logic", "ilp", "cluster", "parallel", "datasets", "experiments", "util"]

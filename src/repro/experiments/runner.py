"""Experiment runner: one (dataset × width × p × fold) cell per run.

Reproduces the paper's protocol (§5.2): 5-fold cross-validation; for each
fold the sequential algorithm (p=1) and P²-MDIE at p ∈ {2, 4, 8} with
pipeline width ∈ {nolimit, 10}; reported values are fold averages.

Sequential and parallel runs share the same engine cost model, so Table 2's
speedups are ratios of commensurable virtual times.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Union

from repro.backend import Backend
from repro.cluster.costmodel import CostModel, DEFAULT_COST_MODEL
from repro.cluster.network import FAST_ETHERNET, NetworkModel
from repro.datasets.base import Dataset, make_dataset
from repro.experiments.crossval import Fold, kfold
from repro.ilp.mdie import mdie
from repro.ilp.theory import accuracy
from repro.logic.clause import Theory
from repro.logic.engine import Engine
from repro.parallel.p2mdie import run_p2mdie, sequential_seconds

__all__ = ["RunRecord", "MatrixResult", "run_cell", "run_matrix", "WIDTH_LABELS", "width_label"]

#: the paper's two pipeline configurations.
WIDTH_LABELS = {"nolimit": None, "10": 10}


def width_label(width: Optional[int]) -> str:
    return "nolimit" if width is None else str(width)


@dataclass(frozen=True)
class RunRecord:
    """One cell of the evaluation matrix."""

    dataset: str
    width: Optional[int]  # None = nolimit
    p: int  # 1 = sequential MDIE
    fold: int
    seconds: float
    mbytes: float
    epochs: int
    test_accuracy: float
    theory_size: int
    uncovered: int
    #: ExampleStore evaluation-cache effectiveness over the run (summed
    #: over workers for parallel cells) — makes recovery-induced cache
    #: invalidation visible in the experiments report.
    cache_hits: int = 0
    cache_misses: int = 0

    @property
    def width_name(self) -> str:
        return width_label(self.width)

    @property
    def cache_hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0


@dataclass
class MatrixResult:
    """All records of a matrix sweep, with lookup helpers."""

    records: list[RunRecord] = field(default_factory=list)

    def cells(
        self,
        dataset: Optional[str] = None,
        width: Optional[object] = ...,
        p: Optional[int] = None,
    ) -> list[RunRecord]:
        out = self.records
        if dataset is not None:
            out = [r for r in out if r.dataset == dataset]
        if width is not ...:
            out = [r for r in out if r.width == width]
        if p is not None:
            out = [r for r in out if r.p == p]
        return out

    def fold_values(self, attr: str, dataset: str, width, p: int) -> list[float]:
        recs = sorted(self.cells(dataset, width, p), key=lambda r: r.fold)
        return [getattr(r, attr) for r in recs]

    def mean(self, attr: str, dataset: str, width, p: int) -> float:
        vals = self.fold_values(attr, dataset, width, p)
        if not vals:
            raise KeyError(f"no records for ({dataset}, {width}, {p})")
        return sum(vals) / len(vals)


def run_cell(
    ds: Dataset,
    fold: Fold,
    p: int,
    width: Optional[int],
    seed: int,
    network: NetworkModel = FAST_ETHERNET,
    cost_model: CostModel = DEFAULT_COST_MODEL,
    max_epochs: Optional[int] = None,
    backend: Union[Backend, str, None] = None,
) -> RunRecord:
    """Run one algorithm configuration on one fold.

    ``backend`` selects the execution substrate for the parallel runs
    (``p > 1``); the sequential baseline always runs in-process and its
    ``seconds`` stay virtual, so only compare speedups within one
    substrate.
    """
    if p == 1:
        res = mdie(ds.kb, list(fold.train_pos), list(fold.train_neg), ds.modes, ds.config, seed=seed, max_epochs=max_epochs)
        theory: Theory = res.theory
        seconds = sequential_seconds(res, cost_model)
        mbytes = 0.0
        epochs = res.epochs
        uncovered = res.uncovered
        cache_hits, cache_misses = res.cache_hits, res.cache_misses
    else:
        res = run_p2mdie(
            ds.kb,
            list(fold.train_pos),
            list(fold.train_neg),
            ds.modes,
            ds.config,
            p=p,
            width=width,
            seed=seed,
            network=network,
            cost_model=cost_model,
            max_epochs=max_epochs,
            backend=backend,
        )
        theory = res.theory
        seconds = res.seconds
        mbytes = res.mbytes
        epochs = res.epochs
        uncovered = res.uncovered
        cache_hits, cache_misses = res.cache_hits, res.cache_misses
    engine = Engine(ds.kb, ds.config.engine_budget(), kernel=ds.config.coverage_kernel)
    acc = accuracy(engine, theory, list(fold.test_pos), list(fold.test_neg))
    return RunRecord(
        dataset=ds.name,
        width=width if p > 1 else None,
        p=p,
        fold=fold.index,
        seconds=seconds,
        mbytes=mbytes,
        epochs=epochs,
        test_accuracy=acc,
        theory_size=len(theory),
        uncovered=uncovered,
        cache_hits=cache_hits,
        cache_misses=cache_misses,
    )


def run_matrix(
    dataset_names: Sequence[str] = ("carcinogenesis", "mesh", "pyrimidines"),
    widths: Sequence[Optional[int]] = (None, 10),
    ps: Sequence[int] = (2, 4, 8),
    k_folds: int = 5,
    scale: str = "small",
    seed: int = 0,
    network: NetworkModel = FAST_ETHERNET,
    cost_model: CostModel = DEFAULT_COST_MODEL,
    include_sequential: bool = True,
    max_epochs: Optional[int] = None,
    backend: Union[Backend, str, None] = None,
) -> MatrixResult:
    """Run the full evaluation matrix of §5.

    The sequential baseline (p=1) is run once per fold and shared by both
    width configurations, mirroring the '-' cells in Tables 3/6.
    ``backend`` applies to every parallel cell (see :func:`run_cell`).
    """
    out = MatrixResult()
    for name in dataset_names:
        ds = make_dataset(name, seed=seed, scale=scale)
        for fold in kfold(ds.pos, ds.neg, k=k_folds, seed=seed):
            if include_sequential:
                out.records.append(
                    run_cell(ds, fold, p=1, width=None, seed=seed, network=network, cost_model=cost_model, max_epochs=max_epochs)
                )
            for width in widths:
                for p in ps:
                    out.records.append(
                        run_cell(ds, fold, p=p, width=width, seed=seed, network=network, cost_model=cost_model, max_epochs=max_epochs, backend=backend)
                    )
    return out

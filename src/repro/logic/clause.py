"""Horn clauses and theories.

A :class:`Clause` is a definite Horn clause ``head :- body``.  ILP rules,
background-knowledge rules, and bottom clauses are all ``Clause`` values.
A :class:`Theory` is an ordered set of clauses (order matters for
first-match prediction semantics, as in Prolog-based ILP systems).

Canonical signatures
--------------------
Two canonical forms serve two different equivalences:

* :meth:`Clause.variant_key` — **renaming-invariant, order-preserving**:
  variables are renumbered by first occurrence with body literals in
  their given order.  Equal keys guarantee the clauses are *alphabetic
  variants with identical literal order*, which makes them operationally
  interchangeable: the engine's resource-bounded evaluation is
  charge-for-charge identical under variable renaming (names affect
  nothing), so covered **and** budget-exhausted bitsets coincide exactly.
  This is the key the evaluation caches and master rule bags merge on —
  O(1) variant dedup that provably cannot change any learned theory.
* :meth:`Clause.fingerprint` — **renaming- and order-invariant**: body
  literals are first sorted by a variable-free skeleton key, then
  variables renumbered in that canonical order.  Equal fingerprints
  guarantee the clauses are θ-variants (hence subsumption-equivalent);
  body order is irrelevant to the *logical* generality relation, so this
  is the fast path for ``subsume_equivalent``.  It must NOT key
  evaluation caches: under a binding per-query op budget, differently
  ordered bodies can exhaust differently, so reordered variants are only
  logically — not operationally — interchangeable.

Both are sound in one direction only: unequal signatures make no claim
(symmetric-literal ties may keep true variants apart, costing a missed
dedup, never a wrong merge).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional

from repro.logic.terms import (
    Const,
    Struct,
    Term,
    Var,
    is_ground,
    variables_of,
)
from repro.logic.unify import Subst, rename_apart, resolve

__all__ = ["Clause", "Theory", "head_indicator"]


def _as_atom(t: Term) -> Term:
    if isinstance(t, Var):
        raise TypeError("a clause literal cannot be a variable")
    return t


class Clause:
    """A definite Horn clause ``head :- b1, ..., bn`` (facts have n = 0)."""

    __slots__ = ("head", "body", "_hash", "_fp", "_vk")

    def __init__(self, head: Term, body: Iterable[Term] = ()):
        self.head = _as_atom(head)
        self.body = tuple(_as_atom(b) for b in body)
        self._hash = hash((self.head, self.body))
        self._fp: Optional[str] = None
        self._vk: Optional[str] = None

    # -- basic protocol --------------------------------------------------------
    def __reduce__(self):
        # Rebuild through the constructor: terms re-intern on unpickle and
        # the cached fingerprint is not shipped (it is derivable, and
        # including it would bloat pickled message sizes).
        return (Clause, (self.head, self.body))

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Clause)
            and other.head == self.head
            and other.body == self.body
        )

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Clause({self})"

    def __str__(self) -> str:
        if not self.body:
            return f"{self.head}."
        body = ", ".join(str(b) for b in self.body)
        return f"{self.head} :- {body}."

    def __len__(self) -> int:
        """Number of literals (head + body), the paper's clause length."""
        return 1 + len(self.body)

    # -- accessors --------------------------------------------------------------
    @property
    def indicator(self) -> tuple[str, int]:
        return head_indicator(self.head)

    @property
    def is_fact(self) -> bool:
        return not self.body and is_ground(self.head)

    def literals(self) -> Iterator[Term]:
        yield self.head
        yield from self.body

    def variables(self) -> list[Var]:
        """Distinct variables in order of first occurrence."""
        seen: dict[Var, None] = {}
        for lit in self.literals():
            for v in variables_of(lit):
                seen.setdefault(v)
        return list(seen)

    def is_ground_clause(self) -> bool:
        return all(is_ground(l) for l in self.literals())

    # -- transforms --------------------------------------------------------------
    def rename_apart(self, prefix: str = "_R") -> "Clause":
        """Fresh-variable variant (standardising apart before resolution)."""
        mapping: dict = {}
        head = rename_apart(self.head, mapping, prefix)
        body = tuple(rename_apart(b, mapping, prefix) for b in self.body)
        return Clause(head, body)

    def substitute(self, subst: Subst) -> "Clause":
        """Apply a substitution to every literal."""
        return Clause(resolve(self.head, subst), tuple(resolve(b, subst) for b in self.body))

    def with_extra_literal(self, lit: Term) -> "Clause":
        """Refinement step: append one body literal."""
        return Clause(self.head, self.body + (_as_atom(lit),))

    # -- canonical signatures ----------------------------------------------------
    def variant_key(self) -> str:
        """Renaming-invariant, order-preserving signature (module docstring).

        Equal keys ⇒ alphabetic variants with identical literal order ⇒
        bit-identical resource-bounded evaluation.  Computed once per
        clause and cached; literal-level skeletons are shared process-wide
        (refinement reuses the same bottom-literal term objects across
        thousands of search nodes).
        """
        vk = self._vk
        if vk is None:
            vk = self._vk = _clause_signature(self.head, self.body, sort_body=False)
        return vk

    def fingerprint(self) -> str:
        """Renaming- and order-invariant signature (see module docstring).

        Equal fingerprints ⇒ θ-variants ⇒ subsumption-equivalent.  Safe
        for logical equivalence checks only — never for evaluation
        caching (body order matters under query budgets).
        """
        fp = self._fp
        if fp is None:
            fp = self._fp = _clause_signature(self.head, self.body, sort_body=True)
        return fp


# literal -> (parts, vars, skeleton): ``parts`` are the constant string
# pieces around each variable occurrence, ``vars`` the variables in
# occurrence order (with repeats), ``skeleton`` the variable-free rendering
# used as the canonical sort key.  Keyed by the literal term itself —
# search nodes share their bottom clause's literal objects, so each
# distinct literal is rendered once per process.
_lit_fp_cache: dict = {}


def _literal_entry(lit: Term) -> tuple:
    entry = _lit_fp_cache.get(lit)
    if entry is not None:
        return entry
    tokens: list = []
    vars_: list[Var] = []

    def go(t: Term) -> None:
        if type(t) is Var:
            tokens.append(None)
            vars_.append(t)
        elif type(t) is Const:
            tokens.append(repr(t.value))
        else:
            tokens.append(t.functor)
            tokens.append("(")
            for i, a in enumerate(t.args):
                if i:
                    tokens.append(",")
                go(a)
            tokens.append(")")

    go(lit)
    parts: list[str] = []
    buf: list[str] = []
    for tok in tokens:
        if tok is None:
            parts.append("".join(buf))
            buf = []
        else:
            buf.append(tok)
    parts.append("".join(buf))
    skeleton = "_".join(parts)
    entry = (tuple(parts), tuple(vars_), skeleton)
    if len(_lit_fp_cache) > 65536:
        _lit_fp_cache.clear()
    _lit_fp_cache[lit] = entry
    return entry


def _clause_signature(head: Term, body: tuple, sort_body: bool) -> str:
    hparts, hvars, _ = _literal_entry(head)
    entries = [_literal_entry(b) for b in body]
    if sort_body:
        # Canonical body order: sort by skeleton; the sort is stable, so
        # literals with identical skeletons keep their original relative
        # order (such pairs may fingerprint apart across reorderings — a
        # missed dedup, never a false merge).
        order = sorted(range(len(body)), key=lambda i: entries[i][2])
    else:
        order = range(len(body))
    num: dict[Var, int] = {}
    for v in hvars:
        if v not in num:
            num[v] = len(num)
    for i in order:
        for v in entries[i][1]:
            if v not in num:
                num[v] = len(num)

    def render(parts: tuple, vs: tuple) -> str:
        # Variable indices render as "_<n>": constants render through
        # ``repr`` (strings quoted), so the bare underscore prefix can
        # never collide with a constant's rendering.
        out = [parts[0]]
        for j, v in enumerate(vs):
            out.append("_" + str(num[v]))
            out.append(parts[j + 1])
        return "".join(out)

    body_r = ";".join(render(entries[i][0], entries[i][1]) for i in order)
    return render(hparts, hvars) + ":-" + body_r


def head_indicator(head: Term) -> tuple[str, int]:
    if isinstance(head, Struct):
        return head.indicator
    if isinstance(head, Const) and isinstance(head.value, str):
        return (head.value, 0)
    raise TypeError(f"invalid clause head: {head!r}")


class Theory:
    """An ordered collection of learned clauses."""

    __slots__ = ("clauses",)

    def __init__(self, clauses: Iterable[Clause] = ()):
        self.clauses: list[Clause] = list(clauses)

    def add(self, clause: Clause) -> None:
        self.clauses.append(clause)

    def __iter__(self) -> Iterator[Clause]:
        return iter(self.clauses)

    def __len__(self) -> int:
        return len(self.clauses)

    def __getitem__(self, i: int) -> Clause:
        return self.clauses[i]

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Theory) and other.clauses == self.clauses

    def __str__(self) -> str:
        return "\n".join(str(c) for c in self.clauses)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Theory({len(self.clauses)} clauses)"

    def total_literals(self) -> int:
        return sum(len(c) for c in self.clauses)

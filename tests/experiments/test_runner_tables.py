"""Integration tests for the experiment runner and table renderers.

Uses the trains dataset (small and fast) with a reduced matrix so the whole
module runs in seconds.
"""

import pytest

from repro.datasets import make_dataset
from repro.experiments.crossval import kfold
from repro.experiments.runner import MatrixResult, RunRecord, run_cell, run_matrix
from repro.experiments.tables import (
    table1_datasets,
    table2_speedup,
    table3_times,
    table4_communication,
    table5_epochs,
    table6_accuracy,
)


@pytest.fixture(scope="module")
def matrix() -> MatrixResult:
    return run_matrix(
        dataset_names=("trains",),
        widths=(None, 2),
        ps=(2, 3),
        k_folds=3,
        scale="small",
        seed=4,
    )


class TestRunCell:
    def test_sequential_cell(self):
        ds = make_dataset("trains", seed=4, scale="small")
        fold = next(iter(kfold(ds.pos, ds.neg, k=3, seed=4)))
        rec = run_cell(ds, fold, p=1, width=None, seed=4)
        assert rec.p == 1
        assert rec.mbytes == 0.0
        assert rec.seconds > 0
        assert 0 <= rec.test_accuracy <= 100

    def test_parallel_cell(self):
        ds = make_dataset("trains", seed=4, scale="small")
        fold = next(iter(kfold(ds.pos, ds.neg, k=3, seed=4)))
        rec = run_cell(ds, fold, p=2, width=2, seed=4)
        assert rec.p == 2
        assert rec.mbytes > 0
        assert rec.width == 2


class TestMatrix:
    def test_record_count(self, matrix):
        # 3 folds x (1 sequential + 2 widths x 2 ps) = 15
        assert len(matrix.records) == 15

    def test_cells_lookup(self, matrix):
        assert len(matrix.cells("trains", None, 1)) == 3
        assert len(matrix.cells("trains", 2, 3)) == 3

    def test_fold_values_sorted(self, matrix):
        vals = matrix.fold_values("seconds", "trains", None, 1)
        assert len(vals) == 3

    def test_mean_missing_raises(self, matrix):
        with pytest.raises(KeyError):
            matrix.mean("seconds", "trains", 99, 1)

    def test_all_runs_terminate_with_theories(self, matrix):
        for r in matrix.records:
            assert r.epochs >= 1
            assert r.theory_size >= 0


class TestTables:
    def test_table1(self):
        ds = make_dataset("trains", seed=4, scale="small")
        out = table1_datasets([ds])
        assert "trains" in out and "|E+|" in out
        assert str(ds.n_pos) in out

    def test_table2_structure(self, matrix):
        out = table2_speedup(matrix, ps=(2, 3))
        assert "Table 2" in out
        assert "nolimit" in out and "2" in out
        # one row per (dataset, width)
        assert out.count("trains") == 2

    def test_table3_has_sequential_column(self, matrix):
        out = table3_times(matrix, ps=(2, 3))
        lines = [l for l in out.splitlines() if l.startswith("trains")]
        assert len(lines) == 2
        # second width row shows '-' for the shared sequential column
        assert "-" in lines[1]

    def test_table4(self, matrix):
        out = table4_communication(matrix, ps=(2, 3))
        assert "MBytes" in out

    def test_table5(self, matrix):
        out = table5_epochs(matrix, ps=(2, 3))
        assert "epochs" in out

    def test_table6_stars_and_std(self, matrix):
        out = table6_accuracy(matrix, ps=(2, 3))
        assert "(" in out  # std dev present
        assert "Table 6" in out

    def test_tables_render_without_sequential(self):
        m = run_matrix(
            dataset_names=("trains",),
            widths=(2,),
            ps=(2,),
            k_folds=2,
            scale="small",
            seed=4,
            include_sequential=False,
            max_epochs=2,
        )
        assert "trains" in table4_communication(m, ps=(2,))
        assert "trains" in table5_epochs(m, ps=(2,))

"""Hash-consing tests: interning identity, ground flags, pickling, and
the REPRO_INTERN=0 escape hatch."""

import os
import pickle
import subprocess
import sys

import pytest

from repro.logic.parser import parse_clause, parse_term
from repro.logic.terms import (
    Const,
    Struct,
    Var,
    atom,
    intern_enabled,
    is_ground,
    mk_term,
)

# Identity assertions only hold with hash-consing on; a REPRO_INTERN=0
# test run exercises the structural fallbacks through every other suite.
pytestmark = pytest.mark.skipif(
    not intern_enabled(), reason="term interning disabled (REPRO_INTERN=0)"
)


class TestConstInterning:
    def test_equal_consts_are_identical(self):
        assert Const("ethyl") is Const("ethyl")
        assert Const(7) is Const(7)
        assert Const(2.5) is Const(2.5)

    def test_numeric_types_stay_distinct(self):
        assert Const(1) is not Const(1.0)
        assert Const(1) != Const(1.0)
        assert Const(True) is not Const(1)
        assert Const(True) != Const(1)

    def test_no_type_rederivation_per_compare(self):
        # The (type, value) key is built once at construction; equality
        # between distinct constants is a single tuple compare at most.
        a, b = Const(1), Const(2)
        assert a._key == (int, 1) and b._key == (int, 2)
        assert a != b

    def test_pickle_reinterns(self):
        c = Const("benzene")
        assert pickle.loads(pickle.dumps(c)) is c


class TestStructInterning:
    def test_ground_structs_are_identical(self):
        assert parse_term("bond(m1, a1, a2, 7)") is parse_term("bond(m1, a1, a2, 7)")
        assert atom("f", atom("g", "x")) is atom("f", atom("g", "x"))

    def test_var_structs_are_not_interned_but_equal(self):
        s, t = parse_term("p(X, a)"), parse_term("p(X, a)")
        assert s == t
        assert not s.interned and not t.interned

    def test_ground_flag(self):
        assert parse_term("f(a, g(b))").ground
        assert not parse_term("f(a, g(X))").ground
        assert is_ground(parse_term("f(a)"))
        assert not is_ground(Var("X"))

    def test_interned_implies_ground(self):
        t = parse_term("f(a, X)")
        for sub in (t, *t.args):
            if isinstance(sub, Struct) and sub.interned:
                assert sub.ground

    def test_pickle_reinterns_ground(self):
        t = parse_term("bond(m1, a1, a2, 7)")
        assert pickle.loads(pickle.dumps(t)) is t

    def test_pickle_var_struct_round_trip(self):
        t = parse_term("p(X, f(a, Y))")
        u = pickle.loads(pickle.dumps(t))
        assert u == t and hash(u) == hash(t)

    def test_nested_sharing(self):
        inner = parse_term("g(a, b)")
        outer = parse_term("f(g(a, b), c)")
        assert outer.args[0] is inner


class TestClauseIdentityPaths:
    def test_clause_equality_uses_shared_subterms(self):
        c1 = parse_clause("p(X) :- q(X, a), r(b).")
        c2 = parse_clause("p(X) :- q(X, a), r(b).")
        assert c1 == c2 and hash(c1) == hash(c2)
        # the ground literal is one shared object
        assert c1.body[1] is c2.body[1]


@pytest.mark.skipif(not intern_enabled(), reason="interning already disabled")
def test_intern_disabled_subprocess():
    """REPRO_INTERN=0 degrades to structural equality, same semantics."""
    prog = (
        "from repro.logic.terms import Const, intern_enabled\n"
        "from repro.logic.parser import parse_term\n"
        "assert not intern_enabled()\n"
        "assert Const('a') == Const('a')\n"
        "assert Const(1) != Const(1.0)\n"
        "s, t = parse_term('f(a, g(b))'), parse_term('f(a, g(b))')\n"
        "assert s == t and hash(s) == hash(t) and s.ground\n"
        "assert not s.interned\n"
        "print('ok')\n"
    )
    env = dict(os.environ, REPRO_INTERN="0")
    env["PYTHONPATH"] = "src" + (os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    root = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
    out = subprocess.run([sys.executable, "-c", prog], capture_output=True, text=True, env=env, cwd=root)
    assert out.returncode == 0, out.stderr
    assert out.stdout.strip() == "ok"

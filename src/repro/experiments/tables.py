"""Render the paper's Tables 1-6 from a :class:`MatrixResult`.

Each function returns the table as text in the paper's row format
(dataset × width rows, processor-count columns), so benchmark output can
be compared side-by-side with the publication.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.datasets.base import Dataset
from repro.experiments.runner import MatrixResult, width_label
from repro.experiments.stats import mean_std, paired_ttest
from repro.util.fmt import fmt_float, fmt_int, render_table

__all__ = [
    "table1_datasets",
    "table2_speedup",
    "table3_times",
    "table4_communication",
    "table5_epochs",
    "table6_accuracy",
]


def table1_datasets(datasets: Sequence[Dataset]) -> str:
    """Table 1: dataset characterisation."""
    rows = [[ds.name, fmt_int(ds.n_pos), fmt_int(ds.n_neg)] for ds in datasets]
    return render_table(["Dataset", "|E+|", "|E-|"], rows, title="Table 1. Datasets Characterization")


def _dataset_width_rows(result: MatrixResult, ps, cell_fn) -> list[list[str]]:
    rows = []
    datasets = sorted({r.dataset for r in result.records})
    for ds in datasets:
        widths = sorted(
            {r.width for r in result.records if r.dataset == ds and r.p > 1},
            key=lambda w: (w is not None, w if w is not None else 0),
        )
        for w in widths:
            rows.append([ds, width_label(w)] + [cell_fn(ds, w, p) for p in ps])
    return rows


def table2_speedup(result: MatrixResult, ps: Sequence[int] = (2, 4, 8)) -> str:
    """Table 2: average speedup vs the sequential run, per width and p."""

    def cell(ds: str, w, p: int) -> str:
        seq = result.fold_values("seconds", ds, None, 1)
        par = result.fold_values("seconds", ds, w, p)
        if not seq or not par:
            return "-"
        speedups = [s / q for s, q in zip(seq, par)]
        return fmt_float(sum(speedups) / len(speedups), 2)

    rows = _dataset_width_rows(result, ps, cell)
    return render_table(
        ["Dataset", "Width"] + [str(p) for p in ps],
        rows,
        title="Table 2. Average speedup observed for 2, 4, and 8 processors",
    )


def table3_times(result: MatrixResult, ps: Sequence[int] = (2, 4, 8)) -> str:
    """Table 3: average execution time in (virtual) seconds, incl. p=1."""

    def fmt_secs(x: float) -> str:
        # small-scale runs are seconds, paper-scale thousands of seconds
        return fmt_float(x, 1) if x < 100 else fmt_int(x)

    def cell(ds: str, w, p: int) -> str:
        vals = result.fold_values("seconds", ds, w, p)
        return fmt_secs(sum(vals) / len(vals)) if vals else "-"

    rows = []
    datasets = sorted({r.dataset for r in result.records})
    for ds in datasets:
        widths = sorted(
            {r.width for r in result.records if r.dataset == ds and r.p > 1},
            key=lambda w: (w is not None, w if w is not None else 0),
        )
        for idx, w in enumerate(widths):
            seq = result.fold_values("seconds", ds, None, 1)
            seq_cell = fmt_secs(sum(seq) / len(seq)) if (seq and idx == 0) else "-"
            rows.append([ds, width_label(w), seq_cell] + [cell(ds, w, p) for p in ps])
    return render_table(
        ["Dataset", "Width", "1"] + [str(p) for p in ps],
        rows,
        title="Table 3. Average execution time (in seconds)",
    )


def table4_communication(result: MatrixResult, ps: Sequence[int] = (2, 4, 8)) -> str:
    """Table 4: average communication exchanged (MBytes)."""

    def cell(ds: str, w, p: int) -> str:
        vals = result.fold_values("mbytes", ds, w, p)
        if not vals:
            return "-"
        mb = sum(vals) / len(vals)
        return fmt_float(mb, 2) if mb < 10 else fmt_int(mb)

    rows = _dataset_width_rows(result, ps, cell)
    return render_table(
        ["Dataset", "Width"] + [str(p) for p in ps],
        rows,
        title="Table 4. Average communication exchanged (in MBytes)",
    )


def table5_epochs(result: MatrixResult, ps: Sequence[int] = (2, 4, 8)) -> str:
    """Table 5: average number of epochs."""

    def cell(ds: str, w, p: int) -> str:
        vals = result.fold_values("epochs", ds, w, p)
        return fmt_float(sum(vals) / len(vals), 1) if vals else "-"

    rows = _dataset_width_rows(result, ps, cell)
    return render_table(
        ["Dataset", "Width"] + [str(p) for p in ps],
        rows,
        title="Table 5. Average number of epochs",
    )


def table6_accuracy(result: MatrixResult, ps: Sequence[int] = (2, 4, 8), confidence: float = 0.98) -> str:
    """Table 6: average predictive accuracy, std in parentheses, '*' when
    the paired t-test flags a significant difference vs sequential."""

    rows = []
    datasets = sorted({r.dataset for r in result.records})
    for ds in datasets:
        widths = sorted(
            {r.width for r in result.records if r.dataset == ds and r.p > 1},
            key=lambda w: (w is not None, w if w is not None else 0),
        )
        seq = result.fold_values("test_accuracy", ds, None, 1)
        for idx, w in enumerate(widths):
            if seq and idx == 0:
                m, s = mean_std(seq)
                seq_cell = f"{m:.2f} ({s:.2f})"
            else:
                seq_cell = "-"
            cells = []
            for p in ps:
                vals = result.fold_values("test_accuracy", ds, w, p)
                if not vals:
                    cells.append("-")
                    continue
                m, s = mean_std(vals)
                star = ""
                if seq and len(seq) == len(vals) and len(vals) >= 2:
                    star = paired_ttest(seq, vals, confidence=confidence).star
                cells.append(f"{star}{m:.2f} ({s:.2f})")
            rows.append([ds, width_label(w), seq_cell] + cells)
    return render_table(
        ["Dataset", "Width", "1"] + [str(p) for p in ps],
        rows,
        title="Table 6. Average predictive accuracy (std); '*' = significant vs sequential",
    )

"""Ablation — interconnect sensitivity.

The paper attributes the nolimit pipeline's poor 8-processor speedup to
communication volume on its (2005, Fast-Ethernet-class) fabric.  If that
explanation is right, a faster fabric should recover most of the gap
between nolimit and W=10, while the width-constrained pipeline should be
nearly fabric-insensitive.
"""

import pytest

from conftest import SEED, one_shot
from repro.cluster import FAST_ETHERNET, GIGABIT, INFINIBAND_LIKE
from repro.datasets import make_dataset
from repro.parallel import run_p2mdie
from repro.util.fmt import fmt_float, render_table

FABRICS = {
    "fast-ethernet": FAST_ETHERNET,
    "gigabit": GIGABIT,
    "infiniband-like": INFINIBAND_LIKE,
}


@pytest.fixture(scope="module")
def sweep(scale):
    ds = make_dataset("mesh", seed=SEED, scale=scale)
    out = {}
    for fname, fabric in FABRICS.items():
        for wname, width in (("nolimit", None), ("10", 10)):
            out[(fname, wname)] = run_p2mdie(
                ds.kb, ds.pos, ds.neg, ds.modes, ds.config, p=8, width=width, seed=SEED,
                network=fabric,
            )
    return out


def test_ablation_network(benchmark, sweep, table_sink):
    one_shot(benchmark, lambda: None)  # timing lives in the module fixture
    rows = []
    for (fname, wname), r in sweep.items():
        rows.append([fname, wname, fmt_float(r.seconds, 2), fmt_float(r.mbytes, 3), r.epochs])
    table_sink(
        "ablation_network",
        render_table(
            ["fabric", "width", "vtime(s)", "MB", "epochs"],
            rows,
            title="Ablation: interconnect speed vs pipeline width (mesh-like, p=8)",
        ),
    )
    # The communication-bound configuration (nolimit) gains more from a
    # faster fabric than the width-constrained one.
    gain_nolimit = sweep[("fast-ethernet", "nolimit")].seconds / sweep[("infiniband-like", "nolimit")].seconds
    gain_w10 = sweep[("fast-ethernet", "10")].seconds / sweep[("infiniband-like", "10")].seconds
    assert gain_nolimit >= gain_w10 * 0.98
    # Volume (bytes) is fabric-independent: same messages, same sizes.
    assert sweep[("fast-ethernet", "nolimit")].comm.bytes_total == sweep[("infiniband-like", "nolimit")].comm.bytes_total

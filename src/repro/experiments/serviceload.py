"""Service workload generation and measurement.

The service benchmark (``benchmarks/bench_service.py``) and the
experiments layer share these helpers: build a fleet of learning-job
specs, drive a :class:`~repro.service.scheduler.JobScheduler` to
completion under wall-clock timing, and measure batched-query latency
scaling against the one-shot baseline.

Measurements are wall-clock by design — the service layer exists to
overlap real work (local-backend jobs are OS processes; queries run in
the serving process), so virtual time has no meaning here.
"""

from __future__ import annotations

import time
from typing import Optional, Sequence

from repro.datasets import make_dataset
from repro.ilp import predicts
from repro.logic.engine import Engine
from repro.service.jobs import JobOutcome, JobSpec, run_job
from repro.service.query import QueryEngine
from repro.service.registry import TheoryRegistry
from repro.service.scheduler import JobScheduler

__all__ = [
    "make_job_fleet",
    "run_job_fleet",
    "measure_query_scaling",
    "measure_shard_scaling",
    "measure_streaming_latency",
    "measure_transport_bytes",
]


def make_job_fleet(
    n_jobs: int,
    dataset: str = "trains",
    algo: str = "p2mdie",
    p: int = 2,
    backend: str = "local",
    base_seed: int = 0,
) -> list[JobSpec]:
    """``n_jobs`` independent learning specs with distinct seeds.

    Distinct seeds make the fleet a realistic multi-tenant mix (each job
    learns on its own generated dataset instance) while staying fully
    deterministic.
    """
    return [
        JobSpec(dataset=dataset, algo=algo, p=p, backend=backend, seed=base_seed + i)
        for i in range(n_jobs)
    ]


def run_job_fleet(
    specs: Sequence[JobSpec],
    slots: int,
    state_dir: Optional[str] = None,
    verify_parity: bool = False,
    timeout: float = 1800.0,
) -> dict:
    """Run ``specs`` to completion over ``slots``; wall-clock throughput.

    With ``verify_parity`` every job outcome is additionally checked
    bit-identical against a direct in-process :func:`run_job` of the
    same spec — the service guarantee the benchmark gates on.
    """
    scheduler = JobScheduler(slots=slots, state_dir=state_dir)
    t0 = time.perf_counter()
    job_ids = [scheduler.submit(spec) for spec in specs]
    scheduler.wait_all(timeout=timeout)
    wall = time.perf_counter() - t0
    outcomes: list[JobOutcome] = [scheduler.result(j) for j in job_ids]
    scheduler.close()
    parity = True
    if verify_parity:
        for spec, outcome in zip(specs, outcomes):
            direct = run_job(spec.replace(backend="sim"))
            parity = parity and list(direct.theory) == list(outcome.theory)
    return {
        "n_jobs": len(specs),
        "slots": slots,
        "wall_s": round(wall, 4),
        "jobs_per_s": round(len(specs) / wall, 4) if wall else 0.0,
        "epochs": sum(o.epochs for o in outcomes),
        "parity": parity,
    }


def measure_query_scaling(
    batch_sizes: Sequence[int],
    dataset: str = "trains",
    seed: int = 0,
    scale: str = "small",
    registry_root: Optional[str] = None,
) -> dict:
    """Per-query latency of batched coverage vs the one-shot baseline.

    Learns one theory (sequential MDIE), registers it, then for each
    batch size measures (a) the batched
    :meth:`~repro.service.query.QueryEngine.query` path — prepared
    engine, one clause rename per batch, first-match candidate
    narrowing — and (b) the naive loop calling
    :func:`repro.ilp.theory.predicts` per example on the same warm
    engine.  Both must classify every example identically (gated).

    Batches cycle the dataset's pos+neg pool to the requested size, so
    large batches really answer thousands of ground queries.
    """
    import itertools
    import tempfile

    ds = make_dataset(dataset, seed=seed, scale=scale)
    learned = run_job(JobSpec(dataset=dataset, algo="mdie", seed=seed, scale=scale))
    own_tmp = None
    if registry_root is None:
        own_tmp = tempfile.TemporaryDirectory(prefix="repro-queryreg-")
        registry_root = own_tmp.name
    try:
        registry = TheoryRegistry(registry_root)
        registry.publish(
            f"{dataset}-bench",
            learned.theory,
            config_sig=learned.config_sig,
            provenance={"dataset": dataset, "seed": str(seed), "scale": scale},
        )
        engine = QueryEngine(registry=registry)
        pool = ds.pos + ds.neg
        baseline_engine = Engine(
            ds.kb, ds.config.engine_budget(), kernel=ds.config.coverage_kernel
        )
        rows = []
        parity = True
        for size in batch_sizes:
            batch = list(itertools.islice(itertools.cycle(pool), size))
            t0 = time.perf_counter()
            result = engine.query(f"{dataset}-bench", batch)
            batched_s = time.perf_counter() - t0
            t0 = time.perf_counter()
            oneshot = [predicts(baseline_engine, learned.theory, e) for e in batch]
            oneshot_s = time.perf_counter() - t0
            parity = parity and result.decisions() == oneshot
            rows.append(
                {
                    "batch": size,
                    "batched_s": round(batched_s, 6),
                    "oneshot_s": round(oneshot_s, 6),
                    "batched_us_per_query": round(1e6 * batched_s / size, 3),
                    "oneshot_us_per_query": round(1e6 * oneshot_s / size, 3),
                    "speedup": round(oneshot_s / batched_s, 3) if batched_s else 0.0,
                }
            )
        return {
            "dataset": dataset,
            "theory_size": len(learned.theory),
            "pool": len(pool),
            "rows": rows,
            "prepared": engine.stats(),
            "parity": parity,
        }
    finally:
        if own_tmp is not None:
            own_tmp.cleanup()


def _published_theory(registry_root: str, dataset: str, seed: int, scale: str):
    """Learn one sequential-MDIE theory and publish it under the bench name.

    Shared setup of the query-tier measurements: the learned theory is
    the *sequential* baseline by construction, so every sharded /
    streamed / remote-transport result can be compared against it.
    Returns ``(dataset, outcome, name, registry)``.
    """
    ds = make_dataset(dataset, seed=seed, scale=scale)
    learned = run_job(JobSpec(dataset=dataset, algo="mdie", seed=seed, scale=scale))
    name = f"{dataset}-bench"
    registry = TheoryRegistry(registry_root)
    registry.publish(
        name,
        learned.theory,
        config_sig=learned.config_sig,
        provenance={"dataset": dataset, "seed": str(seed), "scale": scale},
    )
    return ds, learned, name, registry


def _cycled_batch(ds, size: int) -> list:
    import itertools

    return list(itertools.islice(itertools.cycle(ds.pos + ds.neg), size))


def measure_shard_scaling(
    shard_counts: Sequence[int],
    batch: int = 1000,
    dataset: str = "trains",
    seed: int = 0,
    scale: str = "small",
) -> dict:
    """Sharded batched-query throughput vs the sequential path.

    One batch of ``batch`` examples (the dataset pool cycled), evaluated
    once sequentially and then with each shard count; every sharded
    covered-bitset must equal the sequential one bit for bit (the
    parity flag the benchmark gates on).  Each configuration gets one
    warm-up run first, so engine-pool construction is not billed to the
    steady-state number.
    """
    import tempfile

    with tempfile.TemporaryDirectory(prefix="repro-shardbench-") as root:
        ds, _learned, name, registry = _published_theory(root, dataset, seed, scale)
        engine = QueryEngine(registry=registry)
        examples = _cycled_batch(ds, batch)
        engine.query(name, examples)  # warm the prepared-theory cache
        t0 = time.perf_counter()
        seq = engine.query(name, examples)
        seq_s = time.perf_counter() - t0
        rows = []
        parity = True
        for shards in shard_counts:
            engine.query(name, examples, shards=shards)  # warm the engine pool
            t0 = time.perf_counter()
            res = engine.query(name, examples, shards=shards)
            wall = time.perf_counter() - t0
            parity = parity and res.covered == seq.covered and res.n == seq.n
            rows.append(
                {
                    "shards": shards,
                    "wall_s": round(wall, 6),
                    "examples_per_s": round(batch / wall, 1) if wall else 0.0,
                    "speedup_vs_seq": round(seq_s / wall, 3) if wall else 0.0,
                }
            )
        return {
            "batch": batch,
            "dataset": dataset,
            "sequential_s": round(seq_s, 6),
            "rows": rows,
            "parity": parity,
        }


def measure_streaming_latency(
    batch: int = 1000,
    shards: int = 4,
    dataset: str = "trains",
    seed: int = 0,
    scale: str = "small",
) -> dict:
    """Time-to-first-shard-frame vs full-batch latency of one stream.

    Runs on a single-worker shard executor so the shards serialize: the
    first frame then lands after ~1/``shards`` of the total work by
    construction, which is the latency decoupling the streaming tier
    sells (and what the benchmark asserts — ``first_frame_s`` strictly
    below ``full_batch_s``).  The reassembled result must match the
    sequential path bit for bit.
    """
    import tempfile

    with tempfile.TemporaryDirectory(prefix="repro-streambench-") as root:
        ds, _learned, name, registry = _published_theory(root, dataset, seed, scale)
        engine = QueryEngine(registry=registry, shard_workers=1)
        examples = _cycled_batch(ds, batch)
        seq = engine.query(name, examples)
        t0 = time.perf_counter()  # clock covers stream open + shard work
        stream = engine.query_stream(name, examples, shards=shards)
        first_s = None
        for _frame in stream.frames():
            if first_s is None:
                first_s = time.perf_counter() - t0
        full_s = time.perf_counter() - t0
        result = stream.result()
        return {
            "batch": batch,
            "shards": result.shards,
            "first_frame_s": round(first_s, 6),
            "full_batch_s": round(full_s, 6),
            "first_fraction": round(first_s / full_s, 4) if full_s else 0.0,
            "parity": result.covered == seq.covered and result.n == seq.n,
        }


def measure_transport_bytes(
    batch: int = 200,
    dataset: str = "trains",
    seed: int = 0,
    scale: str = "small",
) -> dict:
    """Bytes on the socket for one batched query, JSON-lines vs wire.

    Starts a real server, runs the *same* query over both negotiated
    transports, and reads each client's byte counters (hello/negotiation
    overhead included — that is part of the transport's price).  Both
    responses must classify identically.
    """
    import os
    import tempfile
    import threading

    from repro.service.server import ServiceClient, serve

    with tempfile.TemporaryDirectory(prefix="repro-wirebench-") as root:
        reg_root = os.path.join(root, "registry")
        ds, _learned, name, _registry = _published_theory(reg_root, dataset, seed, scale)
        ready = threading.Event()
        box = {}

        def _ready(server) -> None:
            box["port"] = server.port
            ready.set()

        thread = threading.Thread(
            target=serve,
            kwargs=dict(
                host="127.0.0.1", port=0, slots=1,
                state_dir=os.path.join(root, "state"),
                registry_dir=reg_root, ready=_ready,
            ),
            daemon=True,
        )
        thread.start()
        if not ready.wait(timeout=30):
            raise RuntimeError("benchmark server did not come up")
        examples = [str(e) for e in _cycled_batch(ds, batch)]
        legs = {}
        decisions = {}
        try:
            for transport in ("json", "wire"):
                with ServiceClient(
                    host="127.0.0.1", port=box["port"], transport=transport
                ) as client:
                    resp = client.query(name, examples)
                    if not resp.get("ok"):
                        raise RuntimeError(resp.get("error", "query failed"))
                    decisions[transport] = (resp["covered"], resp["n"])
                    legs[transport] = {
                        "bytes_sent": client.bytes_sent,
                        "bytes_received": client.bytes_received,
                        "bytes_total": client.bytes_sent + client.bytes_received,
                    }
        finally:
            with ServiceClient(host="127.0.0.1", port=box["port"]) as client:
                client.request({"op": "shutdown"})
            thread.join(timeout=15)
        return {
            "batch": batch,
            "dataset": dataset,
            "json": legs["json"],
            "wire": legs["wire"],
            "wire_fraction": round(
                legs["wire"]["bytes_total"] / legs["json"]["bytes_total"], 4
            ),
            "parity": decisions["json"] == decisions["wire"],
        }

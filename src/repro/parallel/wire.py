"""Compact wire codec for the parallel task messages.

The paper's communication accounting (Table 4) charges for every
marshalled byte, and the real backends ship those bytes for real — so the
wire format is a first-class perf surface.  Pickling a task payload spends
most of its bytes on protocol scaffolding: class paths, attribute names,
per-object frames.  This codec replaces it with a purpose-built binary
format:

* **per-message symbol table** — every string (functor, symbol constant,
  variable name) is emitted once and referenced by varint index.  A
  ``PipelineTask`` carrying a 60-literal bottom clause repeats each
  predicate name and variable dozens of times; all repeats collapse to
  one-or-two-byte references.
* **struct-packed scalars** — LEB128 varints for sizes/ids, zigzag varints
  for signed and arbitrary-precision integers, 8-byte IEEE doubles for
  floats, minimal big-endian byte strings for coverage **bitsets**.
* **structural layouts** per message type (one tag byte), with terms,
  clauses, search rules and bottom clauses encoded by shape — no
  per-object headers.

Messages are self-contained (the symbol table travels with the message),
so byte counts are a pure function of the payload — deterministic across
runs, processes and hash seeds (variable *sets* are sorted by name before
encoding for exactly this reason).  Decoding rebuilds terms through the
hash-consing constructors of :mod:`repro.logic.terms`, so the master and
every worker share one intern table per process: a ground term arriving
from the wire is pointer-equal to the local copy, and the engine's
identity fast paths apply to shipped rules immediately.

The codec is gated by :attr:`repro.ilp.config.ILPConfig.wire_codec`
(resolved against the ``REPRO_WIRE`` environment variable, default on) via
:func:`configured`; when disabled, accounting and transport fall back to
pickle, reproducing the seed's measurements exactly.

Wire layout (version 1)::

    0xC3 | version | type-code | n-syms | sym* | body
    sym   := varint(len) utf8-bytes
    term  := 0x00 sym                 (variable)
           | 0x01 sym                 (symbol constant)
           | 0x02 zigzag              (int constant)
           | 0x03 f64-be              (float constant)
           | 0x04 byte                (bool constant)
           | 0x05 sym varint(n) term* (compound)
    clause  := term varint(n) term*
    bitset  := varint(n) big-endian-bytes
    varset  := varint(n) sym*         (sorted by variable name)
    option  := 0x00 | 0x01 value
"""

from __future__ import annotations

import os
import struct
from contextlib import contextmanager
from typing import Optional

from repro.ilp.bottom import BottomClause, BottomLiteral
from repro.ilp.refinement import SearchRule
from repro.logic.clause import Clause
from repro.logic.terms import Const, Struct, Term, Var
from repro.parallel.messages import (
    AdoptWorker,
    EvaluateRequest,
    EvaluateResult,
    SampledEvaluateRequest,
    SampledEvaluateResult,
    ExamplesReport,
    FTEvaluateRequest,
    FTEvaluateResult,
    FTPipelineRules,
    FTPipelineTask,
    GatherExamples,
    LoadData,
    LoadExamples,
    MarkCovered,
    Ping,
    PipelineRules,
    PipelineTask,
    Pong,
    Repartition,
    RestartPipeline,
    RuleStats,
    StartPipeline,
    Stop,
    UpdateRouting,
)

__all__ = [
    "encode",
    "decode",
    "encode_always",
    "enabled",
    "configured",
    "set_enabled",
    "register_codec",
    "WIRE_ENV",
    "WireError",
]

WIRE_ENV = "REPRO_WIRE"
_MAGIC = 0xC3
_VERSION = 1

_T_VAR = 0x00
_T_CONST_STR = 0x01
_T_CONST_INT = 0x02
_T_CONST_FLOAT = 0x03
_T_CONST_BOOL = 0x04
_T_STRUCT = 0x05

_pack_f64 = struct.Struct(">d").pack
_unpack_f64 = struct.Struct(">d").unpack_from


class WireError(ValueError):
    """Malformed or unsupported wire data."""


# -- gating --------------------------------------------------------------------

_override: Optional[bool] = None


def _env_default() -> bool:
    return os.environ.get(WIRE_ENV, "") not in ("0", "off", "false")


def enabled() -> bool:
    """Whether :func:`encode` is active (override, else ``REPRO_WIRE``)."""
    return _env_default() if _override is None else _override


def set_enabled(flag: Optional[bool]) -> None:
    """Pin the codec on/off for this process (None = back to env default).

    Backend child processes call this with the parent's resolved setting:
    under the ``spawn`` start method, module globals (and with them an
    active :func:`configured` scope) are not inherited, so the flag must
    travel explicitly.
    """
    global _override
    _override = flag


@contextmanager
def configured(flag: Optional[bool]):
    """Scope the codec on/off for one run.

    ``None`` keeps the ambient default (environment).  The parallel
    front-ends wrap their backend run in this, resolving
    ``ILPConfig.wire_codec``; forked backend children inherit the setting.
    """
    global _override
    prev = _override
    if flag is not None:
        _override = flag
    try:
        yield
    finally:
        _override = prev


# -- primitive writers ----------------------------------------------------------


class _Encoder:
    __slots__ = ("body", "_syms")

    def __init__(self):
        self.body = bytearray()
        self._syms: dict[str, int] = {}

    def u(self, v: int) -> None:
        """Unsigned LEB128 varint."""
        body = self.body
        while v > 0x7F:
            body.append((v & 0x7F) | 0x80)
            v >>= 7
        body.append(v)

    def z(self, v: int) -> None:
        """Zigzag varint (arbitrary-precision signed)."""
        self.u(v * 2 if v >= 0 else -v * 2 - 1)

    def sym(self, s: str) -> None:
        idx = self._syms.get(s)
        if idx is None:
            idx = self._syms[s] = len(self._syms)
        self.u(idx)

    def flag(self, b: bool) -> None:
        self.body.append(1 if b else 0)

    def bitset(self, bits: int) -> None:
        n = (bits.bit_length() + 7) // 8
        self.u(n)
        self.body += bits.to_bytes(n, "big")

    def f64(self, v: float) -> None:
        """IEEE-754 big-endian double — exact round-trip, 8 bytes."""
        self.body += _pack_f64(v)

    def term(self, t: Term) -> None:
        tt = type(t)
        if tt is Var:
            self.body.append(_T_VAR)
            self.sym(t.name)
        elif tt is Const:
            v = t.value
            tv = type(v)
            if tv is str:
                self.body.append(_T_CONST_STR)
                self.sym(v)
            elif tv is bool:
                self.body.append(_T_CONST_BOOL)
                self.body.append(1 if v else 0)
            elif tv is int:
                self.body.append(_T_CONST_INT)
                self.z(v)
            elif tv is float:
                self.body.append(_T_CONST_FLOAT)
                self.body += _pack_f64(v)
            else:  # pragma: no cover - Const accepts only str/int/float/bool
                raise WireError(f"unencodable constant {v!r}")
        elif tt is Struct:
            self.body.append(_T_STRUCT)
            self.sym(t.functor)
            self.u(len(t.args))
            for a in t.args:
                self.term(a)
        else:  # pragma: no cover - defensive
            raise WireError(f"unencodable term {t!r}")

    def terms(self, seq) -> None:
        self.u(len(seq))
        for t in seq:
            self.term(t)

    def clause(self, c: Clause) -> None:
        self.term(c.head)
        self.terms(c.body)

    def clauses(self, seq) -> None:
        self.u(len(seq))
        for c in seq:
            self.clause(c)

    def varset(self, vs: frozenset) -> None:
        # Sorted by name: frozenset iteration order depends on the process
        # hash seed, and byte counts must not.
        names = sorted(v.name for v in vs)
        self.u(len(names))
        for n in names:
            self.sym(n)

    def search_rule(self, sr: SearchRule) -> None:
        self.clause(sr.clause)
        self.z(sr.last_index)
        self.flag(sr.parent is not None)
        if sr.parent is not None:
            self.clause(sr.parent)

    def search_rules(self, seq) -> None:
        self.u(len(seq))
        for sr in seq:
            self.search_rule(sr)

    def bottom(self, b: BottomClause) -> None:
        self.term(b.seed)
        self.term(b.head)
        self.u(len(b.literals))
        for bl in b.literals:
            self.term(bl.literal)
            self.varset(bl.input_vars)
            self.varset(bl.output_vars)
        self.varset(b.head_vars)

    def finish(self, code: int) -> bytes:
        out = bytearray((_MAGIC, _VERSION, code))
        w = out.append
        n = len(self._syms)
        v = n
        while v > 0x7F:
            w((v & 0x7F) | 0x80)
            v >>= 7
        w(v)
        for s in self._syms:  # insertion order == index order
            raw = s.encode("utf-8")
            v = len(raw)
            while v > 0x7F:
                w((v & 0x7F) | 0x80)
                v >>= 7
            w(v)
            out += raw
        out += self.body
        return bytes(out)


class _Decoder:
    __slots__ = ("data", "pos", "syms")

    def __init__(self, data: bytes):
        self.data = data
        self.pos = 0

    def u(self) -> int:
        data = self.data
        pos = self.pos
        shift = 0
        out = 0
        while True:
            b = data[pos]
            pos += 1
            out |= (b & 0x7F) << shift
            if not b & 0x80:
                break
            shift += 7
        self.pos = pos
        return out

    def z(self) -> int:
        u = self.u()
        return u >> 1 if not u & 1 else -(u >> 1) - 1

    def flag(self) -> bool:
        b = self.data[self.pos]
        self.pos += 1
        return b != 0

    def bitset(self) -> int:
        n = self.u()
        out = int.from_bytes(self.data[self.pos : self.pos + n], "big")
        self.pos += n
        return out

    def f64(self) -> float:
        (v,) = _unpack_f64(self.data, self.pos)
        self.pos += 8
        return v

    def read_syms(self) -> None:
        n = self.u()
        syms = []
        for _ in range(n):
            ln = self.u()
            syms.append(self.data[self.pos : self.pos + ln].decode("utf-8"))
            self.pos += ln
        self.syms = syms

    def sym(self) -> str:
        return self.syms[self.u()]

    def term(self) -> Term:
        tag = self.data[self.pos]
        self.pos += 1
        if tag == _T_VAR:
            return Var(self.sym())
        if tag == _T_CONST_STR:
            return Const(self.sym())
        if tag == _T_CONST_INT:
            return Const(self.z())
        if tag == _T_CONST_FLOAT:
            (v,) = _unpack_f64(self.data, self.pos)
            self.pos += 8
            return Const(v)
        if tag == _T_CONST_BOOL:
            return Const(self.flag())
        if tag == _T_STRUCT:
            functor = self.sym()
            n = self.u()
            return Struct(functor, tuple(self.term() for _ in range(n)))
        raise WireError(f"bad term tag {tag:#x}")

    def terms(self) -> tuple:
        return tuple(self.term() for _ in range(self.u()))

    def clause(self) -> Clause:
        head = self.term()
        return Clause(head, self.terms())

    def clauses(self) -> tuple:
        return tuple(self.clause() for _ in range(self.u()))

    def varset(self) -> frozenset:
        return frozenset(Var(self.sym()) for _ in range(self.u()))

    def search_rule(self) -> SearchRule:
        clause = self.clause()
        last_index = self.z()
        parent = self.clause() if self.flag() else None
        return SearchRule(clause, last_index, parent=parent)

    def search_rules(self) -> tuple:
        return tuple(self.search_rule() for _ in range(self.u()))

    def bottom(self) -> BottomClause:
        seed = self.term()
        head = self.term()
        literals = [
            BottomLiteral(self.term(), self.varset(), self.varset())
            for _ in range(self.u())
        ]
        return BottomClause(seed=seed, head=head, literals=literals, head_vars=self.varset())


# -- per-message layouts ----------------------------------------------------------


def _enc_load_examples(e: _Encoder, m: LoadExamples) -> None:
    e.u(m.partition_id)


def _dec_load_examples(d: _Decoder) -> LoadExamples:
    return LoadExamples(partition_id=d.u())


def _enc_load_data(e: _Encoder, m: LoadData) -> None:
    e.terms(m.pos)
    e.terms(m.neg)
    e.terms(m.facts)
    e.clauses(m.rules)


def _dec_load_data(d: _Decoder) -> LoadData:
    return LoadData(pos=d.terms(), neg=d.terms(), facts=d.terms(), rules=d.clauses())


def _enc_start_pipeline(e: _Encoder, m: StartPipeline) -> None:
    e.flag(m.width is not None)
    if m.width is not None:
        e.u(m.width)


def _dec_start_pipeline(d: _Decoder) -> StartPipeline:
    return StartPipeline(width=d.u() if d.flag() else None)


def _enc_pipeline_task(e: _Encoder, m: PipelineTask) -> None:
    e.flag(m.bottom is not None)
    if m.bottom is not None:
        e.bottom(m.bottom)
    e.u(m.step)
    e.flag(m.width is not None)
    if m.width is not None:
        e.u(m.width)
    e.search_rules(m.rules)
    e.u(m.origin)


def _dec_pipeline_task(d: _Decoder) -> PipelineTask:
    bottom = d.bottom() if d.flag() else None
    step = d.u()
    width = d.u() if d.flag() else None
    rules = d.search_rules()
    return PipelineTask(bottom=bottom, step=step, width=width, rules=rules, origin=d.u())


def _enc_pipeline_rules(e: _Encoder, m: PipelineRules) -> None:
    e.u(m.origin)
    e.search_rules(m.rules)


def _dec_pipeline_rules(d: _Decoder) -> PipelineRules:
    return PipelineRules(origin=d.u(), rules=d.search_rules())


def _enc_evaluate_request(e: _Encoder, m: EvaluateRequest) -> None:
    e.clauses(m.rules)
    e.flag(m.candidates is not None)
    if m.candidates is not None:
        e.u(len(m.candidates))
        for c in m.candidates:
            e.flag(c is not None)
            if c is not None:
                e.bitset(c[0])
                e.bitset(c[1])


def _dec_evaluate_request(d: _Decoder) -> EvaluateRequest:
    rules = d.clauses()
    candidates = None
    if d.flag():
        candidates = tuple(
            (d.bitset(), d.bitset()) if d.flag() else None for _ in range(d.u())
        )
    return EvaluateRequest(rules=rules, candidates=candidates)


def _enc_evaluate_result(e: _Encoder, m: EvaluateResult) -> None:
    e.u(m.rank)
    e.u(len(m.stats))
    for rs in m.stats:
        e.u(rs.pos)
        e.u(rs.neg)
        e.bitset(rs.pos_cand)
        e.bitset(rs.neg_cand)


def _dec_evaluate_result(d: _Decoder) -> EvaluateResult:
    rank = d.u()
    stats = tuple(
        RuleStats(pos=d.u(), neg=d.u(), pos_cand=d.bitset(), neg_cand=d.bitset())
        for _ in range(d.u())
    )
    return EvaluateResult(rank=rank, stats=stats)


def _enc_sampled_evaluate_request(e: _Encoder, m: SampledEvaluateRequest) -> None:
    e.clauses(m.rules)


def _dec_sampled_evaluate_request(d: _Decoder) -> SampledEvaluateRequest:
    return SampledEvaluateRequest(rules=d.clauses())


def _enc_sampled_evaluate_result(e: _Encoder, m: SampledEvaluateResult) -> None:
    e.u(m.rank)
    e.u(len(m.stats))
    for ss in m.stats:
        e.u(ss.pos_hits)
        e.u(ss.pos_n)
        e.u(ss.pos_total)
        e.u(ss.neg_hits)
        e.u(ss.neg_n)
        e.u(ss.neg_total)


def _dec_sampled_evaluate_result(d: _Decoder) -> SampledEvaluateResult:
    from repro.ilp.sampling import SampledStats

    rank = d.u()
    stats = tuple(
        SampledStats(
            pos_hits=d.u(),
            pos_n=d.u(),
            pos_total=d.u(),
            neg_hits=d.u(),
            neg_n=d.u(),
            neg_total=d.u(),
        )
        for _ in range(d.u())
    )
    return SampledEvaluateResult(rank=rank, stats=stats)


def _enc_mark_covered(e: _Encoder, m: MarkCovered) -> None:
    e.clause(m.rule)


def _dec_mark_covered(d: _Decoder) -> MarkCovered:
    return MarkCovered(rule=d.clause())


def _enc_gather(e: _Encoder, m: GatherExamples) -> None:
    pass


def _dec_gather(d: _Decoder) -> GatherExamples:
    return GatherExamples()


def _enc_examples_report(e: _Encoder, m: ExamplesReport) -> None:
    e.u(m.rank)
    e.terms(m.pos)
    e.terms(m.neg)


def _dec_examples_report(d: _Decoder) -> ExamplesReport:
    return ExamplesReport(rank=d.u(), pos=d.terms(), neg=d.terms())


def _enc_repartition(e: _Encoder, m: Repartition) -> None:
    e.terms(m.pos)
    e.terms(m.neg)


def _dec_repartition(d: _Decoder) -> Repartition:
    return Repartition(pos=d.terms(), neg=d.terms())


def _enc_stop(e: _Encoder, m: Stop) -> None:
    pass


def _dec_stop(d: _Decoder) -> Stop:
    return Stop()


# -- fault-tolerance protocol layouts ---------------------------------------------


def _enc_ping(e: _Encoder, m: Ping) -> None:
    e.u(m.token)


def _dec_ping(d: _Decoder) -> Ping:
    return Ping(token=d.u())


def _enc_pong(e: _Encoder, m: Pong) -> None:
    e.u(m.rank)
    e.u(m.token)
    e.u(m.cache_hits)
    e.u(m.cache_misses)


def _dec_pong(d: _Decoder) -> Pong:
    return Pong(rank=d.u(), token=d.u(), cache_hits=d.u(), cache_misses=d.u())


def _enc_adopt_worker(e: _Encoder, m: AdoptWorker) -> None:
    e.u(m.virtual_rank)
    e.u(m.partition_id)
    e.u(m.epoch)
    e.u(len(m.completed))
    for epoch_rules in m.completed:
        e.clauses(epoch_rules)
    e.clauses(m.current)
    e.flag(m.draw_seeds)
    e.flag(m.draw_current)


def _dec_adopt_worker(d: _Decoder) -> AdoptWorker:
    virtual_rank = d.u()
    partition_id = d.u()
    epoch = d.u()
    completed = tuple(d.clauses() for _ in range(d.u()))
    current = d.clauses()
    return AdoptWorker(
        virtual_rank=virtual_rank,
        partition_id=partition_id,
        epoch=epoch,
        completed=completed,
        current=current,
        draw_seeds=d.flag(),
        draw_current=d.flag(),
    )


def _enc_restart_pipeline(e: _Encoder, m: RestartPipeline) -> None:
    e.u(m.origin)
    e.flag(m.width is not None)
    if m.width is not None:
        e.u(m.width)
    e.u(m.epoch)


def _dec_restart_pipeline(d: _Decoder) -> RestartPipeline:
    origin = d.u()
    width = d.u() if d.flag() else None
    return RestartPipeline(origin=origin, width=width, epoch=d.u())


def _enc_update_routing(e: _Encoder, m: UpdateRouting) -> None:
    e.u(len(m.routing))
    for virtual, host in m.routing:
        e.u(virtual)
        e.u(host)


def _dec_update_routing(d: _Decoder) -> UpdateRouting:
    return UpdateRouting(routing=tuple((d.u(), d.u()) for _ in range(d.u())))


def _enc_ft_evaluate_request(e: _Encoder, m: FTEvaluateRequest) -> None:
    e.u(m.round)
    e.clauses(m.rules)


def _dec_ft_evaluate_request(d: _Decoder) -> FTEvaluateRequest:
    return FTEvaluateRequest(round=d.u(), rules=d.clauses())


def _enc_ft_evaluate_result(e: _Encoder, m: FTEvaluateResult) -> None:
    e.u(m.round)
    e.u(m.rank)
    e.u(len(m.stats))
    for rs in m.stats:
        e.u(rs.pos)
        e.u(rs.neg)
        e.bitset(rs.pos_cand)
        e.bitset(rs.neg_cand)


def _dec_ft_evaluate_result(d: _Decoder) -> FTEvaluateResult:
    rnd = d.u()
    rank = d.u()
    stats = tuple(
        RuleStats(pos=d.u(), neg=d.u(), pos_cand=d.bitset(), neg_cand=d.bitset())
        for _ in range(d.u())
    )
    return FTEvaluateResult(round=rnd, rank=rank, stats=stats)


def _enc_ft_pipeline_task(e: _Encoder, m: FTPipelineTask) -> None:
    e.u(m.epoch)
    e.flag(m.bottom is not None)
    if m.bottom is not None:
        e.bottom(m.bottom)
    e.u(m.step)
    e.flag(m.width is not None)
    if m.width is not None:
        e.u(m.width)
    e.search_rules(m.rules)
    e.u(m.origin)


def _dec_ft_pipeline_task(d: _Decoder) -> FTPipelineTask:
    epoch = d.u()
    bottom = d.bottom() if d.flag() else None
    step = d.u()
    width = d.u() if d.flag() else None
    rules = d.search_rules()
    return FTPipelineTask(
        epoch=epoch, bottom=bottom, step=step, width=width, rules=rules, origin=d.u()
    )


def _enc_ft_pipeline_rules(e: _Encoder, m: FTPipelineRules) -> None:
    e.u(m.epoch)
    e.u(m.origin)
    e.search_rules(m.rules)


def _dec_ft_pipeline_rules(d: _Decoder) -> FTPipelineRules:
    return FTPipelineRules(epoch=d.u(), origin=d.u(), rules=d.search_rules())


#: type -> (code, encoder); code -> decoder.  Codes are part of the wire
#: format — append only, never renumber.
_ENCODERS: dict = {
    LoadExamples: (0, _enc_load_examples),
    LoadData: (1, _enc_load_data),
    StartPipeline: (2, _enc_start_pipeline),
    PipelineTask: (3, _enc_pipeline_task),
    PipelineRules: (4, _enc_pipeline_rules),
    EvaluateRequest: (5, _enc_evaluate_request),
    EvaluateResult: (6, _enc_evaluate_result),
    MarkCovered: (7, _enc_mark_covered),
    GatherExamples: (8, _enc_gather),
    ExamplesReport: (9, _enc_examples_report),
    Repartition: (10, _enc_repartition),
    Stop: (11, _enc_stop),
    Ping: (12, _enc_ping),
    Pong: (13, _enc_pong),
    AdoptWorker: (14, _enc_adopt_worker),
    RestartPipeline: (15, _enc_restart_pipeline),
    UpdateRouting: (16, _enc_update_routing),
    FTEvaluateRequest: (17, _enc_ft_evaluate_request),
    FTEvaluateResult: (18, _enc_ft_evaluate_result),
    FTPipelineTask: (19, _enc_ft_pipeline_task),
    FTPipelineRules: (20, _enc_ft_pipeline_rules),
    # 21-29 reserved (out-of-package; see register_codec).
    SampledEvaluateRequest: (30, _enc_sampled_evaluate_request),
    SampledEvaluateResult: (31, _enc_sampled_evaluate_result),
}
_DECODERS: dict = {
    0: _dec_load_examples,
    1: _dec_load_data,
    2: _dec_start_pipeline,
    3: _dec_pipeline_task,
    4: _dec_pipeline_rules,
    5: _dec_evaluate_request,
    6: _dec_evaluate_result,
    7: _dec_mark_covered,
    8: _dec_gather,
    9: _dec_examples_report,
    10: _dec_repartition,
    11: _dec_stop,
    12: _dec_ping,
    13: _dec_pong,
    14: _dec_adopt_worker,
    15: _dec_restart_pipeline,
    16: _dec_update_routing,
    17: _dec_ft_evaluate_request,
    18: _dec_ft_evaluate_result,
    19: _dec_ft_pipeline_task,
    20: _dec_ft_pipeline_rules,
    30: _dec_sampled_evaluate_request,
    31: _dec_sampled_evaluate_result,
}


def register_codec(payload_type: type, code: int, enc, dec) -> None:
    """Register an out-of-package payload codec (append-only codes).

    Lets higher layers ship their payloads in the wire format without
    creating an import cycle back into this module's registry.  Codes
    0-20 and 30+ are the in-package messages above; currently reserved
    by out-of-package formats (never reuse or renumber):

    * 21 — :class:`repro.fault.checkpoint.CheckpointState` (``.ckpt`` files)
    * 22 — :class:`repro.service.registry.RegistryRecord` (``.theory`` files)
    * 23 — :class:`repro.service.jobs.JobRecord` (scheduler ``job.rec`` files)
    * 24 — :class:`repro.service.wiremsg.WireJson` (service wire transport)
    * 25 — :class:`repro.service.wiremsg.WireQuery`
    * 26 — :class:`repro.service.wiremsg.WireShard`
    * 27 — :class:`repro.service.wiremsg.WireQueryEnd`
    * 28 — :class:`repro.obs.span.SpanBatch` (per-rank telemetry spans)
    * 29 — :class:`repro.ilp.sampling.CoverageCertificate` (``.cert`` files)
    """
    if code in _DECODERS or payload_type in _ENCODERS:
        prev = _ENCODERS.get(payload_type)
        if prev is not None and prev[0] == code:
            return  # idempotent re-registration
        raise ValueError(f"wire code {code} / type {payload_type.__name__} already taken")
    _ENCODERS[payload_type] = (code, enc)
    _DECODERS[code] = dec


def encode(payload: object) -> Optional[bytes]:
    """Encode a task payload, or None (codec disabled / unknown type).

    A ``None`` return tells the caller to fall back to pickle — the
    accounting and transport layers treat the codec as an optimisation,
    never a requirement.
    """
    if not enabled():
        return None
    return encode_always(payload)


def encode_always(payload: object) -> Optional[bytes]:
    """Encode regardless of the :func:`enabled` gate (None if unknown).

    The checkpoint file format uses this: a checkpoint must be readable
    by any process whatever its transport-codec setting, so files are
    always written in the wire encoding.
    """
    entry = _ENCODERS.get(type(payload))
    if entry is None:
        return None
    code, enc = entry
    e = _Encoder()
    enc(e, payload)
    return e.finish(code)


def decode(data: bytes) -> object:
    """Decode wire bytes back into the original payload object.

    Always available (independent of :func:`enabled`): a receiver must be
    able to decode whatever a sender produced.
    """
    if len(data) < 3 or data[0] != _MAGIC:
        raise WireError("not a wire-codec message")
    if data[1] != _VERSION:
        raise WireError(f"unsupported wire version {data[1]}")
    dec = _DECODERS.get(data[2])
    if dec is None:
        raise WireError(f"unknown message type code {data[2]}")
    d = _Decoder(data)
    d.pos = 3
    try:
        d.read_syms()
        out = dec(d)
    except WireError:
        raise
    except Exception as exc:
        # A truncated or bit-flipped body crashes the primitive readers
        # (IndexError past the buffer, struct.error on a short f64,
        # UnicodeDecodeError in a symbol...).  Receivers are promised a
        # WireError for any malformed payload — fold them all into it.
        raise WireError(f"truncated or corrupt message body: {exc!r}") from exc
    if d.pos != len(data):
        raise WireError(f"trailing bytes after message ({len(data) - d.pos})")
    return out

"""A small Prolog-ish reader.

Supports the subset of ISO Prolog syntax that ILP datasets and mode
declarations need:

* atoms (``ethyl``, quoted ``'di ethyl'``), variables (``X``, ``_``),
  integers and floats (including negatives);
* compound terms ``f(a, B, g(c))``;
* lists ``[a, b, c]`` and ``[H|T]`` (desugared to ``'.'/2`` and ``[]``);
* infix operators: ``:-``, ``,``, comparison (``=``, ``\\=``, ``<``, ``>``,
  ``=<``, ``>=``, ``==``, ``\\==``, ``is``) and arithmetic
  (``+ - * / mod min max``);
* prefix mode placemarkers ``+type``, ``-type``, ``#type`` (used inside
  ``modeh``/``modeb`` declarations);
* ``%`` line comments and ``/* ... */`` block comments;
* clauses terminated by ``.``.

The grammar is intentionally small; anything outside it raises
:class:`ParseError` with a line/column position.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterator, Optional

from repro.logic.clause import Clause
from repro.logic.terms import Const, Struct, Term, Var

__all__ = ["ParseError", "parse_term", "parse_clause", "parse_program", "term_to_str"]


class ParseError(ValueError):
    """Raised on malformed input, with position information."""


# --- tokenizer -----------------------------------------------------------------

_PUNCT_TOKENS = [
    ":-", "?-", "=..", "\\==", "\\=", "\\+", "==", "=<", ">=", "=",
    "<", ">", "+", "-", "*", "/", "(", ")", "[", "]", "|", ",", ".", "#", "!",
]
_PUNCT_ALT = "|".join(re.escape(t) for t in sorted(_PUNCT_TOKENS, key=len, reverse=True))

_TOKEN_RE = re.compile(
    r"(?P<ws>\s+)"
    r"|(?P<line_comment>%[^\n]*)"
    r"|(?P<block_comment>/\*.*?\*/)"
    r"|(?P<float>\d+\.\d+(?:[eE][+-]?\d+)?)"
    r"|(?P<int>\d+)"
    r"|(?P<qatom>'(?:[^'\\]|\\.)*')"
    r"|(?P<name>[a-z][A-Za-z0-9_]*)"
    r"|(?P<var>[A-Z_][A-Za-z0-9_]*)"
    r"|(?P<punct>" + _PUNCT_ALT + ")",
    re.DOTALL,
)


@dataclass
class _Tok:
    kind: str
    text: str
    pos: int


def _tokenize(src: str) -> list[_Tok]:
    toks: list[_Tok] = []
    i = 0
    n = len(src)
    while i < n:
        m = _TOKEN_RE.match(src, i)
        if not m:
            line = src.count("\n", 0, i) + 1
            raise ParseError(f"unexpected character {src[i]!r} at line {line}")
        i = m.end()
        kind = m.lastgroup
        if kind in ("ws", "line_comment", "block_comment"):
            continue
        toks.append(_Tok(kind, m.group(), m.start()))
    toks.append(_Tok("eof", "", n))
    return toks


# --- operator table -------------------------------------------------------------
# (priority, type); xfx = non-assoc infix, xfy = right-assoc, yfx = left-assoc.
_INFIX = {
    ":-": (1200, "xfx"),
    ",": (1000, "xfy"),
    "is": (700, "xfx"),
    "=": (700, "xfx"),
    "\\=": (700, "xfx"),
    "==": (700, "xfx"),
    "\\==": (700, "xfx"),
    "<": (700, "xfx"),
    ">": (700, "xfx"),
    "=<": (700, "xfx"),
    ">=": (700, "xfx"),
    "+": (500, "yfx"),
    "-": (500, "yfx"),
    "*": (400, "yfx"),
    "/": (400, "yfx"),
    "mod": (400, "yfx"),
}
# Mode placemarkers and arithmetic negation.
_PREFIX = {
    "+": 200,
    "-": 200,
    "#": 200,
    "\\+": 900,  # negation-as-failure
}

_NIL = Const("[]")


class _Parser:
    def __init__(self, src: str):
        self.src = src
        self.toks = _tokenize(src)
        self.i = 0

    # -- token helpers ---------------------------------------------------------
    def peek(self) -> _Tok:
        return self.toks[self.i]

    def next(self) -> _Tok:
        t = self.toks[self.i]
        self.i += 1
        return t

    def expect(self, text: str) -> _Tok:
        t = self.next()
        if t.text != text:
            self.err(f"expected {text!r}, got {t.text!r}", t)
        return t

    def err(self, msg: str, tok: Optional[_Tok] = None):
        tok = tok or self.peek()
        line = self.src.count("\n", 0, tok.pos) + 1
        raise ParseError(f"{msg} at line {line}")

    # -- grammar -----------------------------------------------------------------
    def parse_term(self, max_prec: int = 1200) -> Term:
        left = self.parse_primary(max_prec)
        while True:
            t = self.peek()
            op = t.text
            if t.kind in ("punct", "name") and op in _INFIX:
                prec, typ = _INFIX[op]
                if prec > max_prec:
                    break
                # ',' only acts as an operator when allowed (inside clause
                # bodies); argument lists cap max_prec at 999.
                self.next()
                right_max = prec if typ == "xfy" else prec - 1
                right = self.parse_term(right_max)
                left = Struct(op, (left, right))
            else:
                break
        return left

    def parse_primary(self, max_prec: int) -> Term:
        t = self.next()
        if t.kind == "int":
            return Const(int(t.text))
        if t.kind == "float":
            return Const(float(t.text))
        if t.kind == "var":
            if t.text == "_":
                from repro.logic.terms import fresh_var

                return fresh_var("_A")
            return Var(t.text)
        if t.kind == "qatom":
            name = t.text[1:-1].replace("\\'", "'").replace("\\\\", "\\")
            return self.maybe_args(name)
        if t.kind == "name":
            if t.text in _PREFIX and self.peek().text == "(":
                # e.g. treat like an ordinary functor when applied: mod(X,Y)
                return self.maybe_args(t.text)
            return self.maybe_args(t.text)
        if t.kind == "punct":
            if t.text == "(":
                inner = self.parse_term(1200)
                self.expect(")")
                return inner
            if t.text == "[":
                return self.parse_list()
            if t.text in ("+", "-", "#", "\\+"):
                prec = _PREFIX[t.text]
                if prec > max_prec:
                    self.err(f"prefix operator {t.text!r} not allowed here", t)
                # numeric negation folds into the constant
                if t.text == "-":
                    nxt = self.peek()
                    if nxt.kind in ("int", "float"):
                        self.next()
                        v = -int(nxt.text) if nxt.kind == "int" else -float(nxt.text)
                        return Const(v)
                arg = self.parse_term(prec)
                return Struct(t.text, (arg,))
            if t.text == "!":
                return Const("!")
            if t.text == "*":
                # '*' in primary position is the atom '*' (recall wildcard
                # in mode declarations: modeb(*, ...)).
                return Const("*")
        self.err(f"unexpected token {t.text!r}", t)
        raise AssertionError  # unreachable

    def maybe_args(self, name: str) -> Term:
        if self.peek().text == "(":
            self.next()
            args = [self.parse_term(999)]
            while self.peek().text == ",":
                self.next()
                args.append(self.parse_term(999))
            self.expect(")")
            return Struct(name, tuple(args))
        return Const(name)

    def parse_list(self) -> Term:
        if self.peek().text == "]":
            self.next()
            return _NIL
        items = [self.parse_term(999)]
        while self.peek().text == ",":
            self.next()
            items.append(self.parse_term(999))
        tail: Term = _NIL
        if self.peek().text == "|":
            self.next()
            tail = self.parse_term(999)
        self.expect("]")
        for item in reversed(items):
            tail = Struct(".", (item, tail))
        return tail

    def parse_clause(self) -> Clause:
        term = self.parse_term(1200)
        self.expect(".")
        return term_to_clause(term)

    def parse_program(self) -> list[Clause]:
        out = []
        while self.peek().kind != "eof":
            out.append(self.parse_clause())
        return out

    def at_eof(self) -> bool:
        return self.peek().kind == "eof"


def term_to_clause(term: Term) -> Clause:
    """Interpret a parsed term as a clause (splitting on ``:-`` and ``,``)."""
    if isinstance(term, Struct) and term.functor == ":-" and term.arity == 2:
        head, body = term.args
        return Clause(head, _flatten_conj(body))
    return Clause(term, ())


def _flatten_conj(term: Term) -> tuple[Term, ...]:
    if isinstance(term, Struct) and term.functor == "," and term.arity == 2:
        return _flatten_conj(term.args[0]) + _flatten_conj(term.args[1])
    return (term,)


def parse_term(src: str) -> Term:
    """Parse a single term. ``parse_term("p(X, a)")``"""
    p = _Parser(src)
    t = p.parse_term(1200)
    if not p.at_eof():
        p.err("trailing input after term")
    return t


def parse_clause(src: str) -> Clause:
    """Parse one clause, e.g. ``parse_clause("p(X) :- q(X), r(X).")``."""
    p = _Parser(src)
    c = p.parse_clause()
    if not p.at_eof():
        p.err("trailing input after clause")
    return c


def parse_program(src: str) -> list[Clause]:
    """Parse a whole program (facts and rules)."""
    return _Parser(src).parse_program()


def term_to_str(term: Term) -> str:
    """Render a term back to (approximately) the surface syntax."""
    if isinstance(term, Struct):
        if term.functor == "." and term.arity == 2:
            items, tail = [], term
            while isinstance(tail, Struct) and tail.functor == "." and tail.arity == 2:
                items.append(term_to_str(tail.args[0]))
                tail = tail.args[1]
            if tail == _NIL:
                return "[" + ", ".join(items) + "]"
            return "[" + ", ".join(items) + "|" + term_to_str(tail) + "]"
        if term.functor in _INFIX and term.arity == 2:
            a, b = term.args
            return f"{term_to_str(a)} {term.functor} {term_to_str(b)}"
        if term.functor in _PREFIX and term.arity == 1:
            return f"{term.functor}{term_to_str(term.args[0])}"
        return f"{term.functor}({', '.join(term_to_str(a) for a in term.args)})"
    return str(term)

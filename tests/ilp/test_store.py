"""Unit tests for ExampleStore liveness and caching."""

import pytest

from repro.ilp.store import ExampleStore
from repro.logic.engine import Engine
from repro.logic.knowledge import KnowledgeBase
from repro.logic.parser import parse_clause, parse_term


@pytest.fixture
def setup():
    kb = KnowledgeBase()
    kb.add_program("q(a). q(b). q(c).")
    eng = Engine(kb)
    pos = [parse_term(f"p({x})") for x in "abc"]
    neg = [parse_term(f"p({x})") for x in "yz"]
    return eng, ExampleStore(pos, neg)


class TestLiveness:
    def test_initial_all_alive(self, setup):
        _, store = setup
        assert store.remaining == 3
        assert store.alive == 0b111

    def test_kill_returns_newly_covered(self, setup):
        _, store = setup
        assert store.kill(0b011) == 2
        assert store.kill(0b011) == 0  # already dead
        assert store.remaining == 1

    def test_alive_examples(self, setup):
        _, store = setup
        store.kill(0b010)
        assert [str(e) for e in store.alive_examples()] == ["p(a)", "p(c)"]
        assert store.alive_indices() == [0, 2]


class TestEvaluate:
    def test_counts(self, setup):
        eng, store = setup
        st = store.evaluate(eng, parse_clause("p(X) :- q(X)."))
        assert (st.pos, st.neg) == (3, 0)

    def test_alive_mask_applied(self, setup):
        eng, store = setup
        rule = parse_clause("p(X) :- q(X).")
        store.evaluate(eng, rule)
        store.kill(0b001)
        st = store.evaluate(eng, rule)
        assert st.pos == 2
        assert st.pos_bits == 0b110

    def test_cache_hit_costs_nothing(self, setup):
        eng, store = setup
        rule = parse_clause("p(X) :- q(X).")
        store.evaluate(eng, rule)
        ops = eng.total_ops
        store.evaluate(eng, rule)
        assert eng.total_ops == ops
        assert store.cache_size() == 1

    def test_cache_survives_kill(self, setup):
        eng, store = setup
        rule = parse_clause("p(X) :- q(X).")
        st1 = store.evaluate(eng, rule)
        store.kill(0b100)
        ops = eng.total_ops
        st2 = store.evaluate(eng, rule)
        assert eng.total_ops == ops  # cached
        assert st2.pos == st1.pos - 1

    def test_clear_cache(self, setup):
        eng, store = setup
        store.evaluate(eng, parse_clause("p(X) :- q(X)."))
        store.clear_cache()
        assert store.cache_size() == 0

    def test_neg_never_masked(self, setup):
        eng, store = setup
        # negatives stay: a rule covering negs keeps covering them after kill
        rule = parse_clause("p(X).")  # covers everything
        store.kill(0b111)
        st = store.evaluate(eng, rule)
        assert st.pos == 0
        assert st.neg == 2

"""Tests for counters/gauges/histograms, the registry, and Prometheus text."""

import threading

import pytest

from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    percentile,
)


class TestPercentile:
    def test_interpolation(self):
        assert percentile([10.0, 20.0, 30.0, 40.0], 50) == pytest.approx(25.0)
        assert percentile([1.0, 2.0], 0) == 1.0
        assert percentile([1.0, 2.0], 100) == 2.0

    def test_single_and_empty(self):
        assert percentile([3.5], 99) == 3.5
        with pytest.raises(ValueError, match="no samples"):
            percentile([], 50)

    def test_matches_loadgen_percentile(self):
        # loadgen re-exports this function; the two must be one object so
        # serve/loadgen/chaos can never disagree about percentile math.
        from repro.experiments.loadgen import percentile as lg_percentile

        assert lg_percentile is percentile


class TestCounter:
    def test_inc(self):
        c = Counter()
        c.inc()
        c.inc(4)
        assert c.value == 5
        assert c.snapshot() == 5

    def test_thread_safety(self):
        c = Counter()
        threads = [
            threading.Thread(target=lambda: [c.inc() for _ in range(1000)])
            for _ in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == 4000


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge()
        g.set(7.0)
        g.inc(2)
        g.dec()
        assert g.value == 8.0


class TestHistogram:
    def test_basic_accounting(self):
        h = Histogram(buckets=(1.0, 2.0, 4.0))
        h.observe_many([0.5, 1.5, 3.0, 10.0])
        assert h.count == 4
        assert h.sum == pytest.approx(15.0)
        assert h.max == 10.0
        assert h.mean == pytest.approx(3.75)

    def test_cumulative_buckets(self):
        h = Histogram(buckets=(1.0, 2.0))
        h.observe_many([0.5, 1.5, 5.0])
        assert h.cumulative_buckets() == [(1.0, 1), (2.0, 2), (float("inf"), 3)]

    def test_boundary_is_inclusive(self):
        h = Histogram(buckets=(1.0,))
        h.observe(1.0)
        assert h.cumulative_buckets()[0] == (1.0, 1)

    def test_rejects_unsorted_buckets(self):
        with pytest.raises(ValueError, match="ascending"):
            Histogram(buckets=(2.0, 1.0))

    def test_exact_percentile_with_samples(self):
        h = Histogram(track_samples=True)
        h.observe_many([10.0, 20.0, 30.0, 40.0])
        assert h.percentile(50) == pytest.approx(25.0)
        assert h.samples() == [10.0, 20.0, 30.0, 40.0]

    def test_bucket_percentile_without_samples(self):
        h = Histogram(buckets=(1.0, 2.0, 4.0))
        h.observe_many([0.5] * 50 + [1.5] * 50)
        # Median sits at the edge between the two occupied buckets.
        assert 0.5 <= h.percentile(50) <= 2.0
        assert h.samples() == []

    def test_percentile_empty_raises(self):
        with pytest.raises(ValueError):
            Histogram().percentile(50)

    def test_snapshot_shape(self):
        h = Histogram(buckets=(1.0,))
        h.observe(0.5)
        snap = h.snapshot()
        assert snap["count"] == 1
        assert snap["buckets"] == {"1.0": 1, "+Inf": 1}


class TestRegistry:
    def test_create_or_get_identity(self):
        r = MetricsRegistry()
        a = r.counter("repro_requests_total", op="ping")
        b = r.counter("repro_requests_total", op="ping")
        assert a is b
        assert r.counter("repro_requests_total", op="query") is not a

    def test_kind_pinned_per_name(self):
        r = MetricsRegistry()
        r.counter("x_total")
        with pytest.raises(ValueError, match="already registered"):
            r.gauge("x_total")

    def test_snapshot_nests_labels(self):
        r = MetricsRegistry()
        r.counter("reqs", op="ping").inc(3)
        r.gauge("depth").set(2.0)
        snap = r.snapshot()
        assert snap["reqs"] == {"op=ping": 3}
        assert snap["depth"] == 2.0

    def test_isolated_instances(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("n").inc()
        assert "n" not in b.snapshot()


class TestPrometheusRendering:
    def test_counter_and_gauge_lines(self):
        r = MetricsRegistry()
        r.counter("repro_requests_total", help="Requests served.", op="query").inc(2)
        r.gauge("repro_draining").set(1)
        text = r.render_prometheus()
        assert "# HELP repro_requests_total Requests served." in text
        assert "# TYPE repro_requests_total counter" in text
        assert 'repro_requests_total{op="query"} 2' in text
        assert "repro_draining 1" in text
        assert text.endswith("\n")

    def test_histogram_exposition(self):
        r = MetricsRegistry()
        h = r.histogram("lat_seconds", buckets=(0.1, 1.0))
        h.observe_many([0.05, 0.5, 5.0])
        text = r.render_prometheus()
        assert 'lat_seconds_bucket{le="0.1"} 1' in text
        assert 'lat_seconds_bucket{le="1"} 2' in text
        assert 'lat_seconds_bucket{le="+Inf"} 3' in text
        assert "lat_seconds_count 3" in text
        assert "lat_seconds_sum 5.55" in text

    def test_label_escaping(self):
        r = MetricsRegistry()
        r.counter("errs", code='bad"quote').inc()
        assert 'code="bad\\"quote"' in r.render_prometheus()

    def test_default_buckets_ascending(self):
        assert list(DEFAULT_LATENCY_BUCKETS) == sorted(DEFAULT_LATENCY_BUCKETS)

"""Example store: a (sub)set of training examples with liveness tracking.

Both the sequential algorithm and each parallel worker hold their examples
in an :class:`ExampleStore`.  Positive examples are never physically
removed; instead an ``alive`` bitmask tracks which are still uncovered.
Because coverage bitsets are computed over the *full* positive list, cached
rule evaluations stay valid across ``mark_covered`` steps — only the mask
changes.  (Negative examples are never removed.)

**Coverage inheritance.**  A refinement can only cover a subset of its
parent rule's coverage, so when the parent's bitsets are cached, only the
examples the parent covered (plus those whose parent query merely ran out
of budget) are re-tested.  As search descends the lattice the per-node work
shrinks with the parent's coverage — the deeper the rule, the cheaper its
evaluation.  The same narrowing accepts externally supplied candidate
masks (the parallel masters ship them alongside rule bags).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.ilp.coverage import CoverageStats, coverage_eval, popcount
from repro.ilp.reorder import optimize_clause_order
from repro.logic.clause import Clause
from repro.logic.engine import Engine
from repro.logic.terms import Struct, Term

__all__ = ["ExampleStore"]


class ExampleStore:
    """Positive/negative examples plus a coverage-evaluation cache.

    ``reorder_body=True`` evaluates a selectivity-reordered variant of
    each rule (see :mod:`repro.ilp.reorder`) while caching under the
    original clause — a pure engine-cost optimisation.
    """

    def __init__(
        self,
        pos: Sequence[Term],
        neg: Sequence[Term],
        reorder_body: bool = False,
        inherit: bool = True,
        fingerprints: bool = True,
    ):
        self.pos: list[Term] = list(pos)
        self.neg: list[Term] = list(neg)
        self.reorder_body = reorder_body
        #: enable coverage inheritance *and* alive-restricted evaluation;
        #: False reproduces the seed behaviour exactly (full-list scans).
        self.inherit = inherit
        #: key the evaluation cache by the order-preserving variant key:
        #: renamed-apart copies of a rule (same literals, same order) are
        #: charge-for-charge identical to evaluate, so a variant of an
        #: evaluated rule is a cache hit instead of a full engine run.
        #: (The order-*insensitive* fingerprint is deliberately not used:
        #: body order changes budget-exhaustion behaviour.)
        self.fingerprints = fingerprints
        #: bitmask over ``self.pos``: bit i set ⇔ example i still uncovered.
        self.alive: int = (1 << len(self.pos)) - 1
        # clause -> (pos_bits, neg_bits, pos_exhausted, neg_exhausted,
        # pos_scope).  ``pos_scope`` records which positives were in the
        # evaluation's scope (alive at the time): bits are exact inside it,
        # unknown outside.  Since liveness normally only shrinks, cached
        # entries stay valid; if liveness is ever restored (the independent
        # baseline does), evaluation tops the entry up over the difference.
        self._cache: dict[Clause, tuple[int, int, int, int, int]] = {}
        # Sampled-evaluation cache, same layout as ``_cache`` but with
        # bitsets computed only over the sampler's masks.  Kept separate:
        # sampled entries are *not* exact over the alive set and must
        # never answer (or narrow) an exact evaluation.
        self._sample_cache: dict[Clause, tuple[int, int, int, int, int]] = {}
        # clause -> its reordered evaluation form (survives clear_cache:
        # the reordering depends only on the KB, not on coverage state).
        self._reorder_cache: dict[Clause, Clause] = {}
        self._hits = 0
        self._misses = 0
        self._inherited = 0

    # -- liveness ---------------------------------------------------------------
    @property
    def n_pos(self) -> int:
        return len(self.pos)

    @property
    def n_neg(self) -> int:
        return len(self.neg)

    @property
    def remaining(self) -> int:
        """Number of still-uncovered positive examples."""
        return popcount(self.alive)

    def alive_examples(self) -> list[Term]:
        return [e for i, e in enumerate(self.pos) if self.alive >> i & 1]

    def alive_indices(self) -> list[int]:
        return [i for i in range(len(self.pos)) if self.alive >> i & 1]

    def kill(self, pos_bits: int) -> int:
        """Remove covered positives; returns how many were newly covered."""
        newly = popcount(self.alive & pos_bits)
        self.alive &= ~pos_bits
        return newly

    # -- evaluation ---------------------------------------------------------------
    def evaluate(
        self,
        engine: Engine,
        rule: Clause,
        parent: Optional[Clause] = None,
        candidates: Optional[tuple[int, int]] = None,
    ) -> CoverageStats:
        """Evaluate ``rule`` on this store (alive positives, all negatives).

        Results are cached per clause; the cache survives ``kill`` because
        bitsets are over the full example lists.

        ``parent`` names the rule this one refines: if the parent's bitsets
        are cached, only examples it covered (or whose query exhausted its
        budget) are tested.  ``candidates`` is an externally supplied
        ``(pos_mask, neg_mask)`` bound with the same meaning — both sources
        are intersected when present.
        """
        key = rule.variant_key() if self.fingerprints else rule
        cached = self._cache.get(key)
        if cached is not None:
            self._hits += 1
            pb, nb, pe, ne, scope = cached
            missing = self.alive & ~scope
            if missing:
                # Liveness was restored after this entry was computed: top
                # it up over the never-tested examples so it is exact again
                # on the current alive set.
                to_eval = self._reordered(engine.kb, rule)
                pb2, pe2 = coverage_eval(engine, to_eval, self.pos, missing)
                pb |= pb2
                pe |= pe2
                scope |= missing
                self._cache[key] = (pb, nb, pe, ne, scope)
        else:
            self._misses += 1
            to_eval = self._reordered(engine.kb, rule)
            if self.inherit:
                cand_p: Optional[int] = self.alive
                scope = self.alive
                if parent is None and rule.body:
                    # Refinement only ever appends a literal, so the
                    # lattice parent is always derivable — rules that
                    # arrive without lineage (master rule bags, pipeline
                    # seeds) still narrow against a cached parent.
                    parent = Clause(rule.head, rule.body[:-1])
            else:
                cand_p = None
                scope = (1 << len(self.pos)) - 1
            cand_n: Optional[int] = None
            if (
                self.inherit
                and (parent is not None or candidates is not None)
                and self._inherit_ok(engine.kb, rule)
            ):
                narrowed = False
                if candidates is not None:
                    cp, cn = candidates
                    cand_p &= cp
                    cand_n = cn
                    narrowed = True
                if parent is not None:
                    pc = self._cache.get(
                        parent.variant_key() if self.fingerprints else parent
                    )
                    if pc is not None:
                        ppb, pnb, ppe, pne, pscope = pc
                        # Outside the parent's evaluation scope its verdict
                        # is unknown (liveness may have been restored since)
                        # — those examples must stay candidates.
                        cand_p &= ppb | ppe | ~pscope
                        nm = pnb | pne
                        cand_n = nm if cand_n is None else cand_n & nm
                        narrowed = True
                if narrowed:
                    self._inherited += 1
            pb, pe = coverage_eval(engine, to_eval, self.pos, cand_p)
            nb, ne = coverage_eval(engine, to_eval, self.neg, cand_n)
            self._cache[key] = (pb, nb, pe, ne, scope)
        live = pb & self.alive
        return CoverageStats(pos=popcount(live), neg=popcount(nb), pos_bits=live, neg_bits=nb)

    def evaluate_sampled(self, engine: Engine, rule: Clause, sampler, parent: Optional[Clause] = None):
        """Evaluate ``rule`` on the sampler's stratified sample only.

        Returns :class:`repro.ilp.sampling.SampledStats` — hit counts over
        the alive-positive sample and the (static) negative sample, plus
        the stratum totals the bounds scale against.  The engine runs only
        on sampled examples, so the cost is proportional to the sample
        size; coverage inheritance narrows against the *sample* cache
        (sampled parent verdicts are exact on the examples they tested,
        which is all narrowing needs).
        """
        from repro.ilp.sampling import SampledStats

        pos_sample = sampler.pos_mask
        neg_sample = sampler.neg_mask
        key = rule.variant_key() if self.fingerprints else rule
        cached = self._sample_cache.get(key)
        if cached is not None:
            self._hits += 1
            pb, nb, pe, ne, scope = cached
            missing = self.alive & pos_sample & ~scope
            if missing:
                to_eval = self._reordered(engine.kb, rule)
                pb2, pe2 = coverage_eval(engine, to_eval, self.pos, missing)
                pb |= pb2
                pe |= pe2
                scope |= missing
                self._sample_cache[key] = (pb, nb, pe, ne, scope)
        else:
            self._misses += 1
            to_eval = self._reordered(engine.kb, rule)
            if self.inherit:
                cand_p: Optional[int] = self.alive & pos_sample
                scope = self.alive & pos_sample
                if parent is None and rule.body:
                    parent = Clause(rule.head, rule.body[:-1])
            else:
                cand_p = pos_sample
                scope = pos_sample
            cand_n: Optional[int] = neg_sample
            if self.inherit and parent is not None and self._inherit_ok(engine.kb, rule):
                pc = self._sample_cache.get(
                    parent.variant_key() if self.fingerprints else parent
                )
                if pc is not None:
                    ppb, pnb, ppe, pne, pscope = pc
                    cand_p &= ppb | ppe | ~pscope
                    cand_n &= pnb | pne | ~neg_sample
                    self._inherited += 1
            pb, pe = coverage_eval(engine, to_eval, self.pos, cand_p)
            nb, ne = coverage_eval(engine, to_eval, self.neg, cand_n)
            self._sample_cache[key] = (pb, nb, pe, ne, scope)
        live_sample = self.alive & pos_sample
        return SampledStats(
            pos_hits=popcount(pb & live_sample),
            pos_n=popcount(live_sample),
            pos_total=self.remaining,
            neg_hits=popcount(nb & neg_sample),
            neg_n=sampler.neg_n,
            neg_total=self.n_neg,
        )

    def cand_masks(self, rule: Clause) -> Optional[tuple[int, int]]:
        """The sound refinement candidate masks of a cached rule:
        ``(pos covered|exhausted, neg covered|exhausted)``, or None if the
        rule was never evaluated here."""
        cached = self._cache.get(rule.variant_key() if self.fingerprints else rule)
        if cached is None:
            return None
        pb, nb, pe, ne, _scope = cached
        return (pb | pe, nb | ne)

    def _reordered(self, kb, rule: Clause) -> Clause:
        """The evaluation form of ``rule`` (memoized body reordering)."""
        if not (self.reorder_body and rule.body):
            return rule
        out = self._reorder_cache.get(rule)
        if out is None:
            out = optimize_clause_order(kb, rule)
            self._reorder_cache[rule] = out
        return out

    def _inherit_ok(self, kb, rule: Clause) -> bool:
        """Is candidate narrowing sound for ``rule``?

        Appended-literal refinement is coverage-monotone as long as the
        evaluated body order embeds the parent's derivation.  Body
        reordering may permute rule-defined (depth-consuming) literals
        ahead of each other, which can *loosen* the depth profile relative
        to the parent — so with ``reorder_body`` inheritance is only used
        when every body literal is depth-free (fact-only or builtin).
        """
        if not self.reorder_body:
            return True
        for lit in rule.body:
            ind = lit.indicator if isinstance(lit, Struct) else (str(lit), 0)
            if kb.rules_for(ind):
                return False
        return True

    # -- cache effectiveness (reported by the benchmark suite) -------------------
    def cache_size(self) -> int:
        return len(self._cache)

    def cache_hits(self) -> int:
        """Evaluations answered from the cache since construction."""
        return self._hits

    def cache_misses(self) -> int:
        """Evaluations that had to run the engine since construction."""
        return self._misses

    def cache_hit_rate(self) -> float:
        """Fraction of evaluations served from cache (0.0 when unused)."""
        total = self._hits + self._misses
        return self._hits / total if total else 0.0

    def inherited_evals(self) -> int:
        """Cache misses whose example set was narrowed by inheritance."""
        return self._inherited

    def clear_cache(self) -> None:
        """Drop cached bitsets (counters and reorderings are preserved)."""
        self._cache.clear()
        self._sample_cache.clear()

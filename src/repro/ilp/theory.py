"""Learned theories: prediction and accuracy measurement.

A theory classifies a ground example as positive iff *some* clause covers
it (Prolog first-match semantics).  Predictive accuracy over a labelled
test set is ``(TP + TN) / (P + N)`` — covered positives plus rejected
negatives — exactly the "percentage of correctly classified examples" the
paper reports in Table 6.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.ilp.coverage import covers
from repro.logic.clause import Clause, Theory
from repro.logic.engine import Engine
from repro.logic.terms import Term

__all__ = ["predicts", "confusion", "accuracy", "TheoryReport"]


def predicts(engine: Engine, theory: Theory, example: Term) -> bool:
    """True iff some clause of ``theory`` covers ``example``."""
    return any(covers(engine, c, example) for c in theory)


@dataclass(frozen=True)
class TheoryReport:
    """Confusion counts for a theory on a labelled example set."""

    tp: int
    fn: int
    tn: int
    fp: int

    @property
    def accuracy(self) -> float:
        total = self.tp + self.fn + self.tn + self.fp
        return (self.tp + self.tn) / total if total else 0.0

    @property
    def precision(self) -> float:
        denom = self.tp + self.fp
        return self.tp / denom if denom else 0.0

    @property
    def recall(self) -> float:
        denom = self.tp + self.fn
        return self.tp / denom if denom else 0.0


def confusion(engine: Engine, theory: Theory, pos: Sequence[Term], neg: Sequence[Term]) -> TheoryReport:
    """Confusion counts of ``theory`` over a labelled pos/neg example set."""
    tp = sum(1 for e in pos if predicts(engine, theory, e))
    fp = sum(1 for e in neg if predicts(engine, theory, e))
    return TheoryReport(tp=tp, fn=len(pos) - tp, tn=len(neg) - fp, fp=fp)


def accuracy(engine: Engine, theory: Theory, pos: Sequence[Term], neg: Sequence[Term]) -> float:
    """Percentage (0-100) of correctly classified examples."""
    return 100.0 * confusion(engine, theory, pos, neg).accuracy

#!/usr/bin/env python
"""Quickstart: learn Michalski's east/west trains concept, sequentially and
with the paper's P²-MDIE pipelined data-parallel algorithm.

Run:  python examples/quickstart.py
"""

from repro.cluster import OpsCostModel
from repro.datasets import make_dataset
from repro.ilp import accuracy, mdie
from repro.logic import Engine
from repro.parallel import run_p2mdie, sequential_seconds


def main() -> None:
    # 1. A ready-made ILP problem: background knowledge, examples, mode
    #    declarations and a tuned configuration.
    ds = make_dataset("trains", seed=0, scale="small")
    print(f"dataset: {ds.name}  |E+|={ds.n_pos}  |E-|={ds.n_neg}")
    print(f"planted target: {ds.target_description}\n")

    # 2. Sequential MDIE (the paper's Fig. 1 baseline).
    seq = mdie(ds.kb, ds.pos, ds.neg, ds.modes, ds.config, seed=0)
    print("sequential theory:")
    for clause in seq.theory:
        print(f"  {clause}")
    seq_t = sequential_seconds(seq)
    print(f"epochs={seq.epochs}  engine-ops={seq.ops:,}  virtual-time={seq_t:.1f}s\n")

    # 3. P²-MDIE on a simulated 4-node cluster (Fig. 5), width W=10.
    par = run_p2mdie(ds.kb, ds.pos, ds.neg, ds.modes, ds.config, p=4, width=10, seed=0)
    print("p2-mdie theory (p=4, W=10):")
    for clause in par.theory:
        print(f"  {clause}")
    print(
        f"epochs={par.epochs}  virtual-time={par.seconds:.1f}s  "
        f"communication={par.mbytes:.3f} MB  speedup={seq_t / par.seconds:.2f}x\n"
    )

    # 4. Both models classify the training data.
    engine = Engine(ds.kb, ds.config.engine_budget())
    print(f"sequential training accuracy: {accuracy(engine, seq.theory, ds.pos, ds.neg):.1f}%")
    print(f"parallel   training accuracy: {accuracy(engine, par.theory, ds.pos, ds.neg):.1f}%")


if __name__ == "__main__":
    main()

"""Unit tests for the Prolog-ish parser."""

import pytest

from repro.logic.clause import Clause
from repro.logic.parser import (
    ParseError,
    parse_clause,
    parse_program,
    parse_term,
    term_to_str,
)
from repro.logic.terms import Const, Struct, Var, atom


class TestTerms:
    def test_const(self):
        assert parse_term("abc") == Const("abc")

    def test_int(self):
        assert parse_term("42") == Const(42)

    def test_negative_int(self):
        assert parse_term("-42") == Const(-42)

    def test_float(self):
        assert parse_term("3.25") == Const(3.25)

    def test_negative_float(self):
        assert parse_term("-3.25") == Const(-3.25)

    def test_var(self):
        assert parse_term("Xyz") == Var("Xyz")

    def test_anonymous_var_is_fresh(self):
        t = parse_term("p(_, _)")
        assert t.args[0] != t.args[1]

    def test_compound(self):
        assert parse_term("p(a, B, 3)") == atom("p", "a", "B", 3)

    def test_nested(self):
        t = parse_term("f(g(a), h(X, b))")
        assert t == Struct("f", (atom("g", "a"), atom("h", "X", "b")))

    def test_quoted_atom(self):
        assert parse_term("'hello world'") == Const("hello world")

    def test_quoted_functor(self):
        t = parse_term("'my pred'(a)")
        assert t.functor == "my pred"

    def test_star_atom(self):
        assert parse_term("modeb(*, p(+t))").args[0] == Const("*")


class TestLists:
    def test_empty(self):
        assert parse_term("[]") == Const("[]")

    def test_proper(self):
        t = parse_term("[a, b]")
        assert t == Struct(".", (Const("a"), Struct(".", (Const("b"), Const("[]")))))

    def test_cons_tail(self):
        t = parse_term("[a|T]")
        assert t == Struct(".", (Const("a"), Var("T")))

    def test_roundtrip_str(self):
        assert term_to_str(parse_term("[a, b, c]")) == "[a, b, c]"
        assert term_to_str(parse_term("[a|T]")) == "[a|T]"


class TestOperators:
    def test_arith_precedence(self):
        # 2 + 3 * 4 = +(2, *(3, 4))
        t = parse_term("2 + 3 * 4")
        assert t.functor == "+"
        assert t.args[1].functor == "*"

    def test_left_assoc(self):
        # 10 - 3 - 2 = -(-(10, 3), 2)
        t = parse_term("10 - 3 - 2")
        assert t.functor == "-"
        assert t.args[0].functor == "-"

    def test_parens(self):
        t = parse_term("2 * (3 + 4)")
        assert t.functor == "*"
        assert t.args[1].functor == "+"

    def test_comparison(self):
        t = parse_term("X =< Y")
        assert t == Struct("=<", (Var("X"), Var("Y")))

    def test_is(self):
        t = parse_term("X is Y + 1")
        assert t.functor == "is"

    def test_mode_placemarkers(self):
        t = parse_term("p(+a, -b, #c)")
        assert t.args[0] == Struct("+", (Const("a"),))
        assert t.args[1] == Struct("-", (Const("b"),))
        assert t.args[2] == Struct("#", (Const("c"),))

    def test_negation_prefix(self):
        t = parse_term("\\+ p(a)")
        assert t == Struct("\\+", (atom("p", "a"),))


class TestClauses:
    def test_fact(self):
        c = parse_clause("p(a).")
        assert c == Clause(atom("p", "a"))

    def test_rule(self):
        c = parse_clause("p(X) :- q(X), r(X, Y).")
        assert c.head == atom("p", "X")
        assert c.body == (atom("q", "X"), atom("r", "X", "Y"))

    def test_body_flattening(self):
        c = parse_clause("p :- a, b, c, d.")
        assert len(c.body) == 4

    def test_program(self):
        prog = parse_program(
            """
            % a comment
            p(a).  /* block
                      comment */
            p(b).
            q(X) :- p(X).
            """
        )
        assert len(prog) == 3
        assert prog[2].body == (atom("p", "X"),)


class TestErrors:
    def test_missing_dot(self):
        with pytest.raises(ParseError):
            parse_clause("p(a)")

    def test_unbalanced_paren(self):
        with pytest.raises(ParseError):
            parse_term("p(a")

    def test_bad_char(self):
        with pytest.raises(ParseError):
            parse_term("p(@)")

    def test_trailing_junk(self):
        with pytest.raises(ParseError):
            parse_term("p(a) q")

    def test_error_mentions_line(self):
        with pytest.raises(ParseError, match="line 2"):
            parse_program("p(a).\nq(@).")

"""Tests for the body-literal reordering transformation."""

import pytest

from repro.ilp.reorder import literal_cost_estimate, optimize_clause_order
from repro.logic.engine import Engine
from repro.logic.knowledge import KnowledgeBase
from repro.logic.parser import parse_clause, parse_term
from repro.logic.terms import Var, variables_of


@pytest.fixture
def kb():
    kb = KnowledgeBase()
    kb.add_program(
        " ".join(f"big(x{i})." for i in range(50))
        + " tiny(x0). tiny(x1)."
        + " link(x0, x1). link(x1, x2)."
    )
    return kb


class TestOrdering:
    def test_selective_literal_first(self, kb):
        c = parse_clause("p(X) :- big(X), tiny(X).")
        out = optimize_clause_order(kb, c)
        assert [l.functor for l in out.body] == ["tiny", "big"]

    def test_same_literals(self, kb):
        c = parse_clause("p(X) :- big(X), tiny(X), link(X, Y).")
        out = optimize_clause_order(kb, c)
        assert sorted(map(str, out.body)) == sorted(map(str, c.body))

    def test_bound_inputs_preferred(self, kb):
        # link(Y, Z) has unbound Y initially; link(X, Y) is bound via head
        c = parse_clause("p(X) :- link(Y, Z), link(X, Y).")
        out = optimize_clause_order(kb, c)
        assert str(out.body[0]) == "link(X, Y)"

    def test_guarded_literals_wait_for_bindings(self, kb):
        c = parse_clause("p(X) :- Y > 1, link(X, Y).")
        out = optimize_clause_order(kb, c)
        assert out.body[-1].functor == ">"

    def test_negation_scheduled_after_bindings(self, kb):
        c = parse_clause("p(X) :- \\+ tiny(Y), link(X, Y).")
        out = optimize_clause_order(kb, c)
        assert out.body[0].functor == "link"

    def test_empty_body(self, kb):
        c = parse_clause("p(a).")
        assert optimize_clause_order(kb, c) == c


class TestSemanticsPreserved:
    def test_same_coverage(self, kb):
        from repro.ilp.coverage import coverage_bitset

        eng = Engine(kb)
        examples = [parse_term(f"p(x{i})") for i in range(5)]
        for src in (
            "p(X) :- big(X), tiny(X).",
            "p(X) :- big(X), link(X, Y), tiny(Y).",
            "p(X) :- link(X, Y), \\+ tiny(Y).",
        ):
            c = parse_clause(src)
            out = optimize_clause_order(kb, c)
            assert coverage_bitset(eng, c, examples) == coverage_bitset(eng, out, examples)

    def test_fewer_ops_on_selective_rule(self, kb):
        from repro.ilp.coverage import coverage_bitset

        eng = Engine(kb)
        examples = [parse_term(f"p(x{i})") for i in range(50)]
        c = parse_clause("p(X) :- big(Y), tiny(Y), link(X, Y).")
        before = eng.total_ops
        coverage_bitset(eng, c, examples)
        cost_plain = eng.total_ops - before
        out = optimize_clause_order(kb, c)
        before = eng.total_ops
        coverage_bitset(eng, out, examples)
        cost_reordered = eng.total_ops - before
        assert cost_reordered < cost_plain


class TestCostEstimate:
    def test_unbound_penalised(self, kb):
        lit = parse_term("link(A, B)")
        cheap = literal_cost_estimate(kb, lit, set(variables_of(lit)))
        costly = literal_cost_estimate(kb, lit, set())
        assert cheap < costly

    def test_store_size_breaks_ties(self, kb):
        bound = {Var("X")}
        big = literal_cost_estimate(kb, parse_term("big(X)"), bound)
        tiny = literal_cost_estimate(kb, parse_term("tiny(X)"), bound)
        assert tiny < big


class TestEndToEnd:
    def test_mdie_with_reorder_same_theory_fewer_ops(self):
        from repro.datasets import make_dataset
        from repro.ilp.mdie import mdie

        ds = make_dataset("trains", seed=3, scale="small")
        plain = mdie(ds.kb, ds.pos, ds.neg, ds.modes, ds.config, seed=3)
        fast = mdie(ds.kb, ds.pos, ds.neg, ds.modes, ds.config.replace(reorder_body=True), seed=3)
        assert list(plain.theory) == list(fast.theory)
        assert fast.ops <= plain.ops

"""Coverage certificates in the registry: publish, read, quarantine.

A certificate is a *secondary* artifact (``vNNNN.cert`` next to
``vNNNN.theory``): damage to it must never take the theory down with it.
Startup recovery quarantines corrupt certificates — renamed aside for
forensics, listed in ``registry.quarantined`` — while the exact theory
record keeps being served.
"""

import os

import pytest

from repro.ilp.sampling import ClauseCertificate, CoverageCertificate
from repro.logic import Theory, parse_clause
from repro.service import RegistryError
from repro.service.server import Service


CERT = CoverageCertificate(
    seed=3,
    fraction=0.25,
    delta=0.05,
    min_stratum=16,
    strata=(("pos", 8, 30), ("neg", 5, 20)),
    entries=(
        ClauseCertificate(
            clause="p(X) :- q(X).",
            est_pos=7,
            est_neg=0,
            sample_pos_n=8,
            sample_neg_n=5,
            exact_pos=9,
            exact_neg=0,
            exact_good=True,
        ),
    ),
)


@pytest.fixture
def theory():
    return Theory([parse_clause("p(X) :- q(X).")])


class TestPublishAndGet:
    def test_round_trip(self, registry, theory):
        rec = registry.publish("t", theory, certificate=CERT)
        assert registry.get_certificate("t", rec.version) == CERT
        assert registry.get_certificate("t") == CERT  # resolves like get()

    def test_absent_is_none_not_error(self, registry, theory):
        registry.publish("t", theory)  # exact run: no certificate
        assert registry.get_certificate("t") is None

    def test_versions_keep_their_own_certificates(self, registry, theory):
        registry.publish("t", theory, certificate=CERT)
        registry.publish("t", theory)  # v2 exact
        assert registry.get_certificate("t", 1) == CERT
        assert registry.get_certificate("t", 2) is None

    def test_corrupt_certificate_is_a_registry_error(self, registry, theory):
        rec = registry.publish("t", theory, certificate=CERT)
        path = registry.certificate_path("t", rec.version)
        with open(path, "r+b") as fh:
            fh.write(b"\xff\xff\xff\xff")
        with pytest.raises(RegistryError, match="corrupt certificate"):
            registry.get_certificate("t")
        # the theory record itself is unharmed
        assert registry.get("t").to_theory() == theory

    def test_gc_removes_orphaned_certificates(self, registry, theory):
        for _ in range(3):
            registry.publish("t", theory, certificate=CERT)
        registry.gc("t", keep=1)
        assert registry.versions("t") == [3]
        assert not os.path.exists(registry.certificate_path("t", 1))
        assert registry.get_certificate("t", 3) == CERT


class TestRecovery:
    def _corrupt(self, registry, name, version, data=b"garbage, not a cert"):
        path = registry.certificate_path(name, version)
        with open(path, "wb") as fh:
            fh.write(data)
        return path

    def test_corrupt_certificates_quarantined_not_fatal(self, registry, theory):
        registry.publish("good", theory, certificate=CERT)
        rec = registry.publish("bad", theory, certificate=CERT)
        path = self._corrupt(registry, "bad", rec.version)
        found = registry.recover()
        assert found == ["bad/v0001"]
        assert registry.quarantined == ["bad/v0001"]
        # renamed aside for forensics, invisible to readers
        assert not os.path.exists(path)
        assert os.path.exists(path + ".corrupt")
        assert registry.get_certificate("bad") is None
        # the theory is still served; the intact certificate too
        assert registry.get("bad").to_theory() == theory
        assert registry.get_certificate("good") == CERT

    def test_truncated_certificate_quarantined(self, registry, theory):
        from repro.ilp.sampling import certificate_to_bytes

        rec = registry.publish("t", theory, certificate=CERT)
        data = certificate_to_bytes(CERT)
        self._corrupt(registry, "t", rec.version, data[: len(data) // 2])
        assert registry.recover() == ["t/v0001"]

    def test_recover_is_idempotent(self, registry, theory):
        rec = registry.publish("t", theory, certificate=CERT)
        self._corrupt(registry, "t", rec.version)
        assert registry.recover() == ["t/v0001"]
        assert registry.recover() == []  # nothing left to quarantine
        assert registry.quarantined == ["t/v0001"]

    def test_clean_registry_recovers_empty(self, registry, theory):
        registry.publish("t", theory, certificate=CERT)
        assert registry.recover() == []
        assert registry.get_certificate("t") == CERT


class TestServiceSurface:
    def test_startup_recovery_and_stats(self, tmp_path, registry, theory):
        rec = registry.publish("t", theory, certificate=CERT)
        path = registry.certificate_path("t", rec.version)
        with open(path, "wb") as fh:
            fh.write(b"\x00" * 16)
        svc = Service(
            slots=1,
            state_dir=str(tmp_path / "jobs"),
            registry_dir=registry.root,
        )
        try:
            stats = svc.handle({"op": "stats"})
            assert stats["resilience"]["registry_quarantined"] == ["t/v0001"]
            resp = svc.handle({"op": "registry", "action": "show", "name": "t"})
            assert resp["ok"]
            assert "certificate" not in resp  # quarantined at startup
        finally:
            svc.close()

    def test_show_surfaces_certificate(self, tmp_path, registry, theory):
        registry.publish("t", theory, certificate=CERT)
        svc = Service(
            slots=1,
            state_dir=str(tmp_path / "jobs"),
            registry_dir=registry.root,
        )
        try:
            resp = svc.handle({"op": "registry", "action": "show", "name": "t"})
            assert resp["ok"]
            assert resp["certificate"] == CERT.to_dict()
            assert resp["certificate"]["ok"] is True
        finally:
            svc.close()

    def test_show_reports_cert_damaged_after_startup(self, tmp_path, registry, theory):
        rec = registry.publish("t", theory, certificate=CERT)
        svc = Service(
            slots=1,
            state_dir=str(tmp_path / "jobs"),
            registry_dir=registry.root,
        )
        try:
            # damage arrives while the service is live (post-recovery)
            with open(registry.certificate_path("t", rec.version), "wb") as fh:
                fh.write(b"\xde\xad")
            resp = svc.handle({"op": "registry", "action": "show", "name": "t"})
            assert resp["ok"]  # the theory still serves
            assert "certificate_error" in resp
        finally:
            svc.close()

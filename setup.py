"""Setup shim so that `pip install -e .` works on setuptools builds that
lack the `wheel` package (legacy editable install path)."""
from setuptools import setup

setup()

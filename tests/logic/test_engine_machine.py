"""Iterative-machine vs recursive-interpreter parity, and the ground-goal
memo table.

The iterative machine (the default kernel) must reproduce the recursive
seed interpreter *bit-for-bit* when its extras are disabled: same
solutions, same order, same ``total_ops`` charge sequence, same budget
exhaustion points.  The memo table and multi-argument indexing then only
reduce the op count — never the solution set.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.logic.engine import Engine, QueryBudget
from repro.logic.knowledge import KnowledgeBase
from repro.logic.parser import parse_term
from repro.logic.terms import atom

PROGRAM_BATTERY = """
p(a). p(b). p(c).
q(b). q(c).
r(a, 1). r(a, 2). r(b, 3).
edge(a, b). edge(b, c). edge(c, d). edge(d, a).
path(X, Y) :- edge(X, Y).
path(X, Z) :- edge(X, Y), path(Y, Z).
big(X) :- r(A, X), X > 1.
double(X, Y) :- r(A, X), Y is X * 2.
distinct(X, Y) :- p(X), p(Y), dif_const(X, Y).
nonq(X) :- p(X), \\+ q(X).
ranged(X) :- between(1, 3, X).
eqtest(X) :- p(X), X = a.
neqtest(X) :- p(X), X \\= a.
loop(X) :- loop(X).
"""

QUERIES = [
    "p(X)",
    "p(a)",
    "p(d)",
    "p(X), q(X)",
    "r(a, X)",
    "r(X, 3)",
    "path(a, d)",
    "path(a, X)",
    "path(X, Y)",
    "path(d, c)",
    "big(X)",
    "double(X, Y)",
    "distinct(X, Y)",
    "nonq(X)",
    "\\+ p(d)",
    "\\+ p(a)",
    "ranged(X)",
    "between(2, 4, 3)",
    "between(2, 4, 9)",
    "eqtest(X)",
    "neqtest(X)",
    "f(a) == f(a)",
    "f(a) \\== f(b)",
    "2 + 2 =< 5",
    "X is 3 * 3",
    "loop(a)",
]


def make_kb() -> KnowledgeBase:
    kb = KnowledgeBase()
    kb.add_program(PROGRAM_BATTERY)
    return kb


def run_query(engine: Engine, q: str, limit=None):
    sols = [str(s) for s in engine.solve(parse_term(q), limit=limit)]
    return sols, engine.total_ops, engine.last_exhausted


class TestMachineParity:
    @pytest.mark.parametrize("query", QUERIES)
    def test_solutions_order_and_ops_identical(self, query):
        """With memo off and first-arg indexing, the iterative machine is
        charge-for-charge identical to the recursive interpreter."""
        kb = make_kb()
        budget = QueryBudget(max_depth=6, max_ops=50_000)
        rec = Engine(kb, budget, machine="recursive", memo=False, index="first")
        it = Engine(kb, budget, machine="iterative", memo=False, index="first")
        assert run_query(rec, query) == run_query(it, query)

    @pytest.mark.parametrize("query", QUERIES)
    def test_new_kernel_same_solutions(self, query):
        """Memo + multi-argument indexing keep the solution sequence; the
        op count may only drop."""
        kb = make_kb()
        budget = QueryBudget(max_depth=6, max_ops=50_000)
        legacy = Engine(kb, budget, kernel="legacy")
        new = Engine(kb, budget, kernel="new")
        lsols, lops, _ = run_query(legacy, query)
        nsols, nops, _ = run_query(new, query)
        assert nsols == lsols
        assert nops <= lops

    @pytest.mark.parametrize("machine", ["recursive", "iterative"])
    def test_budget_exhaustion_matches(self, machine):
        kb = KnowledgeBase()
        kb.add_program(" ".join(f"m({i})." for i in range(100)))
        eng = Engine(kb, QueryBudget(max_depth=5, max_ops=10), machine=machine, memo=False, index="first")
        n = eng.count_solutions(parse_term("m(X)"))
        assert eng.last_exhausted
        assert n < 100

    def test_exhaustion_point_identical(self):
        kb = make_kb()
        budget = QueryBudget(max_depth=8, max_ops=37)
        rec = Engine(kb, budget, machine="recursive", memo=False, index="first")
        it = Engine(kb, budget, machine="iterative", memo=False, index="first")
        assert run_query(rec, "path(X, Y)") == run_query(it, "path(X, Y)")

    def test_unbound_goal_raises(self):
        eng = Engine(make_kb(), machine="iterative")
        with pytest.raises(TypeError):
            list(eng.solve(parse_term("X")))

    def test_limit_and_prove(self):
        eng = Engine(make_kb(), machine="iterative")
        assert len(list(eng.solve(parse_term("p(X)"), limit=2))) == 2
        assert eng.prove(parse_term("p(a)"))
        assert not eng.prove(parse_term("p(zzz)"))


@st.composite
def graph_kb(draw):
    n = draw(st.integers(2, 6))
    edges = draw(
        st.lists(
            st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
            min_size=1,
            max_size=12,
        )
    )
    kb = KnowledgeBase()
    for a, b in edges:
        kb.add_fact(atom("edge", f"n{a}", f"n{b}"))
    kb.add_program("path(X, Y) :- edge(X, Y). path(X, Z) :- edge(X, Y), path(Y, Z).")
    return kb


@given(graph_kb())
@settings(max_examples=60, deadline=None)
def test_machines_agree_on_random_graphs(kb):
    budget = QueryBudget(max_depth=8, max_ops=30_000)
    rec = Engine(kb, budget, machine="recursive", memo=False, index="first")
    it = Engine(kb, budget, machine="iterative", memo=False, index="first")
    new = Engine(kb, budget, kernel="new")
    goal = parse_term("path(X, Y)")
    rec_sols = [str(s) for s in rec.solve(goal, limit=150)]
    it_sols = [str(s) for s in it.solve(goal, limit=150)]
    assert rec_sols == it_sols
    assert rec.total_ops == it.total_ops
    # memoization may cut duplicate ground sub-proofs, so compare sets
    new_sols = [str(s) for s in new.solve(goal, limit=150)]
    assert set(new_sols) == set(rec_sols)


class TestMemoTable:
    def prog(self) -> KnowledgeBase:
        # s1..s3 carry a (vacuous) negation so they are *not* memoizable:
        # they expand inline and consume depth exactly like the seed
        # interpreter, which lets the tests below pin the memo's
        # depth-validity guard on g/h.
        kb = KnowledgeBase()
        kb.add_program(
            """
            i(a).
            h(X) :- i(X).
            g(X) :- h(X).
            f1(x). f2(x). f3(x).
            s1 :- f1(x), \\+ absent(x).
            s2 :- f2(x), \\+ absent(x).
            s3 :- f3(x), \\+ absent(x).
            """
        )
        return kb

    def test_memo_hit_and_correctness(self):
        kb = self.prog()
        eng = Engine(kb, QueryBudget(max_depth=6), machine="iterative", memo=True)
        assert eng.prove(parse_term("g(a)"))
        assert eng.prove(parse_term("g(a)"))
        assert eng.memo_hits >= 1
        assert not eng.prove(parse_term("g(b)"))

    def test_memo_depth_sensitivity(self):
        """A success recorded with lots of remaining depth must not be
        replayed when the goal reappears with too little depth left — and
        a shallow failure must not shadow a later deep success."""
        kb = self.prog()
        for order in (["g(a)", "s1, s2, s3, g(a)"], ["s1, s2, s3, g(a)", "g(a)"]):
            expected = None
            for memo in (False, True):
                results = []
                eng = Engine(kb, QueryBudget(max_depth=5), machine="iterative", memo=memo)
                for q in order:
                    results.append(eng.prove(parse_term(q)))
                if expected is None:
                    expected = results
                else:
                    assert results == expected
        # Tighter budget: g(a) alone fits (2 expansions within depth 3),
        # but after s1..s3 eat the 3 levels g(a) is dispatched at depth 0.
        # The success recorded at depth 3 must not be replayed there, and
        # the failure recorded at depth 0 must not shadow depth-3 retries.
        eng_tight = Engine(kb, QueryBudget(max_depth=3), machine="iterative", memo=True)
        assert eng_tight.prove(parse_term("g(a)"))
        assert not eng_tight.prove(parse_term("s1, s2, s3, g(a)"))
        assert eng_tight.prove(parse_term("g(a)"))

    def test_memo_invalidated_on_kb_mutation(self):
        kb = self.prog()
        eng = Engine(kb, machine="iterative", memo=True)
        assert not eng.prove(parse_term("g(b)"))
        kb.add_fact(atom("i", "b"))
        assert eng.prove(parse_term("g(b)"))

    def test_negation_closure_not_memoized(self):
        kb = KnowledgeBase()
        kb.add_program("q(a). p(X) :- \\+ q(X). r(X) :- p(X).")
        eng = Engine(kb, machine="iterative", memo=True)
        assert not eng.prove(parse_term("r(a)"))
        assert eng.prove(parse_term("r(b)"))
        # negation in the closure makes provability depth-non-monotone
        assert eng._is_memoizable(("r", 1)) is False
        assert eng.memo_misses == 0

    def test_recursive_predicate_memo_safe(self):
        kb = KnowledgeBase()
        kb.add_program(
            "edge(a, b). edge(b, c)."
            "path(X, Y) :- edge(X, Y)."
            "path(X, Z) :- edge(X, Y), path(Y, Z)."
        )
        for memo in (False, True):
            eng = Engine(kb, QueryBudget(max_depth=8), machine="iterative", memo=memo)
            assert eng.prove(parse_term("path(a, c)"))
            assert not eng.prove(parse_term("path(c, a)"))
            assert eng.prove(parse_term("path(a, c)"))


class TestMultiArgIndexing:
    def test_second_argument_bound(self):
        kb = KnowledgeBase()
        kb.add_program(" ".join(f"bond(m{i}, a{i % 7}, t)." for i in range(50)))
        eng = Engine(kb, kernel="new")
        ops0 = eng.total_ops
        assert eng.prove(parse_term("bond(X, a3, t)"))
        # selectivity: the a3 bucket holds ~50/7 facts, not 50
        assert eng.total_ops - ops0 <= 9

    def test_composite_index(self):
        kb = KnowledgeBase()
        for i in range(40):
            kb.add_fact(atom("b", f"x{i % 4}", f"y{i}", i % 2))
        eng = Engine(kb, kernel="new")
        ops0 = eng.total_ops
        # both arg 0 and arg 2 bound: only the (x1, 1) facts are offered
        sols = list(eng.solve(parse_term("b(x1, Y, 1)")))
        assert len(sols) == 10  # i % 4 == 1 implies i odd: 1, 5, ..., 37
        assert eng.total_ops - ops0 <= 11

    def test_same_solutions_as_full_scan(self):
        kb = KnowledgeBase()
        for i in range(30):
            kb.add_fact(atom("t", f"p{i % 3}", f"q{i % 5}", f"r{i % 2}"))
        legacy = Engine(kb, kernel="legacy")
        new = Engine(kb, kernel="new")
        for q in ("t(p1, X, Y)", "t(X, q2, Y)", "t(p0, X, r1)", "t(X, Y, Z)", "t(p1, q1, r1)"):
            goal = parse_term(q)
            assert [str(s) for s in legacy.solve(goal)] == [str(s) for s in new.solve(goal)]

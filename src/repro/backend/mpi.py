"""MPIBackend: run the generators on a real MPI communicator (mpi4py).

Rebases :class:`~repro.cluster.mpi_backend.MPIContext` onto the backend
protocol.  MPI execution is SPMD: *every* rank of an ``mpiexec`` launch
calls :meth:`MPIBackend.run` with the same process list; each rank drives
only its own generator, then final process states and communication
statistics are gathered to rank 0, which assembles the complete
:class:`~repro.backend.base.BackendRun`.  Non-root ranks receive a run
carrying only the rank-0 artifacts — harness code should act on the
result only where ``backend.is_root`` is true.

Fault-tolerance parity with sim/local (``fault_plan``):

* **Crashes retire in place.**  A real rank death would abort the whole
  ``mpiexec`` job, so an injected :class:`~repro.fault.plan.WorkerCrash`
  instead stops the rank's generator (same deterministic about-to-process
  the *n*-th matching message trigger as the other substrates) and parks
  the rank in a quiet drain loop: it consumes and discards everything
  sent its way, answers nothing — exactly what a dead worker looks like
  to the heartbeat protocol.
* **Stragglers sleep for real** (like the local backend), **message loss
  drops the nth send per link at the send adapter** — the sender is
  charged, the payload never leaves the node — and every injected event
  lands in the run's ``fault_log`` with the same record shape.
* **Shutdown barrier.**  After rank 0's generator finishes (or fails),
  it sends the backend-level :data:`~repro.cluster.mpi_backend.HALT_TAG`
  to every rank, releasing retired victims and falsely-declared-dead
  workers still blocked in a receive.  All ranks then drain residual
  traffic and meet in a ``comm.gather``; crashed/halted ranks are absent
  from ``BackendRun.procs``, matching the other substrates' contract.

mpi4py is imported lazily; constructing the backend on a host without it
raises :class:`~repro.backend.base.BackendUnavailableError` so callers can
fall back cleanly.
"""

from __future__ import annotations

import time
from typing import Optional, Sequence

from repro.backend.base import Backend, BackendError, BackendRun, BackendUnavailableError
from repro.cluster.message import Message, payload_nbytes
from repro.cluster.process import BcastOp, ComputeInterval, ComputeOp, RecvOp, SendOp, SimProcess
from repro.cluster.scheduler import CommStats
from repro.fault.plan import (
    MAX_STRAGGLE_SLEEP,
    FaultRecord,
    Straggler,
    WorkerCrash,
    normalize_plan,
)

__all__ = ["MPIBackend"]

#: seconds of post-halt quiet time before a rank stops draining stray
#: messages (late pongs, stop fan-out to retired ranks, ...).
_RESIDUAL_DRAIN = 0.2


class _Retire(BaseException):
    """Injected crash on MPI: stop servicing work, park in the drain loop.

    A BaseException (like the local backend's ``_InjectedCrash``) so no
    algorithm-level handler can swallow the death.
    """


class _AccountingMPIContext:
    """Wrap MPIContext.execute with CommStats accounting, wall timing and
    (under a fault plan) deterministic fault injection."""

    def __init__(
        self,
        inner,
        record_trace: bool,
        crash: Optional[WorkerCrash] = None,
        straggler: Optional[Straggler] = None,
        losses: Optional[dict] = None,
    ):
        self._inner = inner
        self.rank = inner.rank
        self.n_procs = inner.n_procs
        self.record_trace = record_trace
        self.stats = CommStats()
        self.trace: list[ComputeInterval] = []
        self._crash = crash
        self._crash_seen = 0
        self._straggler = straggler
        self._losses = losses or {}
        self._sent_count: dict[int, int] = {}
        #: injected events observed by this rank, shipped home with the
        #: gather so every substrate reports the same log shape.
        self.fault_log: list[FaultRecord] = []
        self._seq = 0
        self._t0 = time.perf_counter()
        self._last_mark = 0.0

    # syscall constructors delegate to the rebased MPIContext
    def send(self, dst, payload, tag):
        return self._inner.send(dst, payload, tag)

    def bcast(self, payload, tag, dsts=None):
        return self._inner.bcast(payload, tag, dsts)

    def recv(self, src=None, tag=None, timeout=None):
        return self._inner.recv(src, tag, timeout)

    def compute(self, ops, label="compute"):
        return self._inner.compute(ops, label)

    @property
    def clock(self) -> float:
        return time.perf_counter() - self._t0

    def _account(self, dst: int, payload: object, tag: str) -> None:
        self._seq += 1
        now = self.clock
        self.stats.record(
            Message(
                src=self.rank,
                dst=dst,
                tag=tag,
                payload=payload,
                nbytes=payload_nbytes(payload),
                send_time=now,
                arrival_time=now,
                seq=self._seq,
            )
        )

    def _post(self, dst: int, payload: object, tag: str) -> None:
        """Account one outgoing message, then ship or drop it.

        Injected message loss happens here, at the send adapter: the
        sender is charged (it cannot know the network dropped the
        message), the payload never leaves the node.
        """
        self._account(dst, payload, tag)
        n = self._sent_count.get(dst, 0) + 1
        self._sent_count[dst] = n
        if n in self._losses.get(dst, ()):
            self.fault_log.append(
                FaultRecord(
                    kind="drop", rank=self.rank, time=self.clock, detail=f"->{dst} #{n} tag={tag}"
                )
            )
            return
        self._inner.execute(SendOp(dst, payload, tag))

    def _maybe_crash(self, msg: Message) -> None:
        """Injected crash: retire when about to process the n-th matching
        message — the same deterministic trigger the other substrates count."""
        crash = self._crash
        if crash is None or crash.on_recv is None:
            return
        if crash.tag is not None and crash.tag != msg.tag:
            return
        self._crash_seen += 1
        if self._crash_seen >= crash.on_recv:
            raise _Retire()

    def execute(self, op):
        if isinstance(op, SendOp):
            self._post(op.dst, op.payload, op.tag)
            return None
        if isinstance(op, BcastOp):
            for dst in op.dsts:
                self._post(dst, op.payload, op.tag)
            return None
        if isinstance(op, ComputeOp):
            now = self.clock
            if self._straggler is not None and now >= self._straggler.after_time:
                extra = min(
                    (now - self._last_mark) * (self._straggler.factor - 1.0), MAX_STRAGGLE_SLEEP
                )
                if extra > 0:
                    time.sleep(extra)
                    now = self.clock
            if self.record_trace:
                self.trace.append(ComputeInterval(self.rank, self._last_mark, now, op.label))
            self._last_mark = now
            return self._inner.execute(op)
        if isinstance(op, RecvOp):
            msg = self._inner.execute(op)
            if msg is not None:
                self._maybe_crash(msg)
            return msg
        raise TypeError(f"rank {self.rank} yielded non-syscall {op!r}")


class MPIBackend(Backend):
    """Real distributed-memory execution through mpi4py.

    A non-empty ``fault_plan`` arms deterministic fault injection with
    the same triggers and ``fault_log`` shape as the sim and local
    backends (crashes retire the rank in place; ``at_time`` crashes are
    sim-only and ignored here, as on the local backend).  Spare hosts are
    simply the extra ranks ``p+1..p+spares`` of the ``mpiexec`` launch.
    """

    name = "mpi"
    supports_fault_injection = True

    def __init__(self, comm=None, record_trace: bool = False, fault_plan=None):
        from repro.cluster.mpi_backend import mpi_available

        if comm is None and not mpi_available():
            raise BackendUnavailableError(
                "mpi4py is not installed; install it (and launch under mpiexec) "
                "to use the 'mpi' backend, or use 'sim'/'local'"
            )
        self._comm = comm
        self.record_trace = record_trace
        self.fault_plan = fault_plan

    @property
    def is_root(self) -> bool:
        return self._resolved_comm().Get_rank() == 0

    def _resolved_comm(self):
        if self._comm is None:
            from mpi4py import MPI

            self._comm = MPI.COMM_WORLD
        return self._comm

    # -- shutdown barrier helpers ------------------------------------------------
    def _send_halt(self, comm) -> None:
        from repro.cluster.mpi_backend import HALT_TAG

        for dst in range(1, comm.Get_size()):
            comm.send(None, dest=dst, tag=HALT_TAG)

    def _drain_until_halt(self, comm) -> None:
        from mpi4py import MPI

        from repro.cluster.mpi_backend import HALT_TAG

        status = MPI.Status()
        while True:
            comm.recv(source=MPI.ANY_SOURCE, tag=MPI.ANY_TAG, status=status)
            if status.Get_tag() == HALT_TAG:
                return

    def _drain_residual(self, comm) -> None:
        """Consume stray in-flight messages (late pongs, stop fan-out to
        retired ranks) so nothing is left unmatched at finalize."""
        from mpi4py import MPI

        deadline = time.perf_counter() + _RESIDUAL_DRAIN
        while time.perf_counter() < deadline:
            if comm.iprobe(source=MPI.ANY_SOURCE, tag=MPI.ANY_TAG):
                comm.recv(source=MPI.ANY_SOURCE, tag=MPI.ANY_TAG)
            else:
                time.sleep(0.005)

    def run(self, procs: Sequence[SimProcess]) -> BackendRun:
        from repro.backend.base import drive
        from repro.cluster.mpi_backend import MPIContext, MPIHalt

        comm = self._resolved_comm()
        ordered = sorted(procs, key=lambda p: p.rank)
        if [p.rank for p in ordered] != list(range(len(ordered))):
            raise ValueError(
                f"ranks must be contiguous 0..{len(ordered) - 1}, "
                f"got {[p.rank for p in ordered]}"
            )
        if len(ordered) != comm.Get_size():
            raise ValueError(
                f"{len(ordered)} ranks requested but communicator has size "
                f"{comm.Get_size()}; launch with a matching -n"
            )
        plan = normalize_plan(self.fault_plan)
        rank = comm.Get_rank()
        ft = plan is not None
        ctx = _AccountingMPIContext(
            MPIContext(comm, watch_halt=(ft and rank != 0)),
            record_trace=self.record_trace,
            crash=plan.crash_for(rank) if ft else None,
            straggler=plan.straggler_for(rank) if ft else None,
            losses=plan.losses_for(rank) if ft else None,
        )
        proc = ordered[rank]
        t0 = time.perf_counter()
        status = "ok"
        root_error: Optional[BaseException] = None
        try:
            drive(proc, ctx)
        except _Retire:
            status = "crashed"
            ctx.fault_log.append(
                FaultRecord(
                    kind="crash", rank=rank, time=ctx.clock, detail="injected crash (retired)"
                )
            )
        except MPIHalt:
            status = "halted"
        except BaseException as exc:
            if rank == 0:
                # Run the shutdown barrier anyway so peers are released,
                # then re-raise below once everyone has gathered.
                root_error = exc
            elif ft:
                # Under an active plan a failed worker is a dead worker:
                # retire it and let the recovery protocol route around.
                status = "crashed"
                ctx.fault_log.append(
                    FaultRecord(
                        kind="crash",
                        rank=rank,
                        time=ctx.clock,
                        detail=f"{type(exc).__name__}: {exc}",
                    )
                )
            else:
                raise  # real rank death aborts the MPI job, as documented
        elapsed = time.perf_counter() - t0

        if ft:
            if rank == 0:
                self._send_halt(comm)
            elif status != "halted":
                # ok / crashed ranks park here (the retire-in-place drain
                # loop) until rank 0 releases them.
                self._drain_until_halt(comm)
            self._drain_residual(comm)

        # Each rank ships its trace as a wire-codec SpanBatch (code 28) —
        # the same message the local backend sends over its result pipe.
        from repro.obs.span import decode_batch, encode_batch

        entry = (
            status,
            proc if status == "ok" else None,
            ctx.stats,
            elapsed,
            encode_batch(rank, ctx.trace),
            list(ctx.fault_log),
        )
        gathered = comm.gather(entry, root=0)

        if rank == 0:
            if root_error is not None:
                comm.bcast(("error", f"{type(root_error).__name__}: {root_error}", None), root=0)
                raise root_error
            fault_log: list[FaultRecord] = []
            comm_stats = CommStats()
            clocks: list[float] = []
            trace: list[ComputeInterval] = []
            final_procs: list[SimProcess] = []
            for st, p, stats, dt, span_bytes, rlog in gathered:
                if p is not None:
                    final_procs.append(p)
                clocks.append(dt)
                trace.extend(decode_batch(span_bytes))
                comm_stats.merge(stats)
                fault_log.extend(rlog)
            trace.sort(key=lambda iv: (iv.start, iv.rank))
            fault_log.sort(key=lambda r: r.time)
            root_proc = final_procs[0]
            comm.bcast(("ok", root_proc, fault_log), root=0)
            return BackendRun(
                seconds=max(clocks) if clocks else 0.0,
                comm=comm_stats,
                clocks=clocks,
                trace=trace,
                procs=final_procs,
                fault_log=fault_log,
            )

        # Every SPMD rank returns through the same front-end code, which
        # reads run artifacts from the rank-0 process — so rank 0
        # broadcasts its final state (and the merged fault log).
        kind, root_proc, fault_log = comm.bcast(None, root=0)
        if kind == "error":
            raise BackendError(f"rank 0 failed: {root_proc}")
        return BackendRun(
            seconds=elapsed,
            comm=ctx.stats,
            clocks=[elapsed],
            trace=ctx.trace,
            procs=[root_proc],
            fault_log=fault_log,
        )

"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_learn_defaults(self):
        args = build_parser().parse_args(["learn", "trains"])
        assert args.p == 1
        assert args.width == 10

    def test_width_nolimit(self):
        args = build_parser().parse_args(["learn", "trains", "--width", "nolimit"])
        assert args.width is None

    def test_unknown_dataset_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["learn", "nope"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestLearn:
    def test_sequential(self, capsys):
        assert main(["learn", "trains", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "eastbound" in out
        assert "training-accuracy" in out

    def test_parallel(self, capsys):
        assert main(["learn", "trains", "--p", "3", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "p2-mdie" in out
        assert "comm=" in out


class TestFaultTolerance:
    def test_learn_with_fault_plan(self, tmp_path, capsys):
        from repro.fault.plan import FaultPlan, WorkerCrash

        plan_path = str(tmp_path / "plan.json")
        FaultPlan(
            crashes=(WorkerCrash(rank=2, on_recv=1, tag="start_pipeline"),), timeout=1.0
        ).save(plan_path)
        assert main(
            ["learn", "trains", "--p", "2", "--seed", "1", "--fault-plan", plan_path]
        ) == 0
        out = capsys.readouterr().out
        assert "declared dead" in out
        assert "eval-cache" in out

    def test_learn_fault_plan_requires_parallel(self, tmp_path):
        from repro.fault.plan import FaultPlan

        plan_path = str(tmp_path / "plan.json")
        FaultPlan(supervise=True).save(plan_path)
        assert main(["learn", "trains", "--fault-plan", plan_path]) == 2

    def test_checkpoint_and_resume_sequential(self, tmp_path, capsys):
        import glob

        ckpt_dir = str(tmp_path / "ckpts")
        assert main(["learn", "trains", "--seed", "1", "--checkpoint-dir", ckpt_dir]) == 0
        full = capsys.readouterr().out
        ckpts = sorted(glob.glob(ckpt_dir + "/*.ckpt"))
        assert ckpts
        assert main(["resume", ckpts[0]]) == 0
        resumed = capsys.readouterr().out
        # the resumed run reports the same learned clauses
        full_rules = [l for l in full.splitlines() if l.endswith(".") and ":-" in l]
        res_rules = [l for l in resumed.splitlines() if l.endswith(".") and ":-" in l]
        assert res_rules == full_rules

    def test_checkpoint_and_resume_parallel(self, tmp_path, capsys):
        import glob

        ckpt_dir = str(tmp_path / "ckpts")
        assert main(
            ["learn", "trains", "--p", "2", "--seed", "1", "--checkpoint-dir", ckpt_dir]
        ) == 0
        capsys.readouterr()
        ckpts = sorted(glob.glob(ckpt_dir + "/*.ckpt"))
        assert ckpts
        assert main(["resume", ckpts[0]]) == 0
        assert "resuming p2mdie on trains" in capsys.readouterr().out

    def test_faults_sweep(self, capsys):
        assert main(
            ["faults", "--dataset", "trains", "--ps", "2", "--timeout", "1.0"]
        ) == 0
        out = capsys.readouterr().out
        assert "Fault-injection sweep" in out
        assert "crash" in out
        assert "False" not in out  # every scenario kept parity


class TestTrace:
    def test_renders_gantt(self, capsys):
        assert main(["trace", "trains", "--p", "2", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "rank 1" in out
        assert "busy fractions" in out


class TestTables:
    def test_table1_only(self, capsys):
        assert main(["tables", "--which", "1", "--datasets", "trains"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out

    def test_small_matrix(self, capsys):
        rc = main(
            [
                "tables",
                "--which", "4,5",
                "--datasets", "trains",
                "--folds", "2",
                "--ps", "2",
                "--seed", "1",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "Table 4" in out and "Table 5" in out


class TestExport:
    def test_writes_problem_files(self, tmp_path, capsys):
        assert main(["export", "trains", str(tmp_path / "out"), "--seed", "1"]) == 0
        assert (tmp_path / "out" / "bk.pl").exists()
        assert (tmp_path / "out" / "pos.f").exists()
        assert (tmp_path / "out" / "neg.n").exists()
        assert (tmp_path / "out" / "modes.pl").exists()
        # exported problem is re-loadable
        from repro.ilp.modes import ModeSet
        from repro.logic.io import load_problem

        kb, pos, neg, modes = load_problem(tmp_path / "out")
        assert pos and neg
        ModeSet(modes).validate()


class TestService:
    """Offline service verbs (the socket path is covered by tests/service)."""

    @pytest.fixture
    def populated_registry(self, tmp_path):
        from repro.service import JobSpec, TheoryRegistry, run_job

        outcome = run_job(JobSpec(dataset="trains", algo="mdie", seed=0))
        registry = TheoryRegistry(str(tmp_path / "reg"))
        for _ in range(2):
            registry.publish(
                "trains-th", outcome.theory, config_sig=outcome.config_sig,
                provenance={"dataset": "trains", "seed": "0", "scale": "small"},
            )
        return str(tmp_path / "reg")

    def test_registry_list_show_promote(self, populated_registry, capsys):
        assert main(["registry", "--registry-dir", populated_registry, "list"]) == 0
        assert "trains-th: versions [1, 2]" in capsys.readouterr().out
        assert main(["registry", "--registry-dir", populated_registry, "promote", "trains-th", "1"]) == 0
        capsys.readouterr()
        assert main(["registry", "--registry-dir", populated_registry, "show", "trains-th"]) == 0
        out = capsys.readouterr().out
        assert "trains-th v1" in out and "eastbound" in out

    def test_registry_diff(self, populated_registry, capsys):
        assert main(["registry", "--registry-dir", populated_registry, "diff", "trains-th", "1", "2"]) == 0
        assert "0 added, 0 removed" in capsys.readouterr().out

    def test_query_dataset_confusion(self, populated_registry, capsys):
        assert main(["query", "trains-th", "--registry-dir", populated_registry]) == 0
        out = capsys.readouterr().out
        assert "tp=" in out and "accuracy=" in out

    def test_query_examples_file(self, populated_registry, tmp_path, capsys):
        examples = tmp_path / "examples.txt"
        examples.write_text("% comment\neastbound(east1).\n\n")
        assert main([
            "query", "trains-th", "--registry-dir", populated_registry,
            "--examples", str(examples),
        ]) == 0
        assert "covered" in capsys.readouterr().out

    def test_jobs_unreachable_server_exits_cleanly(self, capsys):
        # Port 1 is never listening; the client must not traceback.
        assert main(["jobs", "status", "--port", "1"]) == 2
        assert "is `repro serve` running?" in capsys.readouterr().err

"""Tests for the mpi4py port adapter.

mpi4py is not installed in this environment, so these tests exercise
:func:`drive_with_mpi` against a *fake* communicator implementing the
mpi4py subset the adapter uses — verifying the documented 1:1 mapping
(and the timed-receive / halt surfaces the fault-tolerance protocol
needs) without an MPI runtime.
"""

import time

import pytest

from repro.cluster.mpi_backend import (
    HALT_TAG,
    MPIContext,
    MPIHalt,
    _TAG_IDS,
    drive_with_mpi,
    mpi_available,
)
from repro.cluster.process import SimProcess


class FakeStatus:
    def __init__(self):
        self.source = None
        self.tag = None

    def Get_source(self):
        return self.source

    def Get_tag(self):
        return self.tag


class FakeComm:
    """Single-process loopback comm implementing the mpi4py subset used.

    ``inbox`` entries are ``(payload, src, tag_id)``; ``recv``/``iprobe``
    honour source/tag filters with mpi4py's -1 = ANY convention.
    """

    def __init__(self, rank=0, size=2):
        self._rank = rank
        self._size = size
        self.outbox = []
        self.inbox = []

    def Get_rank(self):
        return self._rank

    def Get_size(self):
        return self._size

    def send(self, payload, dest, tag):
        self.outbox.append((payload, dest, tag))

    def _match(self, source, tag):
        for i, (_, src, t) in enumerate(self.inbox):
            if source not in (-1, src):
                continue
            if tag not in (-1, t):
                continue
            return i
        return None

    def iprobe(self, source=-1, tag=-1):
        return self._match(source, tag) is not None

    def recv(self, source=-1, tag=-1, status=None):
        i = self._match(source, tag)
        if i is None:
            raise AssertionError("blocking recv with empty matching inbox")
        payload, src, t = self.inbox.pop(i)
        if status is not None:
            status.source = src
            status.tag = t
        return payload


# mpi4py's Status/ANY_SOURCE live in the real module; fake them via a stub
# module injected before the adapter imports it.
@pytest.fixture
def fake_mpi(monkeypatch):
    import sys
    import types

    mod = types.ModuleType("mpi4py")
    mpi = types.SimpleNamespace(ANY_SOURCE=-1, ANY_TAG=-1, Status=FakeStatus)
    mod.MPI = mpi
    monkeypatch.setitem(sys.modules, "mpi4py", mod)
    monkeypatch.setitem(sys.modules, "mpi4py.MPI", mpi)
    return mod


class TestAvailability:
    def test_mpi_not_available_here(self):
        # offline environment: the adapter must degrade gracefully
        import sys

        if "mpi4py" not in sys.modules or not hasattr(sys.modules.get("mpi4py"), "MPI"):
            assert mpi_available() in (False, True)  # no crash either way


class TestDriveWithFakeComm:
    def test_send_recv_roundtrip(self, fake_mpi):
        comm = FakeComm(rank=0)
        comm.inbox.append(("pong", 1, 4))  # tag 4 = "rules"

        class Proc(SimProcess):
            def __init__(self):
                super().__init__(0)
                self.got = None

            def run(self, ctx):
                yield ctx.send(1, "ping", tag="rules")
                msg = yield ctx.recv()
                self.got = (msg.src, msg.tag, msg.payload)

        p = Proc()
        drive_with_mpi(p, comm=comm)
        assert comm.outbox == [("ping", 1, 4)]
        assert p.got == (1, "rules", "pong")

    def test_bcast_fans_out(self, fake_mpi):
        comm = FakeComm(rank=0, size=4)

        class Proc(SimProcess):
            def run(self, ctx):
                yield ctx.bcast("hello", tag="stop")

        drive_with_mpi(Proc(0), comm=comm)
        assert [dest for _, dest, _ in comm.outbox] == [1, 2, 3]

    def test_compute_is_noop(self, fake_mpi):
        comm = FakeComm(rank=0)

        class Proc(SimProcess):
            def run(self, ctx):
                yield ctx.compute(10_000, label="search")

        drive_with_mpi(Proc(0), comm=comm)  # no exception, nothing sent
        assert comm.outbox == []

    def test_context_rank_and_size(self, fake_mpi):
        ctx = MPIContext(FakeComm(rank=3, size=8))
        assert ctx.rank == 3
        assert ctx.n_procs == 8


class TestTimedReceives:
    """RecvOp.timeout on MPI: deadline-bounded iprobe polling."""

    def test_timeout_expiry_resumes_with_none(self, fake_mpi):
        ctx = MPIContext(FakeComm(rank=0))
        t0 = time.perf_counter()
        msg = ctx.execute(ctx.recv(timeout=0.05))
        assert msg is None
        assert time.perf_counter() - t0 >= 0.05

    def test_timed_recv_delivers_waiting_message(self, fake_mpi):
        comm = FakeComm(rank=0)
        comm.inbox.append(("payload", 2, _TAG_IDS["result"]))
        ctx = MPIContext(comm)
        msg = ctx.execute(ctx.recv(timeout=5.0))
        assert (msg.src, msg.tag, msg.payload) == (2, "result", "payload")

    def test_timed_recv_honours_tag_filter(self, fake_mpi):
        comm = FakeComm(rank=0)
        comm.inbox.append(("noise", 1, _TAG_IDS["pong"]))
        ctx = MPIContext(comm)
        assert ctx.execute(ctx.recv(tag="rules", timeout=0.02)) is None
        # the non-matching message is still queued, not consumed
        assert len(comm.inbox) == 1

    def test_ft_tags_are_distinct(self, fake_mpi):
        # ping/pong/routing must not collapse onto the unknown-tag id,
        # or tag-filtered heartbeat receives would cross wires.
        comm = FakeComm(rank=0)
        comm.inbox.append(("beat", 1, _TAG_IDS["pong"]))
        ctx = MPIContext(comm)
        msg = ctx.execute(ctx.recv(tag="pong", timeout=1.0))
        assert msg.tag == "pong"


class TestHalt:
    def test_halt_interrupts_watched_recv(self, fake_mpi):
        comm = FakeComm(rank=1)
        comm.inbox.append((None, 0, HALT_TAG))
        ctx = MPIContext(comm, watch_halt=True)
        with pytest.raises(MPIHalt):
            ctx.execute(ctx.recv())

    def test_halt_preferred_over_data(self, fake_mpi):
        comm = FakeComm(rank=1)
        comm.inbox.append(("work", 0, _TAG_IDS["evaluate"]))
        comm.inbox.append((None, 0, HALT_TAG))
        ctx = MPIContext(comm, watch_halt=True)
        with pytest.raises(MPIHalt):
            ctx.execute(ctx.recv())

    def test_unwatched_context_ignores_halt_tag(self, fake_mpi):
        # the plain adapter (drive_with_mpi) never sees backend halts
        comm = FakeComm(rank=1)
        comm.inbox.append(("data", 0, _TAG_IDS["stop"]))
        ctx = MPIContext(comm)
        msg = ctx.execute(ctx.recv())
        assert msg.tag == "stop"

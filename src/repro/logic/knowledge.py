"""Knowledge base: indexed ground facts plus rules.

The background knowledge ``B`` of an ILP problem is a
:class:`KnowledgeBase`.  Facts are stored per predicate indicator with a
first-argument index (the dominant access path during coverage testing:
``bond(m17, A1, A2)`` with the molecule id bound).  Rules are stored per
indicator in insertion order, Prolog-style.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable, Iterator, Optional

from repro.logic.clause import Clause, head_indicator
from repro.logic.parser import parse_program
from repro.logic.terms import Const, Struct, Term, Var, is_ground

__all__ = ["FactStore", "KnowledgeBase"]


class FactStore:
    """Ground facts of a single predicate, with first-argument indexing."""

    __slots__ = ("indicator", "facts", "by_first", "fact_set")

    def __init__(self, indicator: tuple[str, int]):
        self.indicator = indicator
        self.facts: list[Term] = []
        # first-arg constant -> list of facts (only populated for arity >= 1)
        self.by_first: dict[object, list[Term]] = defaultdict(list)
        self.fact_set: set[Term] = set()

    def add(self, fact: Term) -> bool:
        """Add a ground fact; returns False if it was already present."""
        if fact in self.fact_set:
            return False
        self.fact_set.add(fact)
        self.facts.append(fact)
        if isinstance(fact, Struct):
            first = fact.args[0]
            if isinstance(first, Const):
                self.by_first[first.value].append(fact)
        return True

    def candidates(self, goal: Term) -> list[Term]:
        """Facts possibly unifying with ``goal`` (first-arg indexed)."""
        if isinstance(goal, Struct) and goal.args:
            first = goal.args[0]
            if isinstance(first, Const):
                return self.by_first.get(first.value, [])
        return self.facts

    def __len__(self) -> int:
        return len(self.facts)

    def __iter__(self) -> Iterator[Term]:
        return iter(self.facts)

    def __contains__(self, fact: Term) -> bool:
        return fact in self.fact_set


class KnowledgeBase:
    """Background knowledge: ground facts + definite rules.

    >>> kb = KnowledgeBase()
    >>> kb.add_program("parent(ann, bob). parent(bob, cat).")
    >>> kb.add_program("grand(X, Z) :- parent(X, Y), parent(Y, Z).")
    >>> len(kb.facts_for(("parent", 2)))
    2
    """

    def __init__(self, clauses: Iterable[Clause] = ()):
        self._facts: dict[tuple[str, int], FactStore] = {}
        self._rules: dict[tuple[str, int], list[Clause]] = defaultdict(list)
        self.n_facts = 0
        for c in clauses:
            self.add_clause(c)

    # -- mutation ----------------------------------------------------------------
    def add_clause(self, clause: Clause) -> None:
        if clause.is_fact:
            self.add_fact(clause.head)
        else:
            self._rules[clause.indicator].append(clause)

    def add_fact(self, fact: Term) -> bool:
        if not is_ground(fact):
            raise ValueError(f"facts must be ground: {fact}")
        ind = head_indicator(fact)
        store = self._facts.get(ind)
        if store is None:
            store = self._facts[ind] = FactStore(ind)
        added = store.add(fact)
        if added:
            self.n_facts += 1
        return added

    def add_rule(self, clause: Clause) -> None:
        self._rules[clause.indicator].append(clause)

    def remove_rule(self, clause: Clause) -> None:
        self._rules[clause.indicator].remove(clause)

    def add_program(self, src: str) -> None:
        """Parse and add a Prolog-ish program string."""
        for clause in parse_program(src):
            self.add_clause(clause)

    # -- queries -----------------------------------------------------------------
    def facts_for(self, indicator: tuple[str, int]) -> FactStore:
        store = self._facts.get(indicator)
        if store is None:
            store = self._facts[indicator] = FactStore(indicator)
        return store

    def rules_for(self, indicator: tuple[str, int]) -> list[Clause]:
        return self._rules.get(indicator, [])

    def has_predicate(self, indicator: tuple[str, int]) -> bool:
        return bool(self._facts.get(indicator)) or bool(self._rules.get(indicator))

    def predicates(self) -> list[tuple[str, int]]:
        out = set(self._facts) | set(self._rules)
        return sorted(out)

    def __len__(self) -> int:
        """Total clause count (facts + rules)."""
        return self.n_facts + sum(len(rs) for rs in self._rules.values())

    def copy(self) -> "KnowledgeBase":
        """Shallow-ish copy: fact stores are rebuilt, clauses shared."""
        out = KnowledgeBase()
        for ind, store in self._facts.items():
            for f in store.facts:
                out.add_fact(f)
        for ind, rules in self._rules.items():
            out._rules[ind] = list(rules)
        return out

    def stats(self) -> dict:
        return {
            "predicates": len(self.predicates()),
            "facts": self.n_facts,
            "rules": sum(len(rs) for rs in self._rules.values()),
        }

"""Tests for the mpi4py port adapter.

mpi4py is not installed in this environment, so these tests exercise
:func:`drive_with_mpi` against a *fake* communicator implementing the
mpi4py subset the adapter uses — verifying the documented 1:1 mapping
without an MPI runtime.
"""

import pytest

from repro.cluster.mpi_backend import MPIContext, drive_with_mpi, mpi_available
from repro.cluster.process import SimProcess


class FakeStatus:
    def __init__(self):
        self.source = None
        self.tag = None

    def Get_source(self):
        return self.source

    def Get_tag(self):
        return self.tag


class FakeComm:
    """Single-process loopback comm implementing the mpi4py subset used."""

    def __init__(self, rank=0, size=2):
        self._rank = rank
        self._size = size
        self.outbox = []
        self.inbox = []

    def Get_rank(self):
        return self._rank

    def Get_size(self):
        return self._size

    def send(self, payload, dest, tag):
        self.outbox.append((payload, dest, tag))

    def recv(self, source, tag, status):
        payload, src, t = self.inbox.pop(0)
        status.source = src
        status.tag = t
        return payload


# mpi4py's Status/ANY_SOURCE live in the real module; fake them via a stub
# module injected before the adapter imports it.
@pytest.fixture
def fake_mpi(monkeypatch):
    import sys
    import types

    mod = types.ModuleType("mpi4py")
    mpi = types.SimpleNamespace(ANY_SOURCE=-1, ANY_TAG=-1, Status=FakeStatus)
    mod.MPI = mpi
    monkeypatch.setitem(sys.modules, "mpi4py", mod)
    monkeypatch.setitem(sys.modules, "mpi4py.MPI", mpi)
    return mod


class TestAvailability:
    def test_mpi_not_available_here(self):
        # offline environment: the adapter must degrade gracefully
        import sys

        if "mpi4py" not in sys.modules or not hasattr(sys.modules.get("mpi4py"), "MPI"):
            assert mpi_available() in (False, True)  # no crash either way


class TestDriveWithFakeComm:
    def test_send_recv_roundtrip(self, fake_mpi):
        comm = FakeComm(rank=0)
        comm.inbox.append(("pong", 1, 4))  # tag 4 = "rules"

        class Proc(SimProcess):
            def __init__(self):
                super().__init__(0)
                self.got = None

            def run(self, ctx):
                yield ctx.send(1, "ping", tag="rules")
                msg = yield ctx.recv()
                self.got = (msg.src, msg.tag, msg.payload)

        p = Proc()
        drive_with_mpi(p, comm=comm)
        assert comm.outbox == [("ping", 1, 4)]
        assert p.got == (1, "rules", "pong")

    def test_bcast_fans_out(self, fake_mpi):
        comm = FakeComm(rank=0, size=4)

        class Proc(SimProcess):
            def run(self, ctx):
                yield ctx.bcast("hello", tag="stop")

        drive_with_mpi(Proc(0), comm=comm)
        assert [dest for _, dest, _ in comm.outbox] == [1, 2, 3]

    def test_compute_is_noop(self, fake_mpi):
        comm = FakeComm(rank=0)

        class Proc(SimProcess):
            def run(self, ctx):
                yield ctx.compute(10_000, label="search")

        drive_with_mpi(Proc(0), comm=comm)  # no exception, nothing sent
        assert comm.outbox == []

    def test_context_rank_and_size(self, fake_mpi):
        ctx = MPIContext(FakeComm(rank=3, size=8))
        assert ctx.rank == 3
        assert ctx.n_procs == 8

"""Documentation must execute: fenced ``bash``/``python`` blocks in
README.md and docs/*.md are extracted and smoke-run, and markdown links
are checked, so the docs cannot silently rot.

Execution model
---------------
Each runnable block becomes one parametrized test.  Blocks run inside a
session-scoped *sandbox* directory that mirrors the repository root —
``src``, ``examples``, ``tests``, ``docs`` and ``pyproject.toml`` are
symlinked; ``benchmarks/*.py`` are *copied* so a benchmark's
"repo root" resolves inside the sandbox and doc runs never overwrite
the committed ``BENCH_*.json`` artifacts.  Commands therefore execute
exactly as a user would run them from a checkout, while all artifacts
(checkpoints, registries, profiles, bench JSONs) land in the sandbox.

Blocks in one file share the sandbox and run in document order, so a
later block may read artifacts an earlier one wrote (e.g. checkpoint →
resume).

Gating
------
A block annotated with ``<!-- docs-test: full -->`` on the line above
its fence only runs when ``REPRO_DOCS_FULL=1`` (the CI docs job sets
it); ``<!-- docs-test: skip -->`` never runs.  Everything else runs in
the regular suite.  Languages other than ``bash``/``sh``/``python``
(``text``, ``json``, ...) are illustrative and never executed.
"""

from __future__ import annotations

import os
import pathlib
import re
import shutil
import signal
import subprocess
import sys

import pytest

ROOT = pathlib.Path(__file__).resolve().parent.parent
DOC_FILES = [ROOT / "README.md"] + sorted((ROOT / "docs").glob("*.md"))
LINKED_FILES = DOC_FILES + [ROOT / "CHANGES.md", ROOT / "ROADMAP.md"]
FULL = os.environ.get("REPRO_DOCS_FULL", "") not in ("", "0")
#: guard: doc blocks that invoke pytest must never re-enter this module.
NESTED = os.environ.get("REPRO_DOCS_NESTED", "") not in ("", "0")

RUNNABLE = {"bash", "sh", "python"}
BLOCK_TIMEOUT = 900.0

_FENCE_RE = re.compile(r"^```(\w*)\s*$")
_MARK_RE = re.compile(r"<!--\s*docs-test:\s*(\w+)\s*-->")


def extract_blocks(path: pathlib.Path):
    """(lang, code, first_line_no, mark) for every fenced block in ``path``."""
    blocks = []
    lines = path.read_text(encoding="utf-8").splitlines()
    i = 0
    mark = None
    while i < len(lines):
        m = _MARK_RE.search(lines[i])
        if m:
            mark = m.group(1)
            i += 1
            continue
        f = _FENCE_RE.match(lines[i])
        if f:
            lang = f.group(1).lower()
            start = i + 1
            j = start
            while j < len(lines) and not lines[j].startswith("```"):
                j += 1
            blocks.append((lang, "\n".join(lines[start:j]), start + 1, mark))
            mark = None
            i = j + 1
            continue
        if lines[i].strip():
            mark = None  # marks only bind to the directly following fence
        i += 1
    return blocks


def runnable_blocks():
    params = []
    for path in DOC_FILES:
        rel = path.relative_to(ROOT)
        for n, (lang, code, line, mark) in enumerate(extract_blocks(path)):
            if lang in RUNNABLE:
                params.append(
                    pytest.param(path, lang, code, mark, id=f"{rel}:L{line}:{lang}")
                )
    return params


@pytest.fixture(scope="session")
def sandbox(tmp_path_factory):
    """A fake checkout: symlinked sources, copied benchmark scripts."""
    box = tmp_path_factory.mktemp("docs-sandbox")
    for name in ("src", "examples", "tests", "docs", "pyproject.toml"):
        (box / name).symlink_to(ROOT / name)
    bench = box / "benchmarks"
    bench.mkdir()
    for py in (ROOT / "benchmarks").glob("*.py"):
        shutil.copy(py, bench / py.name)
    return box


def _run(argv, cwd, env):
    # Its own session so a timeout can kill the whole tree (doc blocks
    # may background a server or fork backend workers).
    proc = subprocess.Popen(
        argv,
        cwd=cwd,
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        start_new_session=True,
    )
    try:
        out, _ = proc.communicate(timeout=BLOCK_TIMEOUT)
    except subprocess.TimeoutExpired:
        os.killpg(proc.pid, signal.SIGKILL)
        out, _ = proc.communicate()
        pytest.fail(f"doc block timed out after {BLOCK_TIMEOUT}s:\n{out}")
    finally:
        # Blocks may background processes (the README starts a server with
        # `&`); the block's own shutdown step normally reaps them, but a
        # failed block must not leak a server that poisons later blocks
        # (e.g. by holding the documented port).
        try:
            os.killpg(proc.pid, signal.SIGKILL)
        except (ProcessLookupError, PermissionError):
            pass
    return proc.returncode, out


@pytest.mark.skipif(NESTED, reason="doc block re-entered the doc tests")
@pytest.mark.parametrize("path,lang,code,mark", runnable_blocks())
def test_doc_block_executes(path, lang, code, mark, sandbox):
    if mark == "skip":
        pytest.skip("annotated docs-test: skip")
    if mark == "full" and not FULL:
        pytest.skip("needs REPRO_DOCS_FULL=1 (run by the CI docs job)")
    env = dict(os.environ)
    env["REPRO_DOCS_NESTED"] = "1"
    env.pop("PYTEST_CURRENT_TEST", None)
    if lang == "python":
        # Standalone python snippets don't set PYTHONPATH themselves.
        env["PYTHONPATH"] = str(sandbox / "src")
        script = sandbox / "_doc_block.py"
        script.write_text(code, encoding="utf-8")
        argv = [sys.executable, str(script)]
    else:
        script = sandbox / "_doc_block.sh"
        script.write_text(code, encoding="utf-8")
        argv = ["bash", "-e", str(script)]
    rc, out = _run(argv, cwd=sandbox, env=env)
    assert rc == 0, (
        f"documented {lang} block at {path.name} exited {rc}:\n"
        f"--- block ---\n{code}\n--- output ---\n{out}"
    )


# -- link integrity ---------------------------------------------------------------

_LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_HEADING_RE = re.compile(r"^#{1,6}\s+(.*?)\s*$", re.MULTILINE)


def _slugify(heading: str) -> str:
    """GitHub-style anchor slug (enough for our own headings)."""
    slug = heading.strip().lower()
    slug = re.sub(r"[`*_]", "", slug)
    slug = re.sub(r"[^\w\- ]", "", slug)
    return slug.replace(" ", "-")


def _anchors(path: pathlib.Path) -> set:
    return {_slugify(h) for h in _HEADING_RE.findall(path.read_text(encoding="utf-8"))}


@pytest.mark.parametrize(
    "path", LINKED_FILES, ids=[str(p.relative_to(ROOT)) for p in LINKED_FILES]
)
def test_markdown_links_resolve(path):
    text = path.read_text(encoding="utf-8")
    problems = []
    for target in _LINK_RE.findall(text):
        if target.startswith(("http://", "https://", "mailto:")):
            continue  # external links are not checked (offline CI)
        base, _, anchor = target.partition("#")
        dest = path if not base else (path.parent / base)
        if not dest.exists():
            problems.append(f"{target}: file {base} does not exist")
            continue
        if anchor and dest.suffix == ".md" and anchor not in _anchors(dest):
            problems.append(f"{target}: no heading for anchor #{anchor}")
    assert not problems, f"{path.name}: broken links:\n" + "\n".join(problems)


def test_docs_mention_every_cli_command():
    """docs/api.md's CLI table must cover every registered subcommand."""
    from repro.cli import build_parser

    api = (ROOT / "docs" / "api.md").read_text(encoding="utf-8")
    sub = next(
        a for a in build_parser()._actions
        if a.__class__.__name__ == "_SubParsersAction"
    )
    missing = [cmd for cmd in sub.choices if f"`{cmd}" not in api and f"| `{cmd}" not in api]
    assert not missing, f"docs/api.md misses CLI commands: {missing}"

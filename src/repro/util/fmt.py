"""Text-table rendering used by the experiment harness.

The benchmark harness prints the same rows the paper reports (Tables 1-6);
these helpers keep that output aligned and consistent.
"""

from __future__ import annotations

from typing import Sequence


def fmt_int(x: int | float) -> str:
    """Thousands-separated integer rendering, matching the paper (e.g. 3,231)."""
    return f"{int(round(x)):,}"


def fmt_float(x: float, nd: int = 2) -> str:
    return f"{x:.{nd}f}"


def fmt_mbytes(nbytes: int | float) -> str:
    """Bytes -> whole MBytes, as reported in Table 4."""
    return fmt_int(nbytes / (1024.0 * 1024.0))


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render a simple aligned text table.

    >>> print(render_table(["a", "b"], [[1, 22], [333, 4]]))
    a    b
    1    22
    333  4
    """
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
        lines.append("-" * max(len(title), sum(widths) + 2 * (len(widths) - 1)))
    for r in cells:
        lines.append("  ".join(c.ljust(w) for c, w in zip(r, widths)).rstrip())
    return "\n".join(lines)

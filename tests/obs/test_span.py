"""Tests for the telemetry span layer: wire round-trips, Tracer, JSONL."""

import json
import math
import threading

import pytest

from repro.cluster.process import ComputeInterval as CI
from repro.obs.span import (
    NULL_TRACER,
    Span,
    SpanBatch,
    Tracer,
    decode_batch,
    encode_batch,
    intervals_from_spans,
    read_spans_jsonl,
    set_tracing,
    spans_from_intervals,
    tracing_enabled,
    write_spans_jsonl,
)
from repro.parallel import wire


class TestSpan:
    def test_duration(self):
        assert Span(1, "saturate", 2.0, 3.5).duration == 1.5

    def test_dict_round_trip(self):
        s = Span(3, "search(s2)", 0.125, 0.75, (("epoch", "4"), ("stage", "2")))
        assert Span.from_dict(s.to_dict()) == s

    def test_dict_omits_empty_attrs(self):
        assert "attrs" not in Span(0, "load", 0.0, 1.0).to_dict()


class TestWireCodec:
    def test_batch_round_trip(self):
        batch = SpanBatch(
            rank=2,
            spans=(
                Span(2, "saturate", 0.0, 0.25),
                Span(2, "evaluate", 0.25, 1.0, (("epoch", "1"),)),
            ),
        )
        data = wire.encode_always(batch)
        assert data is not None
        assert wire.decode(data) == batch

    def test_f64_is_exact(self):
        # Wall-clock timestamps must survive the wire bit-for-bit —
        # f64 fields are raw IEEE-754, not varint-quantised.
        awkward = (0.1, 1e-9, 12345.6789, math.pi, 2.0**52 + 0.5)
        spans = tuple(Span(0, "compute", v, v + 0.1) for v in awkward)
        out = wire.decode(wire.encode_always(SpanBatch(0, spans)))
        for orig, got in zip(spans, out.spans):
            assert got.start == orig.start  # exact equality, not approx
            assert got.end == orig.end

    def test_encode_decode_batch_helpers(self):
        trace = [CI(1, 0.0, 0.5, "load"), CI(1, 0.5, 2.0, "search(s1)")]
        back = decode_batch(encode_batch(1, trace))
        assert back == trace

    def test_decode_batch_rejects_other_messages(self):
        from repro.parallel.messages import Ping

        data = wire.encode_always(Ping(token=1))
        with pytest.raises(wire.WireError):
            decode_batch(data)


class TestConversions:
    def test_lossless_round_trip(self):
        trace = [CI(0, 0.0, 1.0, "aggregate"), CI(3, 1.0, 4.0, "recover")]
        assert intervals_from_spans(spans_from_intervals(trace)) == trace


class TestTracingGate:
    def test_env_default_off(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        set_tracing(None)
        assert not tracing_enabled()

    def test_env_on(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE", "1")
        set_tracing(None)
        assert tracing_enabled()
        set_tracing(None)

    def test_override_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE", "1")
        set_tracing(False)
        try:
            assert not tracing_enabled()
        finally:
            set_tracing(None)


class TestTracer:
    def test_span_context_manager_records(self):
        ticks = iter([1.0, 3.5])
        t = Tracer(rank=4, clock=lambda: next(ticks))
        with t.span("op:query", client="c1"):
            pass
        (s,) = t.spans()
        assert s == Span(4, "op:query", 1.0, 3.5, (("client", "c1"),))

    def test_record_sorts_attrs(self):
        t = Tracer()
        t.record("x", 0.0, 1.0, zeta="1", alpha="2")
        (s,) = t.spans()
        assert s.attrs == (("alpha", "2"), ("zeta", "1"))

    def test_span_recorded_even_on_exception(self):
        t = Tracer(clock=iter([0.0, 1.0]).__next__)
        with pytest.raises(RuntimeError):
            with t.span("boom"):
                raise RuntimeError("x")
        assert len(t.spans()) == 1

    def test_thread_safety(self):
        t = Tracer()
        threads = [
            threading.Thread(
                target=lambda: [t.record("w", 0.0, 1.0) for _ in range(200)]
            )
            for _ in range(4)
        ]
        for th in threads:
            th.start()
        for th in threads:
            th.join()
        assert len(t.spans()) == 800

    def test_jsonl_sink_write_through(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        t = Tracer(rank=1, sink=path)
        t.record("load", 0.0, 0.5)
        t.record("evaluate", 0.5, 1.0, epoch="2")
        t.close()
        back = read_spans_jsonl(path)
        assert back == t.spans()

    def test_batch(self):
        t = Tracer(rank=7)
        t.record("a", 0.0, 1.0)
        assert t.batch() == SpanBatch(rank=7, spans=tuple(t.spans()))


class TestNullTracer:
    def test_is_inert(self):
        assert not NULL_TRACER.enabled
        with NULL_TRACER.span("anything", k="v"):
            pass
        NULL_TRACER.record("x", 0.0, 1.0)
        assert NULL_TRACER.spans() == []
        assert NULL_TRACER.batch() == SpanBatch(rank=0, spans=())
        NULL_TRACER.close()  # no-op, must not raise


class TestJsonl:
    def test_write_read_round_trip(self, tmp_path):
        path = str(tmp_path / "spans.jsonl")
        spans = [Span(0, "load", 0.0, 1.0), Span(1, "mark_covered", 1.0, 2.0, (("n", "3"),))]
        assert write_spans_jsonl(path, spans) == 2
        assert read_spans_jsonl(path) == spans

    def test_one_object_per_line(self, tmp_path):
        path = str(tmp_path / "spans.jsonl")
        write_spans_jsonl(path, [Span(0, "a", 0.0, 1.0)])
        with open(path) as f:
            lines = [ln for ln in f.read().splitlines() if ln]
        assert len(lines) == 1
        assert json.loads(lines[0])["name"] == "a"

    def test_skips_blank_lines(self, tmp_path):
        path = str(tmp_path / "spans.jsonl")
        with open(path, "w") as f:
            f.write(json.dumps(Span(0, "a", 0.0, 1.0).to_dict()) + "\n\n")
        assert len(read_spans_jsonl(path)) == 1

"""Example partitioning (master step 1, Fig. 5 line 2).

"The master randomly and evenly partitions the examples into p subsets" —
positives and negatives are shuffled independently and dealt round-robin,
so subset sizes differ by at most one example.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Sequence

from repro.logic.terms import Term

__all__ = ["Partition", "partition_examples"]


@dataclass(frozen=True)
class Partition:
    """One worker's share of the training data."""

    pos: tuple[Term, ...]
    neg: tuple[Term, ...]

    @property
    def n_pos(self) -> int:
        return len(self.pos)

    @property
    def n_neg(self) -> int:
        return len(self.neg)


def partition_examples(
    pos: Sequence[Term],
    neg: Sequence[Term],
    p: int,
    rng: random.Random,
) -> list[Partition]:
    """Random even split of (pos, neg) into ``p`` partitions.

    Deterministic given the RNG state.  Every example lands in exactly one
    partition; sizes are balanced to within one.
    """
    if p < 1:
        raise ValueError("p must be >= 1")
    pos_idx = list(range(len(pos)))
    neg_idx = list(range(len(neg)))
    rng.shuffle(pos_idx)
    rng.shuffle(neg_idx)
    out = []
    for k in range(p):
        out.append(
            Partition(
                pos=tuple(pos[i] for i in pos_idx[k::p]),
                neg=tuple(neg[i] for i in neg_idx[k::p]),
            )
        )
    return out

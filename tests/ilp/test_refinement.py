"""Unit tests for the bottom-clause-guided refinement operator."""

import pytest

from repro.ilp.bottom import build_bottom
from repro.ilp.config import ILPConfig
from repro.ilp.refinement import SearchRule, refinements, rule_vars_in_scope, start_rule
from repro.logic.subsumption import theta_subsumes


@pytest.fixture
def bottom(family_engine, family_modes, family_config, family_pos):
    return build_bottom(family_pos[0], family_engine, family_modes, family_config)


class TestStartRule:
    def test_bare_head(self, bottom):
        sr = start_rule(bottom)
        assert sr.clause.body == ()
        assert sr.last_index == -1


class TestRefinements:
    def test_children_extend_by_one(self, bottom, family_config):
        sr = start_rule(bottom)
        for child in refinements(sr, bottom, family_config):
            assert len(child.clause.body) == 1
            assert child.last_index >= 0

    def test_indices_strictly_increase(self, bottom, family_config):
        sr = start_rule(bottom)
        kids = list(refinements(sr, bottom, family_config))
        for child in kids:
            for gc in refinements(child, bottom, family_config):
                assert gc.last_index > child.last_index

    def test_connectivity(self, bottom, family_config):
        # every refinement's new literal has its inputs in scope
        sr = start_rule(bottom)
        frontier = [sr]
        for _ in range(2):
            nxt = []
            for r in frontier:
                scope = rule_vars_in_scope(r, bottom)
                for child in refinements(r, bottom, family_config):
                    new_lit_index = child.last_index
                    bl = bottom.literals[new_lit_index]
                    assert bl.input_vars <= scope
                    nxt.append(child)
            frontier = nxt

    def test_no_duplicate_subsequences(self, bottom, family_config):
        # exhaustive 2-level expansion generates distinct clauses
        sr = start_rule(bottom)
        seen = set()
        for child in refinements(sr, bottom, family_config):
            for gc in refinements(child, bottom, family_config):
                assert gc.clause not in seen
                seen.add(gc.clause)

    def test_max_clause_length_stops(self, bottom):
        cfg = ILPConfig(max_clause_length=1)
        sr = start_rule(bottom)
        child = next(iter(refinements(sr, bottom, cfg)))
        assert list(refinements(child, bottom, cfg)) == []

    def test_refinement_specialises(self, bottom, family_config):
        # each child is θ-subsumed by its parent (generality decreases)
        sr = start_rule(bottom)
        for child in refinements(sr, bottom, family_config):
            assert theta_subsumes(sr.clause, child.clause)

    def test_deterministic_order(self, bottom, family_config):
        a = [c.clause for c in refinements(start_rule(bottom), bottom, family_config)]
        b = [c.clause for c in refinements(start_rule(bottom), bottom, family_config)]
        assert a == b


class TestSearchRule:
    def test_len_is_body_length(self, bottom):
        sr = start_rule(bottom)
        assert len(sr) == 0

    def test_frozen(self, bottom):
        sr = start_rule(bottom)
        with pytest.raises(AttributeError):
            sr.last_index = 5

"""Concurrent learning-job scheduler over a shared pool of backend slots.

The scheduler owns ``slots`` worker threads.  Each thread pops the
highest-priority queued job (ties FIFO) and executes it through
:func:`repro.service.jobs.run_job`.  Jobs on the ``local`` backend do
their work in real child processes, so slots give genuine parallelism;
``sim`` jobs interleave under the GIL but still share the queue,
priorities and lifecycle.

Lifecycle::

    queued -> running -> done | failed
       \\         \\-> cancelled   (preemptible jobs: between chunks)
        \\-> cancelled             (any queued job)

**Preemption & resume.**  A job with ``preemptible=True`` (and a
checkpoint-capable algorithm) runs in epoch *chunks*: each chunk resumes
from the newest checkpoint and advances ``chunk_epochs`` covering epochs
(reusing :mod:`repro.fault.checkpoint` — the same machinery behind
``repro resume``).  Between chunks the scheduler honours cancellation
and shutdown requests; because every chunk boundary is an ordinary
checkpoint, the final theory is bit-identical to a one-shot run.

**Durability.**  With a ``state_dir``, every job persists a wire-encoded
:class:`~repro.service.jobs.JobRecord` per state transition plus its
checkpoints, and a fresh scheduler over the same directory
:meth:`~JobScheduler.recover_jobs` — interrupted (``running``) and
``queued`` jobs are re-queued, resuming mid-run where a checkpoint
exists.
"""

from __future__ import annotations

import heapq
import os
import tempfile
import threading
from dataclasses import dataclass, field
from typing import Optional

from repro.parallel import wire
from repro.service.jobs import JobOutcome, JobRecord, JobSpec, OutcomeSummary, run_job

__all__ = ["JobScheduler", "SchedulerError", "TERMINAL_STATES"]

#: states a job never leaves.
TERMINAL_STATES = ("done", "failed", "cancelled")


class SchedulerError(RuntimeError):
    """Unknown job id, bad transition, or use after close."""


@dataclass
class _Job:
    """Scheduler-internal mutable job handle."""

    record: JobRecord
    outcome: Optional[JobOutcome] = None
    cancel: threading.Event = field(default_factory=threading.Event)
    #: owned TemporaryDirectory when the scheduler has no state_dir.
    _tmp: Optional[tempfile.TemporaryDirectory] = None

    def cleanup_tmp(self) -> None:
        """Drop the owned checkpoint temp dir (terminal states only)."""
        if self._tmp is not None:
            self._tmp.cleanup()
            self._tmp = None


class JobScheduler:
    """Run many learning jobs concurrently over ``slots`` worker threads.

    Parameters
    ----------
    slots:
        Number of jobs executed concurrently (the shared backend pool).
    state_dir:
        Durable root: per-job records + checkpoints live in
        ``state_dir/<job-id>/``.  ``None`` keeps everything in memory
        (preemptible jobs checkpoint into a temporary directory).
    registry:
        Optional :class:`~repro.service.registry.TheoryRegistry`; jobs
        with ``register_as`` publish their learned theory on success.
    chunk_epochs:
        Epochs per chunk for preemptible jobs (cancellation latency
        knob; smaller = more responsive, more per-chunk setup).
    start:
        Start worker threads immediately (pass ``False`` to stage jobs
        first — used by tests and by ``recover_jobs``-then-start flows).
    """

    def __init__(
        self,
        slots: int = 2,
        state_dir: Optional[str] = None,
        registry=None,
        chunk_epochs: int = 1,
        start: bool = True,
    ):
        if slots < 1:
            raise ValueError("slots must be >= 1")
        if chunk_epochs < 1:
            raise ValueError("chunk_epochs must be >= 1")
        self.slots = slots
        self.state_dir = state_dir
        self.registry = registry
        self.chunk_epochs = chunk_epochs
        self._lock = threading.Lock()
        self._cv = threading.Condition(self._lock)
        self._jobs: dict[str, _Job] = {}
        self._queue: list[tuple[int, int, str]] = []  # (-priority, seq, job_id)
        self._seq = 0
        self._stop = False
        self._closed = False
        self._threads: list[threading.Thread] = []
        if state_dir:
            os.makedirs(state_dir, exist_ok=True)
        self._started = False
        if start:
            self.start()

    # -- lifecycle ---------------------------------------------------------------

    def start(self) -> None:
        """Start the worker threads (idempotent)."""
        if self._started:
            return
        self._started = True
        for i in range(self.slots):
            t = threading.Thread(
                target=self._worker_loop, name=f"repro-job-slot-{i}", daemon=True
            )
            t.start()
            self._threads.append(t)

    def close(self, drain: bool = True, timeout: Optional[float] = None) -> None:
        """Shut the scheduler down.

        ``drain=True`` waits for every queued/running job to reach a
        terminal state first.  ``drain=False`` stops as soon as possible:
        queued jobs stay ``queued`` and preemptible running jobs park at
        their next chunk boundary, still ``running`` — both are
        re-queued by :meth:`recover_jobs` on a fresh scheduler over the
        same ``state_dir``.
        """
        if drain:
            self.wait_all(timeout=timeout)
        with self._cv:
            self._stop = True
            self._closed = True
            self._cv.notify_all()
        for t in self._threads:
            t.join(timeout=timeout)

    def __enter__(self) -> "JobScheduler":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.close(drain=exc == (None, None, None))

    # -- submission & queries ----------------------------------------------------

    def submit(self, spec: JobSpec) -> str:
        """Queue one job; returns its id (``job-NNNN``, submission order)."""
        with self._cv:
            if self._closed:
                raise SchedulerError("scheduler is closed")
            self._seq += 1
            job_id = f"job-{self._seq:04d}"
            record = JobRecord(job_id=job_id, seq=self._seq, spec=spec, state="queued")
            job = _Job(record=record)
            self._jobs[job_id] = job
            self._persist(job)
            heapq.heappush(self._queue, (-spec.priority, self._seq, job_id))
            self._cv.notify()
            return job_id

    def _get(self, job_id: str) -> _Job:
        try:
            return self._jobs[job_id]
        except KeyError:
            raise SchedulerError(f"unknown job {job_id!r}") from None

    def status(self, job_id: str) -> dict:
        """Plain-data status of one job (includes the outcome when done)."""
        with self._lock:
            job = self._get(job_id)
            d = job.record.to_dict()
            if job.outcome is not None:
                d["outcome"] = job.outcome.summary()
            return d

    def jobs(self) -> list[dict]:
        """Status of every known job, in submission order."""
        with self._lock:
            return [j.record.to_dict() for j in sorted(self._jobs.values(), key=lambda j: j.record.seq)]

    def result(self, job_id: str) -> JobOutcome:
        """The outcome of a ``done`` job (raises otherwise)."""
        with self._lock:
            job = self._get(job_id)
            if job.record.state != "done":
                raise SchedulerError(f"job {job_id} is {job.record.state}, not done")
            if job.outcome is None:
                raise SchedulerError(
                    f"job {job_id} finished under a previous scheduler; its outcome "
                    "is not retained across restarts (published theories live in "
                    "the registry)"
                )
            return job.outcome

    def cancel(self, job_id: str) -> bool:
        """Request cancellation.

        Queued jobs cancel immediately.  A *running* preemptible job is
        flagged and parks ``cancelled`` at its next chunk boundary
        (checkpoints retained).  A running non-preemptible job cannot be
        interrupted — returns ``False`` (it will still run to
        completion).  Terminal jobs return ``False``.
        """
        with self._cv:
            job = self._get(job_id)
            state = job.record.state
            if state == "queued":
                self._transition(job, "cancelled")
                self._cv.notify_all()
                return True
            spec = job.record.spec
            if state == "running" and spec.preemptible and spec.checkpointable:
                # (JobSpec validation rejects preemptible non-checkpointable
                # specs; the checkpointable guard is defense in depth — the
                # flag is only honoured on the chunked path.)
                job.cancel.set()
                return True
            return False

    def wait(self, job_id: str, timeout: Optional[float] = None) -> dict:
        """Block until the job reaches a terminal state; returns status."""
        with self._cv:
            job = self._get(job_id)
            ok = self._cv.wait_for(
                lambda: job.record.state in TERMINAL_STATES, timeout=timeout
            )
            if not ok:
                raise SchedulerError(f"timed out waiting for {job_id}")
        return self.status(job_id)

    def wait_all(self, timeout: Optional[float] = None) -> None:
        """Block until no job is queued or running."""
        with self._cv:
            ok = self._cv.wait_for(
                lambda: all(
                    j.record.state in TERMINAL_STATES for j in self._jobs.values()
                ),
                timeout=timeout,
            )
            if not ok:
                raise SchedulerError("timed out draining the job queue")

    # -- durability --------------------------------------------------------------

    def _job_dir(self, job_id: str) -> Optional[str]:
        return os.path.join(self.state_dir, job_id) if self.state_dir else None

    def _persist(self, job: _Job) -> None:
        jdir = self._job_dir(job.record.job_id)
        if jdir is None:
            return
        os.makedirs(jdir, exist_ok=True)
        data = wire.encode_always(job.record)
        tmp = os.path.join(jdir, "job.rec.tmp")
        with open(tmp, "wb") as fh:
            fh.write(data)
        os.replace(tmp, os.path.join(jdir, "job.rec"))

    def recover_jobs(self) -> list[str]:
        """Reload jobs persisted under ``state_dir`` by a prior scheduler.

        ``queued`` and ``running`` records are re-queued (a ``running``
        job resumes from its newest checkpoint, where one exists —
        non-checkpointed interrupted jobs simply start over, which is
        safe because job execution is deterministic and side-effect-free
        until completion).  Terminal records are loaded for status only.
        Returns the re-queued job ids.
        """
        if not self.state_dir:
            raise SchedulerError("recover_jobs needs a state_dir")
        requeued: list[str] = []
        with self._cv:
            for name in sorted(os.listdir(self.state_dir)):
                rec_path = os.path.join(self.state_dir, name, "job.rec")
                if not os.path.isfile(rec_path) or name in self._jobs:
                    continue
                with open(rec_path, "rb") as fh:
                    record = wire.decode(fh.read())
                if not isinstance(record, JobRecord):
                    continue
                job = _Job(record=record)
                self._jobs[record.job_id] = job
                self._seq = max(self._seq, record.seq)
                if record.state in ("queued", "running"):
                    record = record.replace(state="queued")
                    job.record = record
                    self._persist(job)
                    heapq.heappush(
                        self._queue, (-record.spec.priority, record.seq, record.job_id)
                    )
                    requeued.append(record.job_id)
            self._cv.notify_all()
        return requeued

    def gc(self, keep: int = 0) -> list[str]:
        """Drop terminal jobs older than the newest ``keep`` of them.

        Retention for long-lived servers: done/failed/cancelled jobs
        (and their ``state_dir`` record + checkpoint directories) are
        removed oldest-first, keeping the ``keep`` most recent terminal
        jobs for inspection (0 = drop all terminal jobs).  Queued and
        running jobs are never touched, and job ids are never reused —
        the submission sequence keeps counting.  Returns the removed ids.
        """
        import shutil

        if keep < 0:
            raise ValueError("keep must be >= 0")
        with self._cv:
            terminal = [
                j
                for j in sorted(self._jobs.values(), key=lambda j: j.record.seq)
                if j.record.state in TERMINAL_STATES
            ]
            victims = terminal[: len(terminal) - keep] if keep else terminal
            removed = []
            for job in victims:
                job_id = job.record.job_id
                del self._jobs[job_id]
                job.cleanup_tmp()
                jdir = self._job_dir(job_id)
                if jdir is not None and os.path.isdir(jdir):
                    shutil.rmtree(jdir, ignore_errors=True)
                removed.append(job_id)
            return removed

    # -- execution ---------------------------------------------------------------

    def _transition(self, job: _Job, state: str, **kw) -> None:
        # Caller holds the lock.
        job.record = job.record.replace(state=state, **kw)
        self._persist(job)

    def _worker_loop(self) -> None:
        while True:
            with self._cv:
                while not self._stop and not self._queue:
                    self._cv.wait()
                if self._stop:
                    return
                _, _, job_id = heapq.heappop(self._queue)
                job = self._jobs[job_id]
                if job.record.state != "queued":  # cancelled while queued
                    continue
                self._transition(job, "running")
            try:
                self._execute(job)
            except BaseException as exc:  # noqa: BLE001 - job isolation boundary
                with self._cv:
                    self._transition(job, "failed", error=f"{type(exc).__name__}: {exc}")
                    self._cv.notify_all()
                job.cleanup_tmp()

    def _checkpoint_dir_for(self, job: _Job) -> str:
        jdir = self._job_dir(job.record.job_id)
        if jdir is not None:
            path = os.path.join(jdir, "ckpt")
        else:
            if job._tmp is None:
                job._tmp = tempfile.TemporaryDirectory(prefix="repro-job-")
            path = job._tmp.name
        os.makedirs(path, exist_ok=True)
        return path

    @staticmethod
    def _latest_checkpoint(ckpt_dir: str):
        import re

        from repro.fault.checkpoint import load_checkpoint

        # Numeric max: epoch_%04d pads to 4 digits but keeps growing, and
        # "epoch_10000" sorts before "epoch_9999" lexicographically.
        best = None
        best_epoch = -1
        for n in os.listdir(ckpt_dir):
            m = re.match(r"^epoch_(\d+)\.ckpt$", n)
            if m and int(m.group(1)) > best_epoch:
                best_epoch = int(m.group(1))
                best = n
        if best is None:
            return None
        return load_checkpoint(os.path.join(ckpt_dir, best))

    def _execute(self, job: _Job) -> None:
        spec = job.record.spec
        if spec.preemptible and spec.checkpointable:
            outcome = self._run_chunked(job)
        else:
            ckpt = self._checkpoint_dir_for(job) if spec.checkpointable and self.state_dir else None
            # A recovered job resumes from whatever checkpoint the
            # interrupted scheduler left behind instead of recomputing
            # completed epochs (bit-identical either way).
            resume = self._latest_checkpoint(ckpt) if ckpt else None
            outcome = run_job(spec, checkpoint_dir=ckpt, resume=resume)
        if outcome is None:  # parked (shutdown) or cancelled mid-run
            with self._cv:
                self._cv.notify_all()
            return
        # Publish before the terminal transition so a registry failure
        # surfaces as a failed job, not a silently unpublished one.
        if spec.register_as and self.registry is not None:
            self._publish(job, outcome)
        with self._cv:
            job.outcome = outcome
            # The durable record embeds the outcome digest, so `done`
            # survives a scheduler restart with its result, not just its
            # state string.
            self._transition(
                job, "done", epochs_done=outcome.epochs,
                outcome=OutcomeSummary.from_outcome(outcome),
            )
            self._cv.notify_all()
        job.cleanup_tmp()

    def _run_chunked(self, job: _Job) -> Optional[JobOutcome]:
        """Advance a preemptible job chunk by chunk; None = did not finish."""
        spec = job.record.spec
        ckpt_dir = self._checkpoint_dir_for(job)
        while True:
            state = self._latest_checkpoint(ckpt_dir)
            done_epochs = state.epoch if state is not None else 0
            target = done_epochs + self.chunk_epochs
            if spec.max_epochs is not None:
                target = min(target, spec.max_epochs)
            outcome = run_job(
                spec, checkpoint_dir=ckpt_dir, resume=state, max_epochs=target
            )
            with self._cv:
                job.record = job.record.replace(epochs_done=outcome.epochs)
                self._persist(job)
                hit_cap = spec.max_epochs is not None and outcome.epochs >= spec.max_epochs
                # No-progress chunks mean the run terminated for its own
                # reasons (stall, exhausted seed pool) exactly at a chunk
                # boundary — treat as finished rather than spinning.
                stalled = outcome.epochs <= done_epochs
                if outcome.finished or hit_cap or stalled:
                    return outcome
                if job.cancel.is_set():
                    self._transition(job, "cancelled")
                    self._cv.notify_all()
                    # (Terminal without state_dir: the checkpoints can never
                    # be resumed, so the owned temp dir goes too.)
                    job.cleanup_tmp()
                    return None
                if self._stop:
                    # Park as "running": recover_jobs re-queues and the
                    # next chunk resumes from the checkpoint just written.
                    return None

    def _publish(self, job: _Job, outcome: JobOutcome) -> None:
        spec = job.record.spec
        provenance = {
            "job": job.record.job_id,
            "dataset": spec.dataset,
            "scale": spec.scale,
            "algo": spec.algo,
            "p": str(spec.p),
            "seed": str(spec.seed),
            "backend": spec.backend,
            "epochs": str(outcome.epochs),
            "uncovered": str(outcome.uncovered),
            "train_accuracy": f"{outcome.train_accuracy:.2f}",
        }
        self.registry.publish(
            spec.register_as,
            outcome.theory,
            config_sig=outcome.config_sig,
            provenance=provenance,
        )

"""Example partitioning (master step 1, Fig. 5 line 2).

"The master randomly and evenly partitions the examples into p subsets" —
positives and negatives are shuffled independently and dealt round-robin,
so subset sizes differ by at most one example.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Sequence

from repro.logic.terms import Term

__all__ = ["Partition", "partition_examples", "shard_spans"]


@dataclass(frozen=True)
class Partition:
    """One worker's share of the training data."""

    pos: tuple[Term, ...]
    neg: tuple[Term, ...]

    @property
    def n_pos(self) -> int:
        return len(self.pos)

    @property
    def n_neg(self) -> int:
        return len(self.neg)


def partition_examples(
    pos: Sequence[Term],
    neg: Sequence[Term],
    p: int,
    rng: random.Random,
) -> list[Partition]:
    """Random even split of (pos, neg) into ``p`` partitions.

    Deterministic given the RNG state.  Every example lands in exactly one
    partition; sizes are balanced to within one.
    """
    if p < 1:
        raise ValueError("p must be >= 1")
    pos_idx = list(range(len(pos)))
    neg_idx = list(range(len(neg)))
    rng.shuffle(pos_idx)
    rng.shuffle(neg_idx)
    out = []
    for k in range(p):
        out.append(
            Partition(
                pos=tuple(pos[i] for i in pos_idx[k::p]),
                neg=tuple(neg[i] for i in neg_idx[k::p]),
            )
        )
    return out


def shard_spans(n: int, shards: int) -> list[tuple[int, int]]:
    """Contiguous ``[lo, hi)`` spans covering ``range(n)``, balanced to ±1.

    The query tier's order-preserving counterpart of
    :func:`partition_examples`: learning partitions shuffle (the paper's
    random even split), but query shards must reassemble positionally,
    so each shard takes one contiguous slice.  Earlier spans get the
    extra examples, every span is non-empty, and asking for more shards
    than examples simply yields fewer spans.
    """
    if shards < 1:
        raise ValueError("shards must be >= 1")
    shards = min(shards, n) or 1
    base, extra = divmod(n, shards)
    spans = []
    lo = 0
    for k in range(shards):
        hi = lo + base + (1 if k < extra else 0)
        spans.append((lo, hi))
        lo = hi
    return spans

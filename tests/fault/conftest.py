"""Shared fixtures for the fault-tolerance tests: the krki chess-endgame
dataset (multi-epoch on a few workers — crashes can hit mid-run) and the
faster trains dataset for single-epoch scenarios."""

import pytest

from repro.datasets import make_dataset


@pytest.fixture(scope="session")
def krki():
    return make_dataset("krki", seed=0)


@pytest.fixture(scope="session")
def trains():
    return make_dataset("trains", seed=0)

"""Coverage-inheritance invariants.

A refinement's coverage is a subset of its parent's, so evaluation may
skip every example the parent provably does not cover.  These tests pin
the safety side of that optimisation: narrowing never changes results,
never resurrects a pruned example, survives liveness changes, and the
candidate masks shipped between master and workers round-trip soundly.
"""

import pytest

from repro.datasets import make_dataset
from repro.ilp import store as store_mod
from repro.ilp.coverage import coverage_eval, popcount
from repro.ilp.store import ExampleStore
from repro.logic.clause import Clause
from repro.logic.engine import Engine, QueryBudget
from repro.logic.knowledge import KnowledgeBase
from repro.logic.parser import parse_clause, parse_term


@pytest.fixture
def ds():
    return make_dataset("trains", seed=0, scale="small")


@pytest.fixture
def engine(ds):
    return Engine(ds.kb, ds.config.engine_budget())


PARENT = "eastbound(A) :- has_car(A, B)."
CHILD = "eastbound(A) :- has_car(A, B), closed(B)."
GRANDCHILD = "eastbound(A) :- has_car(A, B), closed(B), short(B)."


class TestNoResurrection:
    def test_child_bits_within_parent_candidates(self, ds, engine):
        store = ExampleStore(ds.pos, ds.neg)
        parent, child = parse_clause(PARENT), parse_clause(CHILD)
        store.evaluate(engine, parent)
        pc, nc = store.cand_masks(parent)
        cs = store.evaluate(engine, child, parent=parent)
        assert cs.pos_bits & ~pc == 0
        assert cs.neg_bits & ~nc == 0

    def test_inherited_equals_from_scratch(self, ds, engine):
        parent, child, gchild = map(parse_clause, (PARENT, CHILD, GRANDCHILD))
        inh = ExampleStore(ds.pos, ds.neg)
        inh.evaluate(engine, parent)
        a = inh.evaluate(engine, child, parent=parent)
        b = inh.evaluate(engine, gchild, parent=child)
        fresh = ExampleStore(ds.pos, ds.neg)
        assert fresh.evaluate(engine, child).pos_bits == a.pos_bits
        assert fresh.evaluate(engine, child).neg_bits == a.neg_bits
        assert fresh.evaluate(engine, gchild).pos_bits == b.pos_bits
        assert inh.inherited_evals() == 2

    def test_pruned_examples_never_retested(self, ds, engine, monkeypatch):
        """The narrowed evaluation literally never touches an example
        outside the parent's candidate mask."""
        store = ExampleStore(ds.pos, ds.neg)
        parent, child = parse_clause(PARENT), parse_clause(CHILD)
        store.evaluate(engine, parent)
        pc, nc = store.cand_masks(parent)
        seen: list = []
        orig = store_mod.coverage_eval

        def spy(eng, rule, examples, candidates=None):
            seen.append(candidates)
            return orig(eng, rule, examples, candidates)

        monkeypatch.setattr(store_mod, "coverage_eval", spy)
        store.evaluate(engine, child, parent=parent)
        cand_p, cand_n = seen
        assert cand_p is not None and cand_p & ~pc == 0
        assert cand_n is not None and cand_n & ~nc == 0

    def test_killed_examples_not_retested_but_results_exact(self, ds, engine):
        store = ExampleStore(ds.pos, ds.neg)
        parent, child = parse_clause(PARENT), parse_clause(CHILD)
        cs = store.evaluate(engine, parent)
        first = cs.pos_bits & -cs.pos_bits
        store.kill(first)
        cs2 = store.evaluate(engine, child, parent=parent)
        assert cs2.pos_bits & first == 0  # dead bit masked out
        fresh = ExampleStore(ds.pos, ds.neg)
        full = fresh.evaluate(engine, child)
        assert cs2.pos_bits == full.pos_bits & store.alive
        assert cs2.neg_bits == full.neg_bits

    def test_explicit_candidate_masks(self, ds, engine):
        child = parse_clause(CHILD)
        full = ExampleStore(ds.pos, ds.neg).evaluate(engine, child)
        masks = ((1 << len(ds.pos)) - 1, (1 << len(ds.neg)) - 1)
        store = ExampleStore(ds.pos, ds.neg)
        cs = store.evaluate(engine, child, candidates=masks)
        assert (cs.pos_bits, cs.neg_bits) == (full.pos_bits, full.neg_bits)

    def test_exhausted_examples_stay_candidates(self):
        """An example the parent failed on *only because the budget ran
        out* must remain in the child's candidate set."""
        kb = KnowledgeBase()
        kb.add_program(" ".join(f"e(c, x{i})." for i in range(60)) + " e(c, hit). w(hit). g(c).")
        engine = Engine(kb, QueryBudget(max_depth=6, max_ops=40))
        examples = [parse_term("t(c)")]
        parent = parse_clause("t(X) :- e(X, Y), w(Y).")
        bits, exh = coverage_eval(engine, parent, examples)
        assert bits == 0 and exh == 1  # ran out before reaching 'hit'
        store = ExampleStore(examples, [])
        store.evaluate(engine, parent)
        pc, _ = store.cand_masks(parent)
        assert pc == 1  # exhausted example still a candidate for children


class TestLivenessRestoration:
    def test_parent_scope_respected_after_restore(self):
        """A structurally-derived parent cached with a *shrunken* scope
        must not prune restored examples it was never tested on."""
        kb = KnowledgeBase()
        kb.add_program("q(a). q(b). r(a). r(b).")
        examples = [parse_term("p(a)"), parse_term("p(b)")]
        engine = Engine(kb)
        store = ExampleStore(examples, [])
        store.kill(0b01)  # example 0 covered by an earlier rule
        parent = parse_clause("p(X) :- q(X).")
        store.evaluate(engine, parent)  # scope = 0b10 only
        store.alive = 0b11  # liveness restored (independent baseline)
        child = parse_clause("p(X) :- q(X), r(X).")
        cs = store.evaluate(engine, child)  # derives `parent` structurally
        assert cs.pos_bits == 0b11
        assert cs.pos == 2

    def test_top_up_after_alive_restore(self, ds, engine):
        """The independent baseline restores liveness after its local run;
        cached entries must top themselves up to stay exact."""
        store = ExampleStore(ds.pos, ds.neg)
        child = parse_clause(CHILD)
        cs = store.evaluate(engine, child)
        store.kill(cs.pos_bits)
        other = parse_clause(GRANDCHILD)
        partial = store.evaluate(engine, other)  # evaluated on survivors only
        assert partial.pos_bits & cs.pos_bits == 0
        store.alive = (1 << store.n_pos) - 1  # restore, as IndependentWorker does
        topped = store.evaluate(engine, other)
        fresh = ExampleStore(ds.pos, ds.neg).evaluate(engine, other)
        assert topped.pos_bits == fresh.pos_bits
        assert topped.pos == fresh.pos


class TestReorderMemo:
    def test_reordering_computed_once_across_clear_cache(self, ds, engine, monkeypatch):
        calls = []
        orig = store_mod.optimize_clause_order

        def spy(kb, clause):
            calls.append(clause)
            return orig(kb, clause)

        monkeypatch.setattr(store_mod, "optimize_clause_order", spy)
        store = ExampleStore(ds.pos, ds.neg, reorder_body=True)
        child = parse_clause(CHILD)
        store.evaluate(engine, child)
        assert len(calls) == 1
        store.clear_cache()
        store.evaluate(engine, child)  # cache miss, but reordering is memoized
        assert len(calls) == 1

    def test_reorder_disables_unsound_inheritance(self, engine):
        """With body reordering, rule-defined body literals may permute
        ahead of each other and loosen the depth profile — inheritance
        must stand down for such clauses."""
        kb = KnowledgeBase()
        kb.add_program("e(a, b). d(X) :- e(X, Y).")
        store = ExampleStore([parse_term("t(a)")], [], reorder_body=True)
        rule_factonly = parse_clause("t(X) :- e(X, Y).")
        rule_derived = parse_clause("t(X) :- d(X), e(X, Y).")
        assert store._inherit_ok(kb, rule_factonly) is True
        assert store._inherit_ok(kb, rule_derived) is False


class TestWorkerRoundTrip:
    def test_request_candidates_match_uncandidated_results(self, ds):
        """Evaluating with master-shipped candidate masks returns exactly
        the stats a cold full evaluation returns."""
        engine = Engine(ds.kb, ds.config.engine_budget())
        parent, child = parse_clause(PARENT), parse_clause(CHILD)
        # worker A evaluates the parent and reports its masks
        worker_a = ExampleStore(ds.pos, ds.neg)
        worker_a.evaluate(engine, parent)
        masks = worker_a.cand_masks(parent)
        # ... the master echoes them back for the child's evaluation
        narrowed = worker_a.evaluate(engine, child, parent=parent, candidates=masks)
        cold = ExampleStore(ds.pos, ds.neg).evaluate(engine, child)
        assert (narrowed.pos, narrowed.neg) == (cold.pos, cold.neg)
        assert narrowed.pos_bits == cold.pos_bits

    def test_inheritance_flag_off_is_seed_faithful(self, ds):
        engine = Engine(ds.kb, ds.config.engine_budget())
        store = ExampleStore(ds.pos, ds.neg, inherit=False)
        parent, child = parse_clause(PARENT), parse_clause(CHILD)
        store.evaluate(engine, parent)
        cs = store.evaluate(engine, child, parent=parent)
        assert store.inherited_evals() == 0
        fresh = ExampleStore(ds.pos, ds.neg, inherit=False).evaluate(engine, child)
        assert (cs.pos_bits, cs.neg_bits) == (fresh.pos_bits, fresh.neg_bits)

    def test_p2mdie_inheritance_on_off_same_theory(self):
        from repro.parallel.p2mdie import run_p2mdie

        ds = make_dataset("krki", seed=0, n_pos=24, n_neg=24)
        on = run_p2mdie(
            ds.kb, ds.pos, ds.neg, ds.modes, ds.config.replace(coverage_inheritance=True), p=2, seed=0
        )
        off = run_p2mdie(
            ds.kb, ds.pos, ds.neg, ds.modes, ds.config.replace(coverage_inheritance=False), p=2, seed=0
        )
        assert sorted(str(c) for c in on.theory) == sorted(str(c) for c in off.theory)
        assert on.uncovered == off.uncovered

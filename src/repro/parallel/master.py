"""P²-MDIE master process (paper Fig. 5).

Per epoch the master:

1. starts ``p`` pipelines, one rooted at each worker (lines 6-8);
2. collects the ``p`` pipelines' final rule sets into ``RulesBag``
   (line 9);
3. globally evaluates the bag (broadcast ``evaluate`` / gather results,
   lines 10-11);
4. greedily consumes the bag (lines 12-22): accept the globally best rule,
   broadcast ``mark_covered``, re-evaluate the remainder, drop rules that
   are no longer good.

Epochs repeat until every positive example is covered or learning stalls
(no pipeline produced an acceptable rule for ``stall_limit`` consecutive
epochs — the paper's generic "stopping condition").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.cluster.message import Tag
from repro.cluster.process import ProcContext, SimProcess
from repro.ilp.config import ILPConfig
from repro.ilp.heuristics import is_good, score_rule
from repro.ilp.prune import ClauseBag
from repro.logic.clause import Clause, Theory
from repro.parallel.messages import (
    EvaluateRequest,
    EvaluateResult,
    ExamplesReport,
    GatherExamples,
    LoadExamples,
    MarkCovered,
    PipelineRules,
    Repartition,
    StartPipeline,
    Stop,
    per_worker_evaluate_requests,
    record_candidate_masks,
)
from repro.util.rng import make_rng

__all__ = ["P2Master", "EpochLog"]


@dataclass
class EpochLog:
    """Per-epoch bookkeeping (drives Tables 3-5 and the trace figure)."""

    epoch: int
    bag_size: int
    accepted: list[Clause] = field(default_factory=list)
    pos_covered: int = 0


class P2Master(SimProcess):
    """Rank-0 master driving the worker ring."""

    def __init__(
        self,
        n_workers: int,
        total_pos: int,
        config: ILPConfig,
        width: Optional[int] = ...,
        max_epochs: Optional[int] = None,
        stall_limit: int = 3,
        repartition_each_epoch: bool = False,
        seed: int = 0,
        ship_data: Optional[list] = None,
    ):
        super().__init__(0)
        self.n_workers = n_workers
        self.total_pos = total_pos
        self.config = config
        self.width = config.pipeline_width if width is ... else width
        self.max_epochs = max_epochs
        self.stall_limit = stall_limit
        #: §4.1's rejected alternative, implemented so its cost is
        #: measurable: reshuffle the remaining examples over the workers
        #: before every epoch after the first.
        self.repartition_each_epoch = repartition_each_epoch
        self.seed = seed
        #: when set (no shared filesystem), a list of per-worker LoadData
        #: payloads to ship instead of LoadExamples notifications (§4.1).
        self.ship_data = ship_data
        # outputs, populated by run():
        self.theory = Theory()
        self.epoch_logs: list[EpochLog] = []
        self.remaining: int = total_pos
        # coverage-inheritance bookkeeping: rank -> {clause ->
        # (pos_cand, neg_cand)} local candidate masks reported by each
        # worker (lineage itself is structural: parent = body minus the
        # appended last literal).
        self._worker_cand: dict[int, dict[Clause, tuple[int, int]]] = {}

    @property
    def epochs(self) -> int:
        return len(self.epoch_logs)

    def _workers(self) -> list[int]:
        return list(range(1, self.n_workers + 1))

    # -- global evaluation round (Fig. 5 lines 10-11 / 18-19) --------------------
    def _global_eval(self, ctx: ProcContext, clauses: list[Clause]):
        """Broadcast evaluate(); gather and sum per-worker stats.

        With coverage inheritance, when the master knows a worker's local
        candidate masks for a rule's parent (reported in an earlier
        round), it ships them back so the worker narrows its
        re-evaluation even on a cold cache — at the price of per-worker
        (rather than broadcast) requests.
        """
        rules = tuple(clauses)
        parents: Optional[tuple] = None
        if self.config.coverage_inheritance:
            parents = tuple(Clause(c.head, c.body[:-1]) if c.body else None for c in clauses)
        requests = per_worker_evaluate_requests(rules, parents, self._workers(), self._worker_cand)
        if requests is None:
            yield ctx.bcast(EvaluateRequest(rules=rules), tag=Tag.EVALUATE, dsts=self._workers())
        else:
            for k, req in requests.items():
                yield ctx.send(k, req, tag=Tag.EVALUATE)
        totals = [[0, 0] for _ in clauses]
        for _ in self._workers():
            msg = yield ctx.recv(tag=Tag.RESULT)
            res: EvaluateResult = msg.payload
            record_candidate_masks(self._worker_cand, clauses, res)
            for i, rs in enumerate(res.stats):
                totals[i][0] += rs.pos
                totals[i][1] += rs.neg
        # Aggregation cost is linear in bag size.
        yield ctx.compute(len(clauses) + 1, label="aggregate")
        return [(p, n) for p, n in totals]

    def _drop_not_good(self, bag: ClauseBag, stats: dict) -> None:
        """Fig. 5 lines 20-21: discard rules that stopped being good."""
        for clause in bag:
            p, n = stats[clause]
            if not is_good(p, n, self.config):
                bag.discard(clause)

    def _pick_best(self, bag: ClauseBag, stats: dict) -> Clause:
        """Fig. 5 line 13: best rule by global-coverage heuristic."""

        def key(clause: Clause):
            p, n = stats[clause]
            s = score_rule(p, n, len(clause.body) + 1, self.config)
            return (-s, len(clause.body), str(clause))

        return min(bag, key=key)

    # -- process body ----------------------------------------------------------------
    def run(self, ctx: ProcContext):
        # Fig. 5 line 3: broadcast load_examples (partition id == rank), or
        # ship the data itself when no shared filesystem is assumed.
        for k in self._workers():
            if self.ship_data is not None:
                yield ctx.send(k, self.ship_data[k - 1], tag=Tag.LOAD_EXAMPLES)
            else:
                yield ctx.send(k, LoadExamples(partition_id=k), tag=Tag.LOAD_EXAMPLES)

        stall = 0
        while self.remaining > 0:
            if self.max_epochs is not None and self.epochs >= self.max_epochs:
                break
            if self.repartition_each_epoch and self.epochs > 0:
                yield from self._repartition_round(ctx)
            log = EpochLog(epoch=self.epochs + 1, bag_size=0)
            # Masks only serve narrowing within this epoch's bag rounds;
            # dropping them per epoch bounds the master's memory.
            self._worker_cand.clear()

            # Lines 6-8: start p pipelines.
            for k in self._workers():
                yield ctx.send(k, StartPipeline(width=self.width), tag=Tag.START_PIPELINE)
            # Line 9: collect every pipeline's rules (renamed-apart
            # variants collapse to one bag slot via their variant key).
            bag = ClauseBag(self.config.clause_fingerprints)
            for _ in self._workers():
                msg = yield ctx.recv(tag=Tag.RULES)
                rules: PipelineRules = msg.payload
                for sr in rules.rules:
                    bag.add(sr.clause)
            log.bag_size = bag.reported_size

            if bag:
                # Lines 10-11: global evaluation of the whole bag.
                clauses = bag.clauses()
                totals = yield from self._global_eval(ctx, clauses)
                stats = dict(zip(clauses, totals))
                self._drop_not_good(bag, stats)

                # Lines 12-22: consume the bag.
                while bag:
                    best = self._pick_best(bag, stats)
                    bag.discard(best)
                    self.theory.add(best)
                    log.accepted.append(best)
                    covered = stats[best][0]
                    log.pos_covered += covered
                    self.remaining -= covered
                    yield ctx.bcast(MarkCovered(rule=best), tag=Tag.MARK_COVERED, dsts=self._workers())
                    if not bag:
                        break
                    clauses = bag.clauses()
                    totals = yield from self._global_eval(ctx, clauses)
                    stats = dict(zip(clauses, totals))
                    self._drop_not_good(bag, stats)

            self.epoch_logs.append(log)
            if log.accepted:
                stall = 0
            else:
                stall += 1
                if stall >= self.stall_limit:
                    break

        yield ctx.bcast(Stop(), tag=Tag.STOP, dsts=self._workers())

    # -- repartitioning extension (§4.1's rejected alternative) ------------------
    def _repartition_round(self, ctx: ProcContext):
        """Gather remaining examples, reshuffle, redistribute.

        This ships example terms over the network (no shared-FS shortcut
        mid-run) — precisely the communication the paper declined to pay.
        """
        from repro.parallel.partition import partition_examples

        yield ctx.bcast(GatherExamples(), tag=Tag.LOAD_EXAMPLES, dsts=self._workers())
        pos: list = []
        neg: list = []
        for _ in self._workers():
            msg = yield ctx.recv(tag=Tag.LOAD_EXAMPLES)
            report: ExamplesReport = msg.payload
            pos.extend(report.pos)
            neg.extend(report.neg)
        # Deterministic global ordering before the shuffle.
        pos.sort(key=str)
        neg.sort(key=str)
        rng = make_rng(self.seed, "repartition", self.epochs)
        parts = partition_examples(pos, neg, self.n_workers, rng)
        yield ctx.compute(len(pos) + len(neg) + 1, label="aggregate")
        # Candidate masks are in each worker's local example numbering;
        # repartitioning renumbers everything, so they all expire.
        self._worker_cand.clear()
        for k, part in zip(self._workers(), parts):
            yield ctx.send(k, Repartition(pos=part.pos, neg=part.neg), tag=Tag.LOAD_EXAMPLES)

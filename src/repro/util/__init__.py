"""Small shared utilities: seeded RNG plumbing and formatting helpers."""

from repro.util.rng import RngStream, derive_seed, make_rng
from repro.util.fmt import fmt_float, fmt_int, fmt_mbytes, render_table

__all__ = [
    "RngStream",
    "derive_seed",
    "make_rng",
    "fmt_float",
    "fmt_int",
    "fmt_mbytes",
    "render_table",
]

"""Serialization: knowledge bases, example sets and theories ⇄ Prolog text.

ILP systems of the paper's era exchange everything as Prolog source files
(the "distributed file system" of §4.1 holds exactly such files).  These
helpers write and re-read that format so problems and learned theories
round-trip through plain text — useful for inspecting runs, shipping
problems to a real cluster, and regression-testing the parser.
"""

from __future__ import annotations

import pathlib
from typing import Iterable, Sequence

from repro.logic.clause import Clause, Theory
from repro.logic.knowledge import KnowledgeBase
from repro.logic.parser import parse_program, term_to_str
from repro.logic.terms import Term

__all__ = [
    "clause_to_prolog",
    "theory_to_prolog",
    "kb_to_prolog",
    "examples_to_prolog",
    "read_program",
    "read_examples",
    "save_problem",
    "load_problem",
]


def clause_to_prolog(clause: Clause) -> str:
    """Render one clause in re-parseable Prolog syntax."""
    if not clause.body:
        return f"{term_to_str(clause.head)}."
    body = ",\n    ".join(term_to_str(b) for b in clause.body)
    return f"{term_to_str(clause.head)} :-\n    {body}."


def theory_to_prolog(theory: Theory, header: str = "") -> str:
    lines = []
    if header:
        lines.extend(f"% {line}" for line in header.splitlines())
        lines.append("")
    lines.extend(clause_to_prolog(c) for c in theory)
    return "\n".join(lines) + "\n"


def kb_to_prolog(kb: KnowledgeBase) -> str:
    """Dump a knowledge base: facts grouped per predicate, then rules."""
    lines: list[str] = []
    for ind in kb.predicates():
        store = kb.facts_for(ind)
        if len(store):
            lines.append(f"% {ind[0]}/{ind[1]}: {len(store)} facts")
            lines.extend(f"{term_to_str(f)}." for f in store)
            lines.append("")
    for ind in kb.predicates():
        rules = kb.rules_for(ind)
        if rules:
            lines.append(f"% {ind[0]}/{ind[1]}: {len(rules)} rules")
            lines.extend(clause_to_prolog(r) for r in rules)
            lines.append("")
    return "\n".join(lines)


def examples_to_prolog(examples: Sequence[Term]) -> str:
    return "\n".join(f"{term_to_str(e)}." for e in examples) + "\n"


def read_program(text: str) -> list[Clause]:
    """Parse a Prolog program back into clauses."""
    return parse_program(text)


def read_examples(text: str) -> list[Term]:
    """Parse an example file: each clause must be a ground fact."""
    out = []
    for clause in parse_program(text):
        if clause.body:
            raise ValueError(f"example file contains a rule: {clause}")
        out.append(clause.head)
    return out


def save_problem(
    directory: str | pathlib.Path,
    kb: KnowledgeBase,
    pos: Sequence[Term],
    neg: Sequence[Term],
    modes: Iterable = (),
) -> None:
    """Write an ILP problem in Aleph-style file layout.

    ``<dir>/bk.pl`` (background), ``<dir>/pos.f`` (positives),
    ``<dir>/neg.n`` (negatives), ``<dir>/modes.pl`` (one declaration per
    line as a comment-friendly term).
    """
    d = pathlib.Path(directory)
    d.mkdir(parents=True, exist_ok=True)
    (d / "bk.pl").write_text(kb_to_prolog(kb))
    (d / "pos.f").write_text(examples_to_prolog(pos))
    (d / "neg.n").write_text(examples_to_prolog(neg))
    (d / "modes.pl").write_text("".join(f"{m}.\n" for m in modes))


def load_problem(directory: str | pathlib.Path):
    """Read back a problem written by :func:`save_problem`.

    Returns ``(kb, pos, neg, mode_strings)``; mode declarations are
    returned as strings ready for :class:`repro.ilp.modes.ModeSet`.
    """
    d = pathlib.Path(directory)
    kb = KnowledgeBase()
    for clause in parse_program((d / "bk.pl").read_text()):
        kb.add_clause(clause)
    pos = read_examples((d / "pos.f").read_text())
    neg = read_examples((d / "neg.n").read_text())
    modes = []
    modes_file = d / "modes.pl"
    if modes_file.exists():
        for clause in parse_program(modes_file.read_text()):
            modes.append(term_to_str(clause.head))
    return kb, pos, neg, modes

#!/usr/bin/env python
"""Explore the pipeline-width trade-off on the mesh-like dataset.

The paper found that unconstrained width moved so much data between
stages that 8-processor speedup dropped below linear on mesh and
pyrimidines, while W=10 made it superlinear (§5.3, Tables 2 & 4).  This
example sweeps W and reports virtual time, communication volume, and
model quality side by side.

Run:  python examples/mesh_width_ablation.py [--p 4]
"""

import argparse

from repro.cluster.message import Tag
from repro.datasets import make_dataset
from repro.ilp import accuracy
from repro.logic import Engine
from repro.parallel import run_p2mdie
from repro.util.fmt import fmt_float, render_table


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--p", type=int, default=4, help="number of workers")
    ap.add_argument("--seed", type=int, default=0)
    ap.add_argument("--scale", choices=("small", "paper"), default="small")
    args = ap.parse_args()

    ds = make_dataset("mesh", seed=args.seed, scale=args.scale)
    print(f"dataset: {ds.name}  |E+|={ds.n_pos}  |E-|={ds.n_neg}  p={args.p}\n")
    engine = Engine(ds.kb, ds.config.engine_budget())

    rows = []
    for width in (1, 2, 5, 10, 20, None):
        r = run_p2mdie(
            ds.kb, ds.pos, ds.neg, ds.modes, ds.config, p=args.p, width=width, seed=args.seed
        )
        pipeline_mb = r.comm.bytes_by_tag.get(Tag.LEARN_RULE, 0) / (1024.0 * 1024.0)
        rows.append(
            [
                "nolimit" if width is None else width,
                fmt_float(r.seconds, 1),
                fmt_float(r.mbytes, 3),
                fmt_float(pipeline_mb, 3),
                r.epochs,
                len(r.theory),
                fmt_float(accuracy(engine, r.theory, ds.pos, ds.neg), 1),
            ]
        )
    print(
        render_table(
            ["width", "time(s)", "total MB", "pipeline MB", "epochs", "rules", "train acc %"],
            rows,
            title="Pipeline width sweep: narrower pipelines trade rule choice for bandwidth",
        )
    )


if __name__ == "__main__":
    main()

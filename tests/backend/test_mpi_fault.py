"""MPI fault-injection unit tests (no MPI runtime needed).

The real-cluster legs live in tests/fault/test_ft_matrix.py and the CI
mpi-smoke job; here a fake communicator drives the injection machinery —
retire-in-place crashes, send-adapter message loss, straggler sleeps and
the halt/gather shutdown — so the logic is covered on every host.
"""

import threading
import time

import pytest

from repro.backend import (
    BackendUnavailableError,
    fault_capable_backends,
    fault_injection_scope,
    make_backend,
)
from repro.backend.base import Backend
from repro.backend.mpi import MPIBackend, _AccountingMPIContext, _Retire
from repro.cluster.mpi_backend import _TAG_IDS, MPIContext
from repro.cluster.process import SimProcess
from repro.fault.plan import FaultPlan, Straggler, WorkerCrash


class FakeStatus:
    def __init__(self):
        self.source = None
        self.tag = None

    def Get_source(self):
        return self.source

    def Get_tag(self):
        return self.tag


class FakeComm:
    """Loopback comm with the collective subset MPIBackend.run needs."""

    def __init__(self, rank=0, size=2):
        self._rank = rank
        self._size = size
        self.outbox = []
        self.inbox = []

    def Get_rank(self):
        return self._rank

    def Get_size(self):
        return self._size

    def send(self, payload, dest, tag):
        self.outbox.append((payload, dest, tag))

    def _match(self, source, tag):
        for i, (_, src, t) in enumerate(self.inbox):
            if source not in (-1, src):
                continue
            if tag not in (-1, t):
                continue
            return i
        return None

    def iprobe(self, source=-1, tag=-1):
        return self._match(source, tag) is not None

    def recv(self, source=-1, tag=-1, status=None):
        i = self._match(source, tag)
        if i is None:
            raise AssertionError("blocking recv with empty matching inbox")
        payload, src, t = self.inbox.pop(i)
        if status is not None:
            status.source = src
            status.tag = t
        return payload

    # single-rank collectives: everyone is root
    def gather(self, value, root=0):
        assert self._size == 1
        return [value]

    def bcast(self, value, root=0):
        return value


@pytest.fixture
def fake_mpi(monkeypatch):
    import sys
    import types

    mod = types.ModuleType("mpi4py")
    mpi = types.SimpleNamespace(ANY_SOURCE=-1, ANY_TAG=-1, Status=FakeStatus)
    mod.MPI = mpi
    monkeypatch.setitem(sys.modules, "mpi4py", mod)
    monkeypatch.setitem(sys.modules, "mpi4py.MPI", mpi)
    return mod


def _ctx(comm, **kw):
    return _AccountingMPIContext(MPIContext(comm), record_trace=False, **kw)


class TestSendAdapterLoss:
    def test_nth_send_dropped_sender_charged(self, fake_mpi):
        comm = FakeComm(rank=0, size=3)
        ctx = _ctx(comm, losses={1: frozenset({2})})
        for payload in ("a", "b", "c"):
            ctx.execute(ctx.send(1, payload, tag="rules"))
        # the 2nd message to rank 1 died at the adapter...
        assert [p for p, _, _ in comm.outbox] == ["a", "c"]
        # ...but the sender was charged for all three
        assert ctx.stats.messages == 3
        assert [(r.kind, r.detail) for r in ctx.fault_log] == [("drop", "->1 #2 tag=rules")]

    def test_loss_counts_per_link(self, fake_mpi):
        comm = FakeComm(rank=0, size=3)
        ctx = _ctx(comm, losses={2: frozenset({1})})
        ctx.execute(ctx.send(1, "x", tag="rules"))  # other link: untouched
        ctx.execute(ctx.send(2, "y", tag="rules"))  # link 0->2 #1: dropped
        ctx.execute(ctx.send(2, "z", tag="rules"))
        assert [(p, d) for p, d, _ in comm.outbox] == [("x", 1), ("z", 2)]

    def test_bcast_drops_only_the_lossy_destination(self, fake_mpi):
        comm = FakeComm(rank=0, size=4)
        ctx = _ctx(comm, losses={2: frozenset({1})})
        ctx.execute(ctx.bcast("hello", tag="stop"))
        assert [d for _, d, _ in comm.outbox] == [1, 3]
        assert ctx.stats.messages == 3


class TestRetireInPlace:
    def test_crash_on_nth_matching_recv(self, fake_mpi):
        comm = FakeComm(rank=1)
        comm.inbox.append(("t1", 0, _TAG_IDS["start_pipeline"]))
        comm.inbox.append(("beat", 0, _TAG_IDS["ping"]))
        comm.inbox.append(("t2", 0, _TAG_IDS["start_pipeline"]))
        ctx = _ctx(comm, crash=WorkerCrash(rank=1, on_recv=2, tag="start_pipeline"))
        assert ctx.execute(ctx.recv()).payload == "t1"
        assert ctx.execute(ctx.recv()).payload == "beat"  # wrong tag: not counted
        with pytest.raises(_Retire):
            ctx.execute(ctx.recv())  # 2nd start_pipeline: about to process -> die

    def test_at_time_crashes_are_sim_only(self, fake_mpi):
        comm = FakeComm(rank=1)
        comm.inbox.append(("t1", 0, _TAG_IDS["rules"]))
        ctx = _ctx(comm, crash=WorkerCrash(rank=1, at_time=0.0))
        assert ctx.execute(ctx.recv()).payload == "t1"  # no trigger


class TestStraggler:
    def test_compute_sleeps_extra(self, fake_mpi):
        ctx = _ctx(FakeComm(rank=1), straggler=Straggler(rank=1, factor=2.0))
        time.sleep(0.05)
        t0 = time.perf_counter()
        ctx.execute(ctx.compute(1000))
        # factor 2.0 doubles elapsed compute: ~0.05s extra sleep
        assert time.perf_counter() - t0 >= 0.03


class TestTimedRecvPassThrough:
    def test_timeout_threads_through_accounting_context(self, fake_mpi):
        ctx = _ctx(FakeComm(rank=0))
        op = ctx.recv(src=None, tag=None, timeout=0.01)
        assert op.timeout == 0.01
        assert ctx.execute(op) is None  # empty inbox -> expiry -> None


class TestBackendRunFake:
    def _proc(self):
        class Proc(SimProcess):
            def __init__(self):
                super().__init__(0)
                self.done = False

            def run(self, ctx):
                yield ctx.compute(10)
                self.done = True

        return Proc()

    def test_single_rank_run_assembles_backendrun(self, fake_mpi):
        bk = MPIBackend(comm=FakeComm(rank=0, size=1))
        run = bk.run([self._proc()])
        assert len(run.procs) == 1 and run.procs[0].done
        assert run.fault_log == []

    def test_single_rank_run_with_plan_uses_halt_barrier(self, fake_mpi):
        plan = FaultPlan(supervise=True, timeout=0.5)
        bk = MPIBackend(comm=FakeComm(rank=0, size=1), fault_plan=plan)
        run = bk.run([self._proc()])
        assert len(run.procs) == 1 and run.procs[0].done

    def test_size_mismatch_is_an_error(self, fake_mpi):
        bk = MPIBackend(comm=FakeComm(rank=0, size=1))
        second = self._proc()
        second.rank = 1
        with pytest.raises(ValueError, match="matching -n"):
            bk.run([self._proc(), second])


class TestCapability:
    def test_all_registry_backends_are_fault_capable(self):
        assert fault_capable_backends() == ("sim", "local", "mpi")

    def test_attribute_not_name_drives_the_check(self):
        assert Backend.supports_fault_injection is False
        assert MPIBackend.supports_fault_injection is True

    def test_make_backend_mpi_accepts_a_plan(self, fake_mpi):
        plan = FaultPlan(crashes=(WorkerCrash(rank=1, on_recv=1),), timeout=1.0)
        bk = make_backend("mpi", fault_plan=plan)
        assert isinstance(bk, MPIBackend)
        assert bk.fault_plan == plan

    def test_scope_arms_and_restores_mpi(self, fake_mpi):
        plan = FaultPlan(supervise=True)
        bk = make_backend("mpi")
        with fault_injection_scope(bk, plan):
            assert bk.fault_plan == plan
        assert bk.fault_plan is None

    def test_unsupporting_backend_gets_friendly_error(self):
        class NullBackend(Backend):
            name = "null"

            def run(self, procs):
                raise NotImplementedError

        with pytest.raises(BackendUnavailableError, match="sim, local, mpi"):
            with fault_injection_scope(NullBackend(), FaultPlan(supervise=True)):
                pass


class ClusterComm:
    """Multi-rank in-process fake: one mpi4py-shaped view per rank/thread.

    Point-to-point messaging through shared per-rank queues plus the
    single gather→bcast rendezvous ``MPIBackend.run`` performs, which is
    enough to run the *complete* SPMD protocol — timed receives, retire
    drain loops, the halt barrier and root assembly — without an MPI
    runtime (each rank runs on its own thread instead of its own node).
    """

    def __init__(self, size):
        self.size = size
        self.queues = [[] for _ in range(size)]
        self.cond = threading.Condition()
        self.gathered = {}
        self.bcast_box = []

    def view(self, rank):
        return _RankView(self, rank)


class _RankView:
    def __init__(self, cluster, rank):
        self._c = cluster
        self._rank = rank

    def Get_rank(self):
        return self._rank

    def Get_size(self):
        return self._c.size

    def send(self, payload, dest, tag):
        c = self._c
        with c.cond:
            c.queues[dest].append((payload, self._rank, tag))
            c.cond.notify_all()

    def _match(self, source, tag):
        for i, (_, src, t) in enumerate(self._c.queues[self._rank]):
            if source not in (-1, src):
                continue
            if tag not in (-1, t):
                continue
            return i
        return None

    def iprobe(self, source=-1, tag=-1):
        with self._c.cond:
            return self._match(source, tag) is not None

    def recv(self, source=-1, tag=-1, status=None):
        c = self._c
        with c.cond:
            while True:
                i = self._match(source, tag)
                if i is not None:
                    payload, src, t = c.queues[self._rank].pop(i)
                    if status is not None:
                        status.source = src
                        status.tag = t
                    return payload
                c.cond.wait(0.05)

    # MPIBackend.run performs exactly one gather then one bcast per run,
    # so single-use rendezvous state is sufficient.
    def gather(self, value, root=0):
        c = self._c
        with c.cond:
            c.gathered[self._rank] = value
            c.cond.notify_all()
            while len(c.gathered) < c.size:
                c.cond.wait(0.05)
            if self._rank == root:
                return [c.gathered[r] for r in range(c.size)]
            return None

    def bcast(self, value, root=0):
        c = self._c
        with c.cond:
            if self._rank == root:
                c.bcast_box.append(value)
                c.cond.notify_all()
                return value
            while not c.bcast_box:
                c.cond.wait(0.05)
            return c.bcast_box[0]


class TestThreadedSPMDParity:
    """The full SPMD protocol against real master/worker generators.

    Each MPI rank is a thread holding a :class:`ClusterComm` view; every
    thread makes the identical ``run_p2mdie`` call, exactly like ranks of
    an ``mpiexec`` launch.  The learned theory must be bit-identical to
    the fault-free sim run — crashes, spares, heartbeats and all.
    """

    def _spmd(self, ds, n_ranks, plan, spares=0, p=3):
        from repro.parallel import run_p2mdie

        cluster = ClusterComm(n_ranks)
        results = {}
        errors = {}

        def rank_main(r):
            try:
                bk = MPIBackend(comm=cluster.view(r), fault_plan=plan)
                results[r] = run_p2mdie(
                    ds.kb, ds.pos, ds.neg, ds.modes, ds.config,
                    p=p, width=10, seed=0, backend=bk,
                    fault_plan=plan, spares=spares,
                )
            except BaseException as exc:  # surface in the test, not a hang
                errors[r] = exc

        threads = [threading.Thread(target=rank_main, args=(r,)) for r in range(n_ranks)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=300)
        assert not any(t.is_alive() for t in threads), "SPMD run deadlocked"
        assert not errors, f"rank failures: {errors}"
        return results

    @pytest.fixture(scope="class")
    def krki(self):
        from repro.datasets import make_dataset

        return make_dataset("krki", seed=0)

    @pytest.fixture(scope="class")
    def base(self, krki):
        from repro.parallel import run_p2mdie

        return run_p2mdie(krki.kb, krki.pos, krki.neg, krki.modes, krki.config,
                          p=3, width=10, seed=0)

    def test_fault_free_parity(self, fake_mpi, krki, base):
        results = self._spmd(krki, 4, plan=None)
        assert results[0].theory == base.theory
        # every rank's front-end returns the rank-0 artifacts
        assert results[2].theory == base.theory

    def test_crash_recovery_parity(self, fake_mpi, krki, base):
        plan = FaultPlan(
            crashes=(WorkerCrash(rank=2, on_recv=2, tag="start_pipeline"),), timeout=2.0
        )
        results = self._spmd(krki, 4, plan=plan)
        res = results[0]
        assert res.theory == base.theory
        assert [(l.epoch, l.bag_size, tuple(l.accepted), l.pos_covered) for l in res.epoch_logs] \
            == [(l.epoch, l.bag_size, tuple(l.accepted), l.pos_covered) for l in base.epoch_logs]
        assert any(f.kind == "crash" and f.rank == 2 for f in res.fault_log)
        assert any("declared dead" in ev for ev in res.fault_events)

    def test_crash_with_spare_adoption(self, fake_mpi, krki, base):
        plan = FaultPlan(
            crashes=(WorkerCrash(rank=3, on_recv=1, tag="evaluate"),), timeout=2.0
        )
        results = self._spmd(krki, 5, plan=plan, spares=1)
        assert results[0].theory == base.theory
        assert any("adopted by host 4" in ev for ev in results[0].fault_events)

"""KRK-illegal: chess endgame position legality (extra dataset).

The classic King-Rook-King illegality task (Muggleton et al.) — not in the
paper's Table 1, but squarely in the "variety of other applications" its
future-work section names, and a staple of the ILP systems the paper
builds on.  A position (white king, white rook, black king) is *illegal*
iff, with white to move:

* the two kings are on adjacent or identical squares, or
* the rook shares a file or rank with the black king (it attacks the
  king; the simplification ignores the white king blocking), or
* two pieces occupy one square.

Background knowledge: piece positions per position id, plus coordinate
relations ``adj/2`` and ``eq/2`` over 0..7 — exactly the vocabulary the
target rules need.
"""

from __future__ import annotations

from repro.datasets.base import Dataset, register_dataset
from repro.ilp.config import ILPConfig
from repro.ilp.modes import ModeSet
from repro.logic.knowledge import KnowledgeBase
from repro.logic.terms import atom
from repro.util.rng import make_rng

__all__ = ["make_krki"]


def _is_illegal(wkf, wkr, wrf, wrr, bkf, bkr) -> bool:
    if (wkf, wkr) == (bkf, bkr) or (wkf, wkr) == (wrf, wrr) or (wrf, wrr) == (bkf, bkr):
        return True
    if abs(wkf - bkf) <= 1 and abs(wkr - bkr) <= 1:
        return True
    if wrf == bkf or wrr == bkr:
        return True
    return False


@register_dataset("krki")
def make_krki(
    seed: int = 0,
    scale: str = "small",
    n_pos: int | None = None,
    n_neg: int | None = None,
    label_noise: float = 0.0,
) -> Dataset:
    """Generate a KRK-illegal problem (60+/60- small, 342+/324- 'paper')."""
    if n_pos is None or n_neg is None:
        n_pos, n_neg = (342, 324) if scale == "paper" else (60, 60)
    rng = make_rng(seed, "krki")
    kb = KnowledgeBase()

    # Coordinate background relations (shared by all positions).
    for a in range(8):
        for b in range(8):
            if abs(a - b) <= 1:
                kb.add_fact(atom("adj", a, b))
            if a == b:
                kb.add_fact(atom("eq", a, b))

    pos, neg = [], []
    pid = 0
    attempts = 0
    while (len(pos) < n_pos or len(neg) < n_neg) and attempts < 200 * (n_pos + n_neg):
        attempts += 1
        coords = [rng.randint(0, 7) for _ in range(6)]
        label = _is_illegal(*coords)
        if label_noise > 0 and rng.random() < label_noise:
            label = not label
        target, quota = (pos, n_pos) if label else (neg, n_neg)
        if len(target) >= quota:
            continue
        name = f"pos{pid}"
        pid += 1
        wkf, wkr, wrf, wrr, bkf, bkr = coords
        kb.add_fact(atom("wk", name, wkf, wkr))
        kb.add_fact(atom("wr", name, wrf, wrr))
        kb.add_fact(atom("bk", name, bkf, bkr))
        target.append(atom("illegal", name))
    if len(pos) < n_pos or len(neg) < n_neg:  # pragma: no cover - defensive
        raise RuntimeError("krki generator failed to meet quotas")

    modes = ModeSet(
        [
            "modeh(1, illegal(+pos))",
            "modeb(1, wk(+pos, -coord, -coord))",
            "modeb(1, wr(+pos, -coord, -coord))",
            "modeb(1, bk(+pos, -coord, -coord))",
            "modeb(*, adj(+coord, +coord))",
            "modeb(*, eq(+coord, +coord))",
        ]
    )
    config = ILPConfig(
        max_clause_length=4,
        var_depth=2,
        recall=4,
        noise=max(0, round(label_noise * n_neg)),
        min_pos=2,
        max_nodes=500,
        max_bottom_literals=40,
        pipeline_width=10,
    )
    return Dataset(
        name="krki",
        kb=kb,
        pos=pos,
        neg=neg,
        modes=modes,
        config=config,
        target_description=(
            "illegal(P) :- wk(P,F1,R1), bk(P,F2,R2), adj(F1,F2), adj(R1,R2).  ;  "
            "illegal(P) :- wr(P,F,R), bk(P,F2,R2), eq(F,F2).  ;  "
            "illegal(P) :- wr(P,F,R), bk(P,F2,R2), eq(R,R2)."
        ),
    )

"""Open-loop load generator: schedules, percentiles, end-to-end runs."""

import pytest

from repro.experiments.loadgen import (
    PATTERNS,
    arrival_schedule,
    latency_stats,
    percentile,
    run_loadgen,
)


class TestArrivalSchedule:
    def test_uniform_constant_gaps(self):
        sched = arrival_schedule(5, rate=10.0)
        assert sched == pytest.approx([0.0, 0.1, 0.2, 0.3, 0.4])

    def test_burst_groups_share_a_send_time(self):
        sched = arrival_schedule(8, rate=10.0, pattern="burst", burst_size=4)
        assert sched[:4] == [0.0] * 4
        assert sched[4:] == [pytest.approx(0.4)] * 4

    @pytest.mark.parametrize("pattern", PATTERNS)
    def test_deterministic_given_seed(self, pattern):
        a = arrival_schedule(40, rate=25.0, pattern=pattern, seed=7)
        b = arrival_schedule(40, rate=25.0, pattern=pattern, seed=7)
        assert a == b
        assert len(a) == 40
        assert a[0] == 0.0
        assert all(y >= x for x, y in zip(a, a[1:])), "offsets must be sorted"

    def test_heavytail_seed_changes_schedule_and_rate_holds(self):
        a = arrival_schedule(2000, rate=50.0, pattern="heavytail", seed=1)
        b = arrival_schedule(2000, rate=50.0, pattern="heavytail", seed=2)
        assert a != b
        # Pareto gaps are rescaled so the mean gap is 1/rate: the
        # long-run average rate stays near the target (tail-heavy, so
        # a loose tolerance).
        mean_gap = a[-1] / (len(a) - 1)
        assert mean_gap == pytest.approx(1 / 50.0, rel=0.35)

    def test_pattern_average_rates_agree(self):
        n, rate = 64, 40.0
        uni = arrival_schedule(n, rate)
        bur = arrival_schedule(n, rate, pattern="burst", burst_size=8)
        # Burst keeps the long-run average: last group starts when the
        # uniform schedule would have reached it.
        assert bur[-1] == pytest.approx(uni[-8])

    def test_validation(self):
        with pytest.raises(ValueError, match="n must"):
            arrival_schedule(0, 10.0)
        with pytest.raises(ValueError, match="rate"):
            arrival_schedule(1, 0.0)
        with pytest.raises(ValueError, match="unknown pattern"):
            arrival_schedule(1, 10.0, pattern="tsunami")
        with pytest.raises(ValueError, match="burst_size"):
            arrival_schedule(1, 10.0, pattern="burst", burst_size=0)


class TestPercentiles:
    def test_interpolation(self):
        xs = [10.0, 20.0, 30.0, 40.0]
        assert percentile(xs, 0) == 10.0
        assert percentile(xs, 100) == 40.0
        assert percentile(xs, 50) == 25.0
        assert percentile(list(reversed(xs)), 50) == 25.0, "order must not matter"

    def test_single_sample_and_empty(self):
        assert percentile([3.5], 99) == 3.5
        with pytest.raises(ValueError, match="no samples"):
            percentile([], 50)

    def test_latency_stats_in_milliseconds(self):
        stats = latency_stats([0.010, 0.020, 0.030, 0.040])
        assert stats["n"] == 4
        assert stats["p50_ms"] == pytest.approx(25.0)
        assert stats["max_ms"] == pytest.approx(40.0)
        assert stats["mean_ms"] == pytest.approx(25.0)
        assert stats["p50_ms"] <= stats["p95_ms"] <= stats["p99_ms"]


class _FakeClient:
    """Query endpoint that answers instantly (no sockets)."""

    calls = []

    def query(self, theory, examples, shards=None):
        type(self).calls.append(("query", theory, len(examples), shards))
        return {"ok": True, "n": len(examples)}

    def query_stream(self, theory, examples, shards=None):
        type(self).calls.append(("stream", theory, len(examples), shards))
        yield {"frame": "shard"}
        yield {"frame": "end"}

    def close(self):
        pass


class _FailingClient(_FakeClient):
    def query(self, theory, examples, shards=None):
        raise ConnectionError("synthetic outage")


class TestRunLoadgen:
    def test_report_shape_and_request_count(self):
        _FakeClient.calls = []
        report = run_loadgen(
            _FakeClient, "th", ["e(a)"] * 3, n_requests=10, rate=500.0,
            pattern="burst", concurrency=4,
        )
        assert report["n_requests"] == 10 and report["errors"] == 0
        assert report["pattern"] == "burst" and report["batch"] == 3
        assert report["latency"]["n"] == 10
        assert "first_frame" not in report
        assert len(_FakeClient.calls) == 10
        assert all(c == ("query", "th", 3, None) for c in _FakeClient.calls)

    def test_stream_mode_reports_first_frame_distribution(self):
        _FakeClient.calls = []
        report = run_loadgen(
            _FakeClient, "th", ["e(a)"], n_requests=6, rate=500.0,
            stream=True, shards=2, concurrency=2,
        )
        assert report["stream"] and report["shards"] == 2
        assert report["first_frame"]["n"] == 6
        assert report["latency"]["n"] == 6
        assert all(c[0] == "stream" and c[3] == 2 for c in _FakeClient.calls)

    def test_errors_are_reported_not_raised(self):
        report = run_loadgen(
            _FailingClient, "th", ["e(a)"], n_requests=4, rate=500.0,
        )
        assert report["errors"] == 4
        assert "ConnectionError" in report["error_samples"][0]
        assert "latency" not in report

"""Generate ``docs/api.md`` from the code's own docstrings.

The API reference's signature tables are *generated*, not hand-written:
each table row is built from the live object — ``inspect.signature``
for the call shape, the docstring's first line for the summary — and
the CLI table is walked out of :func:`repro.cli.build_parser`.  Renamed
functions, new parameters, added subcommands and reworded docstrings
all land in the doc on the next ``--write``; CI runs ``--check`` so the
committed page can never drift from the code.

Prose that genuinely is prose (section intros, invariants, the worked
example) lives here as literals — the single source the page is built
from::

    PYTHONPATH=src python -m repro.util.apidoc --check   # CI: drift gate
    PYTHONPATH=src python -m repro.util.apidoc --write   # refresh the page

The worked example block is executed by ``tests/test_docs.py`` like
every fenced block in the docs, so the generator cannot emit a dead
example either.
"""

from __future__ import annotations

import importlib
import inspect
import pathlib
import sys

__all__ = ["render_api_doc", "api_doc_path", "main"]

ROOT = pathlib.Path(__file__).resolve().parents[3]


def api_doc_path() -> pathlib.Path:
    return ROOT / "docs" / "api.md"


# -- signature + summary extraction ------------------------------------------------


def _default_repr(value) -> str:
    if isinstance(value, (bool, int, float, str, bytes, type(None))):
        return repr(value)
    if isinstance(value, tuple) and all(
        isinstance(v, (bool, int, float, str, bytes, type(None))) for v in value
    ):
        return repr(value)
    return "..."


def _signature(obj) -> str:
    """Compact call signature: no annotations, simple defaults only."""
    try:
        sig = inspect.signature(obj)
    except (TypeError, ValueError):
        return ""
    parts = []
    for p in sig.parameters.values():
        if p.name in ("self", "cls"):
            continue
        name = p.name
        if p.kind is inspect.Parameter.VAR_POSITIONAL:
            name = f"*{name}"
        elif p.kind is inspect.Parameter.VAR_KEYWORD:
            name = f"**{name}"
        elif p.default is not inspect.Parameter.empty:
            name = f"{name}={_default_repr(p.default)}"
        parts.append(name)
    return f"({', '.join(parts)})"


def _summary(obj) -> str:
    """First docstring line, table-safe (pipes escaped, one line)."""
    doc = inspect.getdoc(obj) or ""
    first = doc.strip().split("\n", 1)[0].strip()
    return first.replace("|", "\\|")


#: Constants have no docstring of their own (``inspect.getdoc`` falls
#: back to ``dict``/``tuple``), so their summaries are curated here.
_CONST_SUMMARIES = {
    "repro.datasets.DATASETS": "the dataset-generator registry (name → generator)",
    "repro.datasets.SCALES": 'the problem scale names: `("small", "paper")`',
    "repro.service.errors.RETRYABLE_CODES": "error codes a client may safely "
    'retry: `("overloaded", "unavailable", "shutting_down")`',
}


def _table(module_names: list[tuple[str, list[str]]]) -> list[str]:
    """One markdown table covering ``[(module, [name, ...]), ...]``."""
    lines = ["| name | summary (docstring) |", "|------|---------------------|"]
    for module_path, names in module_names:
        module = importlib.import_module(module_path)
        for name in names:
            obj = getattr(module, name)
            if inspect.isfunction(obj) or inspect.isclass(obj):
                shown = f"{name}{_signature(obj)}"
                summary = _summary(obj)
            else:
                shown = name  # a constant: registry dict, tuple of names ...
                summary = _CONST_SUMMARIES.get(f"{module_path}.{name}", "")
            lines.append(f"| `{shown}` | {summary or '—'} |")
    return lines


def _cli_table() -> list[str]:
    """The CLI command table, walked out of the argument parser."""
    from repro.cli import build_parser

    parser = build_parser()
    sub = next(
        a for a in parser._actions if a.__class__.__name__ == "_SubParsersAction"
    )
    helps = {a.dest: a.help or "" for a in sub._choices_actions}
    lines = ["| command | purpose |", "|---------|---------|"]
    for cmd, p in sub.choices.items():
        nested = [
            a for a in p._actions if a.__class__.__name__ == "_SubParsersAction"
        ]
        shown = cmd
        if nested:
            verbs = "\\|".join(nested[0].choices)
            shown = f"{cmd} {verbs}"
        lines.append(f"| `{shown}` | {helps.get(cmd, '').replace('|', chr(92) + '|')} |")
    return lines


# -- the page ----------------------------------------------------------------------

_INTRO = """\
# API reference

A curated map of the public entry points.  **Generated — do not edit by
hand**: signature tables come from the live docstrings via
`repro.util.apidoc` (`PYTHONPATH=src python -m repro.util.apidoc
--write` refreshes the page, `--check` is the CI drift gate).
Docstrings in the source are the authoritative reference — use `pydoc`
(e.g. `PYTHONPATH=src python -m pydoc repro.service.scheduler`) for the
full text.  Sections are ordered by how you would build an application:
datasets → learning → backends → faults → serving."""

_ILPCONFIG = """\
### `repro.ilp.ILPConfig`

The constraint set `C` plus every optimization gate.  Search/language
knobs: `max_clause_length`, `var_depth`, `recall`,
`max_bottom_literals`, `noise`, `min_pos`, `max_nodes`,
`pipeline_width`, `heuristic`, `search_strategy` (`bfs` / `best_first`
/ `beam`), `beam_width`, `engine_max_depth`, `engine_max_ops`.

Optimization flags — all pure optimizations, pinned bit-identical by
the parity test suites:

| flag | default | effect |
|------|---------|--------|
| `coverage_kernel` | `None` (env `REPRO_COVERAGE_KERNEL`, → `"new"`) | iterative SLD machine + ground-goal memo + multi-arg indexing vs the seed `"legacy"` interpreter |
| `coverage_inheritance` | `True` | evaluate refinements only on what the parent rule covered (plus budget-exhausted examples) |
| `clause_fingerprints` | `True` | key evaluation caches and master rule bags by the renaming-invariant `variant_key` |
| `saturation_cache` | `True` | memoize `build_bottom` per (example, KB version, bias, budget); replays recorded op cost |
| `wire_codec` | `None` (env `REPRO_WIRE`, → on) | compact symbol-table message encoding for accounting **and** real transports |
| `reorder_body` | `False` | selectivity-based body-literal reordering before coverage testing |

Sampled coverage (see [sampling.md](sampling.md)) is the one gated mode
that is *not* bit-identical — search trajectories may differ — but every
accepted clause is re-evaluated exactly and certified:

| flag | default | effect |
|------|---------|--------|
| `coverage_sampling` | `None` (env `REPRO_COVERAGE_SAMPLING`, → off) | screen candidates on a stratified example sample; exact re-evaluation before acceptance |
| `sample_fraction` | `0.25` | fraction of each stratum (alive positives / negatives) drawn into the sample |
| `sample_min` | `16` | minimum stratum sample size; smaller strata are evaluated in full |
| `sample_delta` | `0.05` | Hoeffding confidence parameter for the screening bounds |"""

_BACKEND_NOTE = """\
All `run_*` front-ends accept `backend=` as an instance or name; the
learned theory is identical across substrates for the same seed/config
(`tests/backend/test_parity.py`)."""

_FAULT_NOTE = """\
An empty plan is byte-identical to no plan; a non-empty plan never
changes the learned theory, only time and communication."""

_SERVICE_NOTE = """\
Invariants: job results are bit-identical to direct runs (whatever the
slot count, chunking or interruptions — preemption reuses the
checkpoint machinery), and batched query results — sequential,
sharded, or streamed over either transport — are bit-identical to
one-shot `coverage_eval` / per-example `predicts`.

A minimal end-to-end use from code:

```python
import tempfile

from repro.datasets import make_dataset
from repro.service import JobScheduler, JobSpec, QueryEngine, TheoryRegistry

with tempfile.TemporaryDirectory() as root:
    registry = TheoryRegistry(root)
    with JobScheduler(slots=2, registry=registry) as scheduler:
        job = scheduler.submit(
            JobSpec(dataset="trains", algo="p2mdie", p=2, register_as="demo")
        )
        scheduler.wait(job, timeout=300)
    engine = QueryEngine(registry=registry)
    ds = make_dataset("trains", seed=0)
    result = engine.query("demo", ds.pos + ds.neg, shards=2)
    print(result.n_covered, "of", result.n, "covered")
```"""

_CLI_NOTE = """\
`python -m repro <command>` (or the `repro` console script after
`pip install -e .`).  Every subcommand also accepts `--profile PATH`
(cProfile dump); the client verbs (`jobs`, `loadgen`) accept `--token`
and `--transport {json,wire}`."""

_RESILIENCE_INTRO = """\
Structured errors carry a machine-readable `code` (codes in
`RETRYABLE_CODES` are safe to retry; shed responses add a
`retry_after` hint).  `ServiceFaultPlan` is the service-tier analogue
of `FaultPlan`: counted, deterministic events — connection resets,
engine-lease failures, scheduler-slot crashes, torn durable writes —
loaded from JSON (`repro serve --fault-plan`).  `run_chaos` drives the
full lifecycle twice (fault-free + under the plan) and gates on result
parity, zero duplicated jobs and zero corrupt records
(`repro loadgen --chaos`)."""

_RESILIENCE_NOTE = """\
Operational guidance — deadlines, retries + idempotency keys,
admission control, graceful drain and quarantine handling — lives in
[operations.md](operations.md)."""

_TELEMETRY_INTRO = """\
Spans record wall-clock activity per rank and ship home over the wire
codec at halt (`repro trace`, `--trace-out`); the metrics registry
backs the `metrics` service op and the `repro serve --metrics-port`
Prometheus endpoint; the structured logger correlates every line by
request/job id.  The guided tour is [telemetry.md](telemetry.md)."""

#: (section heading, intro-or-None, [(module, [names...]), ...], footer-or-None)
SECTIONS = [
    (
        "## Datasets — `repro.datasets`",
        None,
        [("repro.datasets", ["make_dataset", "Dataset", "register_dataset", "DATASETS", "SCALES"])],
        None,
    ),
    (
        "## Learning — `repro.ilp` and `repro.parallel`",
        None,
        [
            ("repro.ilp", ["mdie", "accuracy", "confusion", "predicts"]),
            ("repro.ilp.coverage", ["coverage_eval", "theory_covered_bits"]),
            (
                "repro.ilp.sampling",
                [
                    "StratifiedSampler", "SampledStats", "ClauseCertificate",
                    "CoverageCertificate", "make_sampler", "sampler_for",
                    "certificate_to_bytes", "certificate_from_bytes",
                ],
            ),
            ("repro.parallel", ["run_p2mdie", "run_coverage_parallel", "run_independent"]),
            ("repro.parallel.partition", ["partition_examples", "shard_spans"]),
        ],
        _ILPCONFIG,
    ),
    (
        "## Execution backends — `repro.backend`",
        None,
        [
            (
                "repro.backend",
                [
                    "Backend", "BackendRun", "SimBackend", "LocalProcessBackend",
                    "make_backend", "resolve_backend", "fault_injection_scope",
                ],
            ),
            ("repro.backend.mpi", ["MPIBackend"]),
        ],
        _BACKEND_NOTE,
    ),
    (
        "## Fault tolerance — `repro.fault`",
        None,
        [
            (
                "repro.fault",
                [
                    "FaultPlan", "WorkerCrash", "Straggler", "MessageLoss",
                    "WorkerJoin", "CheckpointState", "save_checkpoint",
                    "load_checkpoint",
                ],
            ),
            ("repro.fault.checkpoint", ["checkpoint_path"]),
        ],
        _FAULT_NOTE,
    ),
    (
        "## Serving — `repro.service`",
        None,
        [
            ("repro.service.jobs", ["JobSpec", "JobOutcome", "OutcomeSummary", "run_job"]),
            ("repro.service.scheduler", ["JobScheduler"]),
            ("repro.service.registry", ["TheoryRegistry", "RegistryRecord", "theory_diff"]),
            (
                "repro.service.query",
                ["QueryEngine", "QueryResult", "QueryStream", "PreparedTheory"],
            ),
            ("repro.service.server", ["Service", "ServiceClient", "serve"]),
        ],
        _SERVICE_NOTE,
    ),
    (
        "## Service resilience — `repro.service.errors`, `repro.fault.service`, `repro.experiments.chaos`",
        _RESILIENCE_INTRO,
        [
            (
                "repro.service.errors",
                [
                    "ServiceFault", "BadRequest", "DeadlineExceeded",
                    "Overloaded", "Unavailable", "ShuttingDown",
                    "FrameTooLarge", "RETRYABLE_CODES",
                ],
            ),
            (
                "repro.fault.service",
                [
                    "ServiceFaultPlan", "ConnReset", "LeaseFault",
                    "SlotCrash", "PersistFault", "ServiceFaultInjector",
                ],
            ),
            (
                "repro.experiments.chaos",
                ["run_chaos", "chaos_passed", "chaos_report_lines"],
            ),
        ],
        _RESILIENCE_NOTE,
    ),
    (
        "## Load generation — `repro.experiments.loadgen`",
        None,
        [
            (
                "repro.experiments.loadgen",
                ["run_loadgen", "arrival_schedule", "latency_stats", "percentile"],
            )
        ],
        None,
    ),
    (
        "## Telemetry — `repro.obs` and `repro.util.log`",
        _TELEMETRY_INTRO,
        [
            (
                "repro.obs.span",
                [
                    "Span", "SpanBatch", "Tracer", "tracing_enabled",
                    "set_tracing", "spans_from_intervals", "intervals_from_spans",
                    "write_spans_jsonl", "read_spans_jsonl",
                ],
            ),
            (
                "repro.obs.metrics",
                [
                    "MetricsRegistry", "Counter", "Gauge", "Histogram",
                    "percentile", "DEFAULT_LATENCY_BUCKETS",
                ],
            ),
            (
                "repro.util.log",
                [
                    "StructuredLogger", "get_logger", "log_context",
                    "log_format", "set_log_format", "log_level", "set_log_level",
                ],
            ),
            ("repro.experiments.trace", ["render_gantt", "occupancy", "stage_summary"]),
        ],
        None,
    ),
]


def render_api_doc() -> str:
    """The full ``docs/api.md`` text, rebuilt from the live code."""
    blocks = [_INTRO]
    for heading, intro, module_names, footer in SECTIONS:
        parts = [heading]
        if intro:
            parts.append(intro)
        parts.append("\n".join(_table(module_names)))
        if footer:
            parts.append(footer)
        blocks.append("\n\n".join(parts))
    blocks.append(
        "\n\n".join(
            ["## Command-line interface", _CLI_NOTE, "\n".join(_cli_table())]
        )
    )
    return "\n\n".join(blocks) + "\n"


def main(argv=None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    path = api_doc_path()
    rendered = render_api_doc()
    if args == ["--write"]:
        path.write_text(rendered, encoding="utf-8")
        print(f"wrote {path}")
        return 0
    if args == ["--check"]:
        on_disk = path.read_text(encoding="utf-8") if path.exists() else ""
        if on_disk != rendered:
            print(
                f"{path} is stale — regenerate with "
                "`PYTHONPATH=src python -m repro.util.apidoc --write`",
                file=sys.stderr,
            )
            return 1
        print(f"{path} is up to date")
        return 0
    print("usage: python -m repro.util.apidoc [--check | --write]", file=sys.stderr)
    return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

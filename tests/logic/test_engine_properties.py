"""Property-based tests of the SLD engine over randomly generated graph
knowledge bases: soundness and consistency invariants that must hold for
any database content."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.logic.engine import Engine, QueryBudget
from repro.logic.knowledge import KnowledgeBase
from repro.logic.parser import parse_term
from repro.logic.terms import atom, is_ground


@st.composite
def graph_kb(draw):
    """A small random edge/2 database plus its node set."""
    n = draw(st.integers(2, 6))
    edges = draw(
        st.lists(
            st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
            min_size=1,
            max_size=12,
        )
    )
    kb = KnowledgeBase()
    for a, b in edges:
        kb.add_fact(atom("edge", f"n{a}", f"n{b}"))
    kb.add_program(
        "path(X, Y) :- edge(X, Y)."
        "path(X, Z) :- edge(X, Y), path(Y, Z)."
    )
    return kb, n, edges


@given(graph_kb())
@settings(max_examples=80, deadline=None)
def test_solutions_are_ground_and_sound(data):
    """Every enumerated edge solution is a ground fact of the database."""
    kb, n, edges = data
    eng = Engine(kb, QueryBudget(max_depth=8, max_ops=50_000))
    facts = {(str(a.args[0]), str(a.args[1])) for a in kb.facts_for(("edge", 2))}
    for sol in eng.solve(parse_term("edge(X, Y)")):
        assert is_ground(sol)
        assert (str(sol.args[0]), str(sol.args[1])) in facts


@given(graph_kb())
@settings(max_examples=60, deadline=None)
def test_path_solutions_reachable(data):
    """Every path/2 answer corresponds to real reachability in the graph."""
    kb, n, edges = data
    eng = Engine(kb, QueryBudget(max_depth=10, max_ops=100_000))
    # compute reachability in plain Python
    adj = {}
    for a, b in edges:
        adj.setdefault(a, set()).add(b)

    def reachable(src):
        seen, stack = set(), [src]
        while stack:
            x = stack.pop()
            for y in adj.get(x, ()):
                if y not in seen:
                    seen.add(y)
                    stack.append(y)
        return seen

    for sol in eng.solve(parse_term("path(X, Y)"), limit=200):
        a = int(str(sol.args[0])[1:])
        b = int(str(sol.args[1])[1:])
        assert b in reachable(a), f"engine claimed unreachable path n{a}->n{b}"


@given(graph_kb())
@settings(max_examples=60, deadline=None)
def test_prove_iff_some_solution(data):
    """prove() agrees with solve() producing at least one answer."""
    kb, n, _ = data
    eng = Engine(kb, QueryBudget(max_depth=8, max_ops=50_000))
    for i in range(n):
        goal = parse_term(f"edge(n{i}, X)")
        assert eng.prove(goal) == (next(iter(eng.solve(goal, limit=1)), None) is not None)


@given(graph_kb(), st.integers(1, 5))
@settings(max_examples=40, deadline=None)
def test_limit_monotone(data, k):
    """Raising the solution limit never yields fewer answers."""
    kb, _, _ = data
    eng = Engine(kb, QueryBudget(max_depth=8, max_ops=50_000))
    goal = parse_term("edge(X, Y)")
    few = list(eng.solve(goal, limit=k))
    more = list(eng.solve(goal, limit=k + 3))
    assert len(more) >= len(few)
    assert more[: len(few)] == few  # same enumeration order (determinism)

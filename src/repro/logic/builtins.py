"""Built-in predicates for the SLD engine.

Arithmetic is evaluated over :class:`Const` ints/floats, with the usual
Prolog evaluable functors (``+ - * / mod abs min max``).  Comparison
builtins require both sides to evaluate to numbers; ``=``/``\\=`` are
syntactic (unification-based).
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.logic.terms import Const, Struct, Term, Var
from repro.logic.unify import Subst, walk

__all__ = ["ArithmeticError_", "eval_arith", "is_builtin", "BUILTIN_INDICATORS"]


class ArithmeticError_(ValueError):
    """Raised when an arithmetic expression cannot be evaluated."""


_EVALUABLE: dict[tuple[str, int], Callable] = {
    ("+", 2): lambda a, b: a + b,
    ("-", 2): lambda a, b: a - b,
    ("*", 2): lambda a, b: a * b,
    ("/", 2): lambda a, b: a / b,
    ("mod", 2): lambda a, b: a % b,
    ("min", 2): min,
    ("max", 2): max,
    ("-", 1): lambda a: -a,
    ("+", 1): lambda a: a,
    ("abs", 1): abs,
}


def eval_arith(term: Term, subst: Subst) -> float | int:
    """Evaluate an arithmetic expression term under ``subst``."""
    t = walk(term, subst)
    if isinstance(t, Const):
        if isinstance(t.value, (int, float)) and not isinstance(t.value, bool):
            return t.value
        raise ArithmeticError_(f"non-numeric constant in arithmetic: {t}")
    if isinstance(t, Var):
        raise ArithmeticError_(f"unbound variable in arithmetic: {t}")
    fn = _EVALUABLE.get((t.functor, t.arity))
    if fn is None:
        raise ArithmeticError_(f"unknown evaluable functor {t.functor}/{t.arity}")
    return fn(*(eval_arith(a, subst) for a in t.args))


# Indicators the engine dispatches specially (see engine._solve_builtin).
BUILTIN_INDICATORS = frozenset(
    {
        ("true", 0),
        ("fail", 0),
        ("false", 0),
        ("=", 2),
        ("\\=", 2),
        ("==", 2),
        ("\\==", 2),
        ("<", 2),
        (">", 2),
        ("=<", 2),
        (">=", 2),
        ("is", 2),
        ("\\+", 1),
        ("not", 1),
        ("between", 3),
        ("dif_const", 2),
    }
)


def is_builtin(indicator: tuple[str, int]) -> bool:
    return indicator in BUILTIN_INDICATORS

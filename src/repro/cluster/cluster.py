"""VirtualCluster: the user-facing façade over the DES scheduler.

Wire up a master and ``p`` workers, run them to completion in virtual
time, and collect the run artifacts (makespan, communication stats,
optional busy-interval trace).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.cluster.costmodel import CostModel, DEFAULT_COST_MODEL
from repro.cluster.network import FAST_ETHERNET, NetworkModel
from repro.cluster.process import ComputeInterval, SimProcess
from repro.cluster.scheduler import CommStats, Scheduler
from repro.fault.plan import FaultPlan, FaultRecord

__all__ = ["ClusterRun", "VirtualCluster"]


@dataclass
class ClusterRun:
    """Artifacts of one completed virtual-cluster execution."""

    makespan: float
    comm: CommStats
    trace: list[ComputeInterval] = field(default_factory=list)
    #: final per-rank clocks (rank order)
    clocks: list[float] = field(default_factory=list)
    #: injected fault events, in firing order (empty for fault-free runs).
    fault_log: list[FaultRecord] = field(default_factory=list)
    #: ranks killed by injected crashes.
    crashed: list[int] = field(default_factory=list)

    @property
    def mbytes(self) -> float:
        return self.comm.mbytes_total


class VirtualCluster:
    """A deterministic simulated distributed-memory machine.

    >>> from repro.cluster.process import SimProcess
    >>> class Ping(SimProcess):
    ...     def run(self, ctx):
    ...         yield ctx.send(1, "ping", tag="t")
    ...         msg = yield ctx.recv(src=1)
    >>> class Pong(SimProcess):
    ...     def run(self, ctx):
    ...         msg = yield ctx.recv(src=0)
    ...         yield ctx.send(0, "pong", tag="t")
    >>> run = VirtualCluster([Ping(0), Pong(1)]).run()
    >>> run.comm.messages
    2
    """

    def __init__(
        self,
        procs: Sequence[SimProcess],
        network: NetworkModel = FAST_ETHERNET,
        cost_model: CostModel = DEFAULT_COST_MODEL,
        record_trace: bool = False,
        fault_plan: "FaultPlan | None" = None,
    ):
        self.procs = list(procs)
        self.network = network
        self.cost_model = cost_model
        self.record_trace = record_trace
        self.fault_plan = fault_plan

    def run(self) -> ClusterRun:
        sched = Scheduler(
            self.procs,
            network=self.network,
            cost_model=self.cost_model,
            record_trace=self.record_trace,
            fault_plan=self.fault_plan,
        )
        makespan = sched.run()
        clocks = [sched.clock_of(p.rank) for p in sorted(self.procs, key=lambda p: p.rank)]
        return ClusterRun(
            makespan=makespan,
            comm=sched.stats,
            trace=sched.trace,
            clocks=clocks,
            fault_log=sched.fault_log,
            crashed=sched.crashed_ranks(),
        )

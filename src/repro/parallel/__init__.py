"""P²-MDIE: the paper's pipelined data-parallel covering algorithm,
plus the related-work baseline (data-parallel coverage testing)."""

from repro.parallel.coverage_parallel import CoverageParallelMaster, run_coverage_parallel
from repro.parallel.independent import IndependentMaster, IndependentWorker, run_independent
from repro.parallel.master import EpochLog, P2Master
from repro.parallel.messages import (
    AdoptWorker,
    EvaluateRequest,
    EvaluateResult,
    FTEvaluateRequest,
    FTEvaluateResult,
    FTPipelineRules,
    FTPipelineTask,
    LoadExamples,
    MarkCovered,
    Ping,
    PipelineRules,
    PipelineTask,
    Pong,
    RestartPipeline,
    RuleStats,
    StartPipeline,
    Stop,
    UpdateRouting,
)
from repro.parallel.p2mdie import (
    P2Result,
    SharedProblem,
    WorkerProblem,
    collect_cache_stats,
    run_p2mdie,
    sequential_seconds,
)
from repro.parallel.partition import Partition, partition_examples
from repro.parallel.worker import MASTER_RANK, P2Worker

__all__ = [
    "CoverageParallelMaster",
    "run_coverage_parallel",
    "IndependentMaster",
    "IndependentWorker",
    "run_independent",
    "EpochLog",
    "P2Master",
    "AdoptWorker",
    "EvaluateRequest",
    "EvaluateResult",
    "FTEvaluateRequest",
    "FTEvaluateResult",
    "FTPipelineRules",
    "FTPipelineTask",
    "LoadExamples",
    "MarkCovered",
    "Ping",
    "PipelineRules",
    "PipelineTask",
    "Pong",
    "RestartPipeline",
    "RuleStats",
    "StartPipeline",
    "Stop",
    "UpdateRouting",
    "collect_cache_stats",
    "P2Result",
    "SharedProblem",
    "WorkerProblem",
    "run_p2mdie",
    "sequential_seconds",
    "Partition",
    "partition_examples",
    "MASTER_RANK",
    "P2Worker",
]

"""Property-based tests for the discrete-event scheduler.

Random master/worker workloads (jobs of random compute sizes scattered to
random workers) must always satisfy the causality and accounting
invariants, regardless of schedule shape.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.cluster import VirtualCluster
from repro.cluster.costmodel import OpsCostModel, PerRankCostModel
from repro.cluster.network import NetworkModel
from repro.cluster.process import SimProcess

NET = NetworkModel(latency_s=0.01, bandwidth_bps=1e6, send_overhead_s=0.001)
COST = OpsCostModel(sec_per_op=0.001)


class Boss(SimProcess):
    def __init__(self, jobs, n_workers):
        super().__init__(0)
        self.jobs = jobs
        self.n_workers = n_workers
        self.replies = []

    def run(self, ctx):
        for worker, size in self.jobs:
            yield ctx.send(worker, size, tag="job")
        for w in range(1, self.n_workers + 1):
            yield ctx.send(w, None, tag="done")
        expected = len(self.jobs)
        for _ in range(expected):
            msg = yield ctx.recv(tag="reply")
            self.replies.append((msg.src, msg.payload))


class Grunt(SimProcess):
    def run(self, ctx):
        while True:
            msg = yield ctx.recv()
            if msg.tag == "done":
                # drain any jobs that arrive after the done marker? cannot:
                # FIFO per link guarantees jobs precede the marker.
                return
            yield ctx.compute(msg.payload)
            yield ctx.send(0, msg.payload * 2, tag="reply")


@st.composite
def workload(draw):
    n_workers = draw(st.integers(1, 5))
    jobs = draw(
        st.lists(
            st.tuples(st.integers(1, n_workers), st.integers(1, 50)),
            min_size=0,
            max_size=15,
        )
    )
    return n_workers, jobs


@given(workload())
@settings(max_examples=60, deadline=None)
def test_all_jobs_answered(data):
    n_workers, jobs = data
    boss = Boss(jobs, n_workers)
    VirtualCluster([boss] + [Grunt(i) for i in range(1, n_workers + 1)], network=NET, cost_model=COST).run()
    assert sorted(p for _, p in boss.replies) == sorted(s * 2 for _, s in jobs)


@given(workload())
@settings(max_examples=60, deadline=None)
def test_makespan_at_least_critical_path(data):
    """Virtual completion time can never beat the per-worker compute sum."""
    n_workers, jobs = data
    boss = Boss(jobs, n_workers)
    run = VirtualCluster(
        [boss] + [Grunt(i) for i in range(1, n_workers + 1)], network=NET, cost_model=COST
    ).run()
    per_worker: dict[int, float] = {}
    for w, size in jobs:
        per_worker[w] = per_worker.get(w, 0.0) + COST.seconds_for_ops(size)
    if per_worker:
        assert run.makespan >= max(per_worker.values())


@given(workload())
@settings(max_examples=60, deadline=None)
def test_byte_accounting_exact(data):
    """Total bytes equals the sum over links of per-link bytes and over
    tags of per-tag bytes."""
    n_workers, jobs = data
    boss = Boss(jobs, n_workers)
    run = VirtualCluster(
        [boss] + [Grunt(i) for i in range(1, n_workers + 1)], network=NET, cost_model=COST
    ).run()
    assert sum(run.comm.bytes_by_link.values()) == run.comm.bytes_total
    assert sum(run.comm.bytes_by_tag.values()) == run.comm.bytes_total
    # message count: jobs + done markers + replies
    assert run.comm.messages == len(jobs) * 2 + n_workers


@given(workload(), st.integers(2, 6))
@settings(max_examples=40, deadline=None)
def test_straggler_monotone(data, slow_factor):
    """Slowing one worker can never shorten the run."""
    n_workers, jobs = data
    def build(cost_model):
        return VirtualCluster(
            [Boss(jobs, n_workers)] + [Grunt(i) for i in range(1, n_workers + 1)],
            network=NET,
            cost_model=cost_model,
        ).run()

    base = build(COST)
    slowed = build(PerRankCostModel(COST, scales={1: float(slow_factor)}))
    assert slowed.makespan >= base.makespan - 1e-12

#!/usr/bin/env python
"""Reproduce the paper's accuracy protocol (Table 6) on the
pyrimidines-like ranking dataset: 5-fold cross-validation of sequential
MDIE vs P²-MDIE, with the paired t-test at 98% confidence.

Run:  python examples/pyrimidines_crossval.py [--folds 5 --p 4]
"""

import argparse

from repro.datasets import make_dataset
from repro.experiments import kfold, mean_std, paired_ttest
from repro.ilp import accuracy, mdie
from repro.logic import Engine
from repro.parallel import run_p2mdie
from repro.util.fmt import fmt_float, render_table


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--folds", type=int, default=5)
    ap.add_argument("--p", type=int, default=4)
    ap.add_argument("--width", type=int, default=10)
    ap.add_argument("--seed", type=int, default=0)
    args = ap.parse_args()

    ds = make_dataset("pyrimidines", seed=args.seed, scale="small")
    print(f"dataset: {ds.name}  |E+|={ds.n_pos}  |E-|={ds.n_neg}  "
          f"{args.folds}-fold CV, p={args.p}, W={args.width}\n")

    engine = Engine(ds.kb, ds.config.engine_budget())
    seq_acc, par_acc, rows = [], [], []
    for fold in kfold(ds.pos, ds.neg, k=args.folds, seed=args.seed):
        seq = mdie(ds.kb, list(fold.train_pos), list(fold.train_neg), ds.modes, ds.config, seed=args.seed)
        a_seq = accuracy(engine, seq.theory, list(fold.test_pos), list(fold.test_neg))
        par = run_p2mdie(
            ds.kb, list(fold.train_pos), list(fold.train_neg), ds.modes, ds.config,
            p=args.p, width=args.width, seed=args.seed,
        )
        a_par = accuracy(engine, par.theory, list(fold.test_pos), list(fold.test_neg))
        seq_acc.append(a_seq)
        par_acc.append(a_par)
        rows.append([fold.index, fmt_float(a_seq, 1), fmt_float(a_par, 1),
                     len(seq.theory), len(par.theory)])

    print(render_table(["fold", "seq acc %", "par acc %", "seq rules", "par rules"], rows))
    ms, ss = mean_std(seq_acc)
    mp, sp = mean_std(par_acc)
    t = paired_ttest(seq_acc, par_acc, confidence=0.98)
    print(f"\nsequential: {ms:.2f} ({ss:.2f})   parallel: {mp:.2f} ({sp:.2f})")
    verdict = (
        "significantly different" + (" (improved)" if t.improved else " (degraded)")
        if t.significant
        else "not significantly different (quality preserved)"
    )
    print(f"paired t-test @98%: t={t.t:.3f} p={t.pvalue:.3f} -> {verdict}")


if __name__ == "__main__":
    main()

"""ServiceFaultPlan: validation, JSON round-trip, injector trigger counters."""

import pytest

from repro.fault.service import (
    ConnReset,
    InjectedFault,
    LeaseFault,
    PersistFault,
    ServiceFaultInjector,
    ServiceFaultPlan,
    SlotCrash,
    normalize_service_plan,
)


class TestEvents:
    def test_counters_are_one_based(self):
        with pytest.raises(ValueError):
            ConnReset(on_request=0)
        with pytest.raises(ValueError):
            LeaseFault(on_lease=0)
        with pytest.raises(ValueError):
            SlotCrash(on_job=0)
        with pytest.raises(ValueError):
            PersistFault(on_write=0)

    def test_reset_when_validated(self):
        ConnReset(on_request=1, when="before")
        ConnReset(on_request=1, when="after")
        with pytest.raises(ValueError):
            ConnReset(on_request=1, when="sometime")

    def test_lease_modes(self):
        LeaseFault(on_lease=1, mode="fail")
        LeaseFault(on_lease=1, mode="slow", delay=0.1)
        with pytest.raises(ValueError):
            LeaseFault(on_lease=1, mode="wobble")
        with pytest.raises(ValueError):
            LeaseFault(on_lease=1, mode="slow", delay=0.0)

    def test_persist_targets(self):
        PersistFault(on_write=1, target="job")
        PersistFault(on_write=1, target="registry")
        with pytest.raises(ValueError):
            PersistFault(on_write=1, target="everything")


class TestPlan:
    def _full_plan(self):
        return ServiceFaultPlan(
            resets=(
                ConnReset(on_request=3, op="query", when="after"),
                ConnReset(on_request=7),
            ),
            leases=(
                LeaseFault(on_lease=2, mode="fail"),
                LeaseFault(on_lease=5, mode="slow", delay=0.25),
            ),
            crashes=(SlotCrash(on_job=1),),
            persist=(PersistFault(on_write=4, target="registry"),),
        )

    def test_json_round_trip(self):
        plan = self._full_plan()
        assert ServiceFaultPlan.from_json(plan.to_json()) == plan

    def test_load_save_round_trip(self, tmp_path):
        plan = self._full_plan()
        path = str(tmp_path / "plan.json")
        plan.save(path)
        assert ServiceFaultPlan.load(path) == plan

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown service fault"):
            ServiceFaultPlan.from_json('{"events": [{"kind": "gremlin"}]}')

    def test_normalize(self):
        assert normalize_service_plan(None) is None
        assert normalize_service_plan(ServiceFaultPlan()) is None
        plan = ServiceFaultPlan(crashes=(SlotCrash(on_job=1),))
        assert normalize_service_plan(plan) is plan

    def test_repo_example_plans_parse(self):
        import pathlib

        root = pathlib.Path(__file__).resolve().parents[2]
        for name in ("service_chaos.json", "service_resets.json"):
            plan = ServiceFaultPlan.load(str(root / "examples" / "faultplans" / name))
            assert not plan.empty


class TestInjector:
    def test_request_counter_global_and_per_op(self):
        plan = ServiceFaultPlan(
            resets=(
                ConnReset(on_request=2, op="query"),
                ConnReset(on_request=3),
            )
        )
        inj = ServiceFaultInjector(plan)
        assert inj.on_request("submit") is None      # global #1, submit #1
        assert inj.on_request("query") is None       # global #2, query #1
        hit = inj.on_request("status")               # global #3 -> global reset
        assert hit is not None and hit.op is None
        hit = inj.on_request("query")                # query #2 -> op reset
        assert hit is not None and hit.op == "query"
        assert inj.on_request("query") is None
        assert len(inj.log) == 2

    def test_lease_and_job_counters(self):
        plan = ServiceFaultPlan(
            leases=(LeaseFault(on_lease=2, mode="slow", delay=0.1),),
            crashes=(SlotCrash(on_job=2),),
        )
        inj = ServiceFaultInjector(plan)
        assert inj.on_lease() is None
        fault = inj.on_lease()
        assert fault is not None and fault.mode == "slow"
        assert inj.on_lease() is None
        assert not inj.on_job_pick()
        assert inj.on_job_pick()
        assert not inj.on_job_pick()

    def test_persist_hook_targets_independent(self):
        plan = ServiceFaultPlan(persist=(PersistFault(on_write=2, target="job"),))
        inj = ServiceFaultInjector(plan)
        assert inj.persist_hook("registry") is None  # no registry events at all
        hook = inj.persist_hook("job")
        assert hook is not None
        hook("first.tmp")  # write #1: survives
        with pytest.raises(InjectedFault):
            hook("second.tmp")
        hook("third.tmp")  # only the Nth write fails

    def test_snapshot_counts(self):
        inj = ServiceFaultInjector(
            ServiceFaultPlan(crashes=(SlotCrash(on_job=1),))
        )
        inj.on_request("query")
        inj.on_lease()
        inj.on_job_pick()
        snap = inj.snapshot()
        assert snap["requests"] == 1
        assert snap["leases"] == 1
        assert snap["jobs_picked"] == 1
        assert len(snap["injected"]) == 1

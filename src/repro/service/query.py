"""Batched coverage/prediction queries against registered theories.

Theory *application* is orders of magnitude cheaper than theory
*learning*, but the naive per-example path (``predicts``: rename every
clause, unify, prove — per example) still re-pays two setup costs on
every call: rebuilding the dataset's knowledge base/engine, and renaming
each clause apart.  The query engine amortizes both:

* a **prepared-theory cache**: the first query against ``(name,
  version)`` builds the dataset KB (from the record's provenance), an
  :class:`~repro.logic.engine.Engine` and the clause list once; every
  later batch reuses them (KB indexes and the engine's ground-goal memo
  stay warm across batches);
* **micro-batching**: a batch is evaluated clause-by-clause via
  :func:`repro.ilp.coverage.coverage_eval` — one ``rename_apart`` per
  clause per batch instead of per example — and each clause only tests
  the examples no earlier clause covered (first-match semantics; the
  remaining-candidates mask is sound because theory coverage is the
  union of clause coverages).

**Determinism invariant**: the covered bitset a batch returns is
bit-identical to OR-ing one-shot ``coverage_eval`` calls per clause
(and to per-example :func:`repro.ilp.theory.predicts`) — pinned by
``tests/service/test_query.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.datasets import make_dataset
from repro.ilp.coverage import coverage_eval, popcount
from repro.logic.clause import Theory
from repro.logic.engine import Engine
from repro.logic.terms import Term, is_ground

__all__ = ["QueryEngine", "QueryResult", "PreparedTheory"]


@dataclass(frozen=True)
class QueryResult:
    """Coverage of one query batch."""

    #: bit i set ⇔ examples[i] is covered (predicted positive).
    covered: int
    #: number of examples in the batch.
    n: int
    #: engine operations spent answering the batch.
    ops: int

    @property
    def n_covered(self) -> int:
        return popcount(self.covered)

    def decisions(self) -> list[bool]:
        """Per-example predictions, batch order."""
        return [bool((self.covered >> i) & 1) for i in range(self.n)]


@dataclass
class PreparedTheory:
    """A theory bound to a warm engine over its dataset's KB.

    One prepared entry serializes its own batches: the engine's
    per-query mutable state (op budget counter, ``last_exhausted``)
    must not interleave across threads, so concurrent server requests
    against the *same* theory queue here while different theories (and
    learning jobs) still overlap freely.
    """

    theory: Theory
    engine: Engine
    #: batches answered from this entry (cache effectiveness counter).
    batches: int = 0

    def __post_init__(self):
        import threading

        self._lock = threading.Lock()

    def query(self, examples: Sequence[Term], micro_batch: int = 1024) -> QueryResult:
        """Coverage of ``examples``; every example must be ground.

        ``micro_batch`` bounds the slice evaluated per clause pass (it
        caps transient bitset width on very large batches; results are
        independent of its value).
        """
        for e in examples:
            if not is_ground(e):
                raise ValueError(f"query example must be ground: {e}")
        with self._lock:
            ops0 = self.engine.total_ops
            covered = 0
            for lo in range(0, len(examples), micro_batch):
                chunk = examples[lo : lo + micro_batch]
                covered |= self._query_chunk(chunk) << lo
            self.batches += 1
            return QueryResult(
                covered=covered, n=len(examples), ops=self.engine.total_ops - ops0
            )

    def _query_chunk(self, chunk: Sequence[Term]) -> int:
        # First-match semantics: later clauses only test what earlier
        # clauses left uncovered.  The union is identical to evaluating
        # every clause on the full chunk (monotone: covered stays covered).
        remaining = (1 << len(chunk)) - 1
        covered = 0
        for clause in self.theory:
            bits, _ = coverage_eval(self.engine, clause, chunk, candidates=remaining)
            covered |= bits
            remaining &= ~bits
            if not remaining:
                break
        return covered


class QueryEngine:
    """Serve coverage queries against a :class:`TheoryRegistry`.

    One instance may be shared by many server threads: the prepared
    cache is locked (cheaply — expensive dataset builds happen outside
    the lock), and each :class:`PreparedTheory` serializes its own
    engine, so batches against one theory queue while everything else
    overlaps.
    """

    def __init__(self, registry=None):
        import threading

        self.registry = registry
        self._prepared: dict[tuple, PreparedTheory] = {}
        self._datasets: dict[tuple, object] = {}
        self._lock = threading.Lock()
        #: prepared-cache counters (amortization visibility).
        self.prepared_hits = 0
        self.prepared_misses = 0

    # -- preparation -------------------------------------------------------------

    def _dataset(self, name: str, seed: int, scale: str):
        key = (name, seed, scale)
        with self._lock:
            ds = self._datasets.get(key)
        if ds is None:
            # Built outside the lock: dataset generation can take seconds
            # and must not stall cache hits for other theories.  A racing
            # duplicate build is harmless (last writer wins; both are
            # equal by construction).
            ds = make_dataset(name, seed=seed, scale=scale)
            with self._lock:
                ds = self._datasets.setdefault(key, ds)
        return ds

    def prepare(self, name: str, version: Optional[int] = None) -> PreparedTheory:
        """Prepared entry for a registered theory (build once, reuse)."""
        if self.registry is None:
            raise ValueError("QueryEngine has no registry attached")
        resolved = self.registry.resolve_version(name, version)
        key = (name, resolved)
        with self._lock:
            prepared = self._prepared.get(key)
            if prepared is not None:
                self.prepared_hits += 1
                return prepared
        record = self.registry.get(name, resolved)
        prov = record.provenance_dict()
        dataset = prov.get("dataset")
        if dataset is None:
            raise ValueError(
                f"registry record {name} v{resolved} has no dataset provenance; "
                "pass a KB explicitly via prepare_theory()"
            )
        ds = self._dataset(
            dataset, int(prov.get("seed", "0")), prov.get("scale", "small")
        )
        fresh = self._prepare(record.to_theory(), ds.kb, ds.config)
        with self._lock:
            prepared = self._prepared.get(key)
            if prepared is not None:  # lost a prepare race: reuse the winner
                self.prepared_hits += 1
                return prepared
            self.prepared_misses += 1
            self._prepared[key] = fresh
            return fresh

    def prepare_theory(self, theory: Theory, kb, config) -> PreparedTheory:
        """Prepared entry for an unregistered theory over an explicit KB."""
        return self._prepare(theory, kb, config)

    @staticmethod
    def _prepare(theory: Theory, kb, config) -> PreparedTheory:
        engine = Engine(kb, config.engine_budget(), kernel=config.coverage_kernel)
        return PreparedTheory(theory=theory, engine=engine)

    # -- querying ----------------------------------------------------------------

    def query(
        self,
        name: str,
        examples: Sequence[Term],
        version: Optional[int] = None,
        micro_batch: int = 1024,
    ) -> QueryResult:
        """Batched coverage of ``examples`` under a registered theory."""
        return self.prepare(name, version).query(examples, micro_batch=micro_batch)

    def dataset_for(self, name: str, version: Optional[int] = None):
        """The (cached) dataset a registered theory was learned on.

        Callers that want to classify a theory's own training examples
        reuse the dataset the prepare step already built instead of
        regenerating it.
        """
        record = self.registry.get(name, self.registry.resolve_version(name, version))
        prov = record.provenance_dict()
        dataset = prov.get("dataset")
        if dataset is None:
            raise ValueError(
                f"registry record {name} has no dataset provenance"
            )
        return self._dataset(
            dataset, int(prov.get("seed", "0")), prov.get("scale", "small")
        )

    def stats(self) -> dict:
        """Prepared-cache effectiveness counters."""
        with self._lock:
            return {
                "prepared_hits": self.prepared_hits,
                "prepared_misses": self.prepared_misses,
                "prepared_entries": len(self._prepared),
                "batches": sum(p.batches for p in self._prepared.values()),
            }

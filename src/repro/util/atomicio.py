"""Crash-safe file writes: tmp file + fsync + atomic rename.

Every durable artifact the service tier owns — job records, registry
theory versions, promotion pointers, checkpoints — goes through
:func:`atomic_write_bytes`, so a crash (or an injected persistence
fault) at *any* instant leaves either the old contents or the new,
never a torn file.  The recipe is the standard one:

1. write the payload to ``<path>.tmp`` in the target directory (same
   filesystem, so the final rename is atomic);
2. flush and ``fsync`` the tmp file (the *data* is on disk before any
   name points at it);
3. ``os.replace`` onto the final name (atomic on POSIX and Windows);
4. ``fsync`` the containing directory so the rename itself survives a
   power cut (best-effort: not all platforms let you open a directory).

``fail_hook`` is the deterministic fault-injection point used by
:class:`repro.fault.service.ServiceFaultInjector`: it runs *after* the
tmp file exists but *before* the rename, so an injected failure
exercises exactly the torn-write window the protocol must survive —
the final path is provably never corrupted by a failed write.
"""

from __future__ import annotations

import os
from typing import Callable, Optional

__all__ = ["atomic_write_bytes", "atomic_write_text", "fsync_dir"]


def fsync_dir(path: str) -> None:
    """Best-effort fsync of a directory (persists renames within it)."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return  # platform without directory opens: rename is still atomic
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def atomic_write_bytes(
    path: str,
    data: bytes,
    fsync: bool = True,
    fail_hook: Optional[Callable[[str], None]] = None,
) -> None:
    """Atomically replace ``path`` with ``data`` (see module docstring).

    Raises whatever the filesystem raises; on any failure the final
    ``path`` is untouched and the orphaned tmp file (when one exists)
    is removed best-effort.
    """
    tmp = f"{path}.tmp"
    try:
        with open(tmp, "wb") as fh:
            fh.write(data)
            if fsync:
                fh.flush()
                os.fsync(fh.fileno())
        if fail_hook is not None:
            # Injected persistence fault: the tmp file exists (possibly
            # fully written) but the atomic rename never happens.
            fail_hook(tmp)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    if fsync:
        fsync_dir(os.path.dirname(path) or ".")


def atomic_write_text(
    path: str,
    text: str,
    encoding: str = "utf-8",
    fsync: bool = True,
    fail_hook: Optional[Callable[[str], None]] = None,
) -> None:
    """Text-mode convenience wrapper over :func:`atomic_write_bytes`."""
    atomic_write_bytes(path, text.encode(encoding), fsync=fsync, fail_hook=fail_hook)

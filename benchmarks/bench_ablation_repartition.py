"""Ablation — inter-epoch repartitioning (§4.1's rejected alternative).

"A possible solution ... could be the repartitioning of examples always
before starting the pipelines.  However, we did not considered this
approach mainly because the high communication cost of repartitioning."
We implemented that alternative, so the claimed cost can be *measured*:
repartitioning ships the remaining example terms every epoch (no
shared-filesystem shortcut applies mid-run) and invalidates every
worker's coverage cache.
"""

import pytest

from conftest import SEED, one_shot
from repro.datasets import make_dataset
from repro.parallel import run_p2mdie
from repro.util.fmt import fmt_float, render_table


@pytest.fixture(scope="module")
def pair(scale):
    ds = make_dataset("pyrimidines", seed=SEED, scale=scale)
    # width=1 drives multi-epoch runs, where repartitioning actually fires
    base = run_p2mdie(ds.kb, ds.pos, ds.neg, ds.modes, ds.config, p=4, width=1, seed=SEED)
    repart = run_p2mdie(
        ds.kb, ds.pos, ds.neg, ds.modes, ds.config, p=4, width=1, seed=SEED,
        repartition_each_epoch=True,
    )
    return base, repart


def test_ablation_repartition(benchmark, pair, table_sink):
    one_shot(benchmark, lambda: None)  # timing lives in the module fixture
    base, repart = pair
    rows = [
        ["static partitions (paper)", fmt_float(base.seconds, 1), fmt_float(base.mbytes, 3),
         base.epochs, len(base.theory), base.uncovered],
        ["repartition each epoch", fmt_float(repart.seconds, 1), fmt_float(repart.mbytes, 3),
         repart.epochs, len(repart.theory), repart.uncovered],
    ]
    table_sink(
        "ablation_repartition",
        render_table(
            ["strategy", "vtime(s)", "MB", "epochs", "rules", "uncovered"],
            rows,
            title="Ablation: repartitioning examples before each epoch (p=4, W=1)",
        ),
    )
    # The paper's claim: repartitioning costs communication.
    if repart.epochs > 1:
        assert repart.comm.bytes_total > base.comm.bytes_total
    # And it must not break learning.
    assert len(repart.theory) >= 1

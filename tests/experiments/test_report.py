"""Tests for the markdown evaluation-report generator."""

import pytest

from repro.datasets import make_dataset
from repro.experiments.report import ReportMeta, render_report, speedup_summary
from repro.experiments.runner import run_matrix


@pytest.fixture(scope="module")
def matrix():
    return run_matrix(
        dataset_names=("trains",),
        widths=(2,),
        ps=(2,),
        k_folds=2,
        scale="small",
        seed=6,
    )


class TestSpeedupSummary:
    def test_structure(self, matrix):
        rows = speedup_summary(matrix, ps=(2,))
        assert len(rows) == 1
        row = rows[0]
        assert row["dataset"] == "trains"
        assert row["width"] == "2"
        assert row["p2"] > 0

    def test_empty_matrix(self):
        from repro.experiments.runner import MatrixResult

        assert speedup_summary(MatrixResult()) == []


class TestRenderReport:
    def test_contains_all_tables(self, matrix):
        ds = make_dataset("trains", seed=6, scale="small")
        doc = render_report(matrix, datasets=[ds], ps=(2,))
        for marker in ("Table 1", "Table 2", "Table 3", "Table 4", "Table 5", "Table 6"):
            assert marker in doc, marker
        assert doc.startswith("# P²-MDIE evaluation report")

    def test_meta_rendered(self, matrix):
        doc = render_report(matrix, meta=ReportMeta(scale="small", seed=6, notes="hi"), ps=(2,))
        assert "seed: `6`" in doc
        assert "notes: hi" in doc

    def test_significance_section(self, matrix):
        doc = render_report(matrix, ps=(2,))
        assert "Accuracy significance" in doc
        # either lists cells or says nothing differs
        assert ("no cell differs" in doc) or ("→" in doc)

    def test_without_datasets_skips_table1(self, matrix):
        doc = render_report(matrix, ps=(2,))
        assert "Table 1" not in doc

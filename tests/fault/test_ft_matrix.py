"""Cross-backend fault-tolerance parity matrix (sim / local / mpi).

One scenario — the acceptance WorkerCrash + Straggler plan on krki —
must recover to the bit-identical theory and epoch log of the fault-free
sim run on every substrate.  Sim and local legs run in-process; the MPI
legs shell out to an ``mpiexec`` SPMD launch of ``mpi_driver.py`` and
are skipped — never failed — on hosts without mpi4py/mpiexec (the CI
``mpi-smoke`` job provides both).
"""

import json
import shutil
import subprocess
import sys
from pathlib import Path

import pytest

from helpers_fault import log_tuples, run_args
from repro.backend import make_backend
from repro.cluster.mpi_backend import mpi_available
from repro.fault.plan import FaultPlan, Straggler, WorkerCrash
from repro.parallel import run_p2mdie

TIMEOUT = 2.0

#: the acceptance scenario: crash mid-pipeline + a 2x straggler, krki p=3.
PLAN = FaultPlan(
    crashes=(WorkerCrash(rank=2, on_recv=2, tag="start_pipeline"),),
    stragglers=(Straggler(rank=1, factor=2.0),),
    timeout=TIMEOUT,
)

needs_mpi = pytest.mark.skipif(
    not mpi_available() or shutil.which("mpiexec") is None,
    reason="mpi4py / mpiexec not available",
)


@pytest.fixture(scope="module")
def base(krki):
    """Fault-free sim baseline every substrate must reproduce."""
    return run_p2mdie(*run_args(krki), p=3, width=10, seed=0)


def _expected(base) -> dict:
    """The baseline in the JSON shape mpi_driver.py reports."""
    return {
        "theory": [str(r) for r in base.theory],
        "log": [
            [log.epoch, log.bag_size, [str(c) for c in log.accepted], log.pos_covered]
            for log in base.epoch_logs
        ],
    }


class TestMatrixInProcess:
    @pytest.mark.parametrize("backend", ["sim", "local"])
    def test_crash_straggler_parity(self, krki, base, backend):
        bk = make_backend(backend, fault_plan=PLAN, timeout=300.0)
        r = run_p2mdie(*run_args(krki), p=3, width=10, seed=0, fault_plan=PLAN, backend=bk)
        assert r.theory == base.theory
        assert log_tuples(r) == log_tuples(base)
        assert any(f.kind == "crash" and f.rank == 2 for f in r.fault_log)


@needs_mpi
class TestMatrixMPI:
    def _launch(self, tmp_path, n, extra) -> dict:
        driver = Path(__file__).with_name("mpi_driver.py")
        out = tmp_path / f"mpi-{n}-{len(list(tmp_path.iterdir()))}.json"
        cmd = ["mpiexec", "-n", str(n), sys.executable, str(driver), "--out", str(out), *extra]
        proc = subprocess.run(cmd, capture_output=True, text=True, timeout=600)
        assert proc.returncode == 0, f"{' '.join(cmd)} failed:\n{proc.stderr[-3000:]}"
        return json.loads(out.read_text())

    def test_fault_free_parity(self, base, tmp_path):
        got = self._launch(tmp_path, 4, ["--p", "3"])
        exp = _expected(base)
        assert got["theory"] == exp["theory"]
        assert got["log"] == exp["log"]

    def test_crash_straggler_recovery(self, base, tmp_path):
        plan_file = tmp_path / "plan.json"
        plan_file.write_text(PLAN.to_json())
        got = self._launch(tmp_path, 4, ["--p", "3", "--plan", str(plan_file)])
        exp = _expected(base)
        assert got["theory"] == exp["theory"]
        assert got["log"] == exp["log"]
        assert ["crash", 2] in got["fault_log"]
        assert any("declared dead" in ev for ev in got["fault_events"])

    def test_crash_with_spare_adoption(self, base, tmp_path):
        plan = FaultPlan(
            crashes=(WorkerCrash(rank=3, on_recv=1, tag="evaluate"),), timeout=TIMEOUT
        )
        plan_file = tmp_path / "plan.json"
        plan_file.write_text(plan.to_json())
        got = self._launch(tmp_path, 5, ["--p", "3", "--spares", "1", "--plan", str(plan_file)])
        assert got["theory"] == _expected(base)["theory"]
        assert any("adopted by host 4" in ev for ev in got["fault_events"])

    def test_resume_on_mpi(self, base, tmp_path):
        ck = tmp_path / "ckpt"
        self._launch(tmp_path, 4, ["--p", "3", "--checkpoint-dir", str(ck)])
        ckpts = sorted(ck.glob("*.ckpt"))
        assert ckpts, "checkpointed MPI run wrote no epoch snapshots"
        got = self._launch(tmp_path, 4, ["--p", "3", "--resume-from", str(ckpts[0])])
        assert got["theory"] == _expected(base)["theory"]

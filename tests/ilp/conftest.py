"""Shared ILP test fixtures: the family (daughter/2) problem.

Also registers the pinned ``sampling-ci`` hypothesis profile the CI
``sampling-parity`` job selects with ``--hypothesis-profile=sampling-ci``:
derandomized with a fixed example budget, so the property stream is
byte-reproducible across machines and reruns.
"""

import pytest

from repro.ilp.config import ILPConfig

try:  # hypothesis is optional: only the property suite needs it
    from hypothesis import settings
except ImportError:
    pass
else:
    settings.register_profile(
        "sampling-ci", max_examples=60, deadline=None, derandomize=True
    )
from repro.ilp.modes import ModeSet
from repro.logic.engine import Engine
from repro.logic.knowledge import KnowledgeBase
from repro.logic.parser import parse_term


@pytest.fixture
def family_kb() -> KnowledgeBase:
    kb = KnowledgeBase()
    kb.add_program(
        """
        parent(ann, mary). parent(ann, tom). parent(tom, eve). parent(tom, ian).
        parent(sue, bob). parent(bob, joan). parent(eve, kim). parent(mary, liz).
        female(ann). female(mary). female(eve). female(sue). female(joan).
        female(kim). female(liz).
        male(tom). male(ian). male(bob).
        """
    )
    return kb


@pytest.fixture
def family_pos():
    return [
        parse_term(s)
        for s in (
            "daughter(mary, ann)",
            "daughter(eve, tom)",
            "daughter(joan, bob)",
            "daughter(kim, eve)",
            "daughter(liz, mary)",
        )
    ]


@pytest.fixture
def family_neg():
    return [
        parse_term(s)
        for s in (
            "daughter(tom, ann)",
            "daughter(ian, tom)",
            "daughter(eve, ann)",
            "daughter(ann, mary)",
            "daughter(bob, sue)",
        )
    ]


@pytest.fixture
def family_modes() -> ModeSet:
    return ModeSet(
        [
            "modeh(1, daughter(+person, +person))",
            "modeb(*, parent(+person, -person))",
            "modeb(*, parent(-person, +person))",
            "modeb(1, female(+person))",
            "modeb(1, male(+person))",
        ]
    )


@pytest.fixture
def family_config() -> ILPConfig:
    return ILPConfig(min_pos=1, noise=0, max_clause_length=3, var_depth=2, max_nodes=500)


@pytest.fixture
def family_engine(family_kb, family_config) -> Engine:
    return Engine(family_kb, family_config.engine_budget())

"""Service-protocol messages in the compact wire encoding (codes 24-27).

The service's default transport is JSON-lines — debuggable with ``nc``
and fine for control traffic — but query payloads are dominated by two
things JSON represents badly: example term lists (rendered as strings,
re-parsed server-side) and covered bitsets (hex strings).  The
:mod:`repro.parallel.wire` codec already carries both natively between
cluster nodes, so the server offers it as a **negotiated alternative
client transport**: a client asks for ``"transport": "wire"`` in its
JSON hello, and on acknowledgement the connection switches from
newline-delimited JSON to length-prefixed wire frames (4-byte big-endian
length, then one wire message).  Servers that predate the hello op
reject it, so clients fall back to JSON-lines automatically.

Four message types cover the protocol:

* :class:`WireJson` — any control request/response, as a JSON envelope.
  Keeps dispatch uniform: ops other than ``query`` gain nothing from a
  binary layout, so they ride unchanged inside one wire symbol.
* :class:`WireQuery` — a coverage query: terms travel as tagged wire
  terms with a per-message symbol table, not strings.
* :class:`WireShard` — one streamed shard frame (span-local bitset).
* :class:`WireQueryEnd` — end-of-batch summary with the merged bitset.

Codes are registered append-only via :func:`repro.parallel.wire.register_codec`
(24-27; see that docstring's reservation list).
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass
from typing import Optional

from repro.logic.terms import Term
from repro.parallel import wire
from repro.service.errors import FrameTooLarge

__all__ = [
    "WireJson",
    "WireQuery",
    "WireShard",
    "WireQueryEnd",
    "pack_frame",
    "FRAME_HEADER",
    "MAX_FRAME",
    "read_frame_from",
    "write_frame_to",
]

#: struct format of the frame length prefix (4-byte big-endian).
FRAME_HEADER = struct.Struct(">I")

#: refuse frames above this size (64 MiB) — a desynchronized or hostile
#: peer must not make the server allocate arbitrary buffers.
MAX_FRAME = 64 * 1024 * 1024


@dataclass(frozen=True)
class WireJson:
    """A JSON-lines request/response carried verbatim over wire framing."""

    payload: dict


@dataclass(frozen=True)
class WireQuery:
    """A ``query`` request with examples as native wire terms."""

    name: str
    examples: tuple[Term, ...]
    version: Optional[int] = None
    micro_batch: int = 1024
    shards: int = 0  # 0 = server default
    stream: bool = False


@dataclass(frozen=True)
class WireShard:
    """One streamed shard result (bit i of ``covered`` = example lo+i)."""

    shard: int
    lo: int
    n: int
    covered: int
    ops: int


@dataclass(frozen=True)
class WireQueryEnd:
    """End-of-batch summary; ``covered`` is the merged batch bitset."""

    covered: int
    n: int
    ops: int
    shards: int


# -- codecs (append-only codes 24-27) ---------------------------------------------


def _enc_json(e, m: WireJson) -> None:
    e.sym(json.dumps(m.payload, sort_keys=True, separators=(",", ":")))


def _dec_json(d) -> WireJson:
    return WireJson(payload=json.loads(d.sym()))


def _enc_query(e, m: WireQuery) -> None:
    e.sym(m.name)
    e.flag(m.version is not None)
    if m.version is not None:
        e.u(m.version)
    e.u(m.micro_batch)
    e.u(m.shards)
    e.flag(m.stream)
    e.terms(m.examples)


def _dec_query(d) -> WireQuery:
    name = d.sym()
    version = d.u() if d.flag() else None
    micro_batch = d.u()
    shards = d.u()
    stream = d.flag()
    return WireQuery(
        name=name,
        examples=d.terms(),
        version=version,
        micro_batch=micro_batch,
        shards=shards,
        stream=stream,
    )


def _enc_shard(e, m: WireShard) -> None:
    e.u(m.shard)
    e.u(m.lo)
    e.u(m.n)
    e.u(m.ops)
    e.bitset(m.covered)


def _dec_shard(d) -> WireShard:
    shard, lo, n, ops = d.u(), d.u(), d.u(), d.u()
    return WireShard(shard=shard, lo=lo, n=n, covered=d.bitset(), ops=ops)


def _enc_query_end(e, m: WireQueryEnd) -> None:
    e.u(m.n)
    e.u(m.ops)
    e.u(m.shards)
    e.bitset(m.covered)


def _dec_query_end(d) -> WireQueryEnd:
    n, ops, shards = d.u(), d.u(), d.u()
    return WireQueryEnd(covered=d.bitset(), n=n, ops=ops, shards=shards)


wire.register_codec(WireJson, 24, _enc_json, _dec_json)
wire.register_codec(WireQuery, 25, _enc_query, _dec_query)
wire.register_codec(WireShard, 26, _enc_shard, _dec_shard)
wire.register_codec(WireQueryEnd, 27, _enc_query_end, _dec_query_end)


# -- framing ----------------------------------------------------------------------


def pack_frame(message: object) -> bytes:
    """Length-prefixed wire frame for one protocol message.

    Refuses to build frames over :data:`MAX_FRAME` with a structured
    :class:`~repro.service.errors.FrameTooLarge` — the sender learns
    immediately instead of shipping 64 MiB only to be rejected.
    """
    data = wire.encode_always(message)
    if data is None:
        raise wire.WireError(f"no wire codec for {type(message).__name__}")
    if len(data) > MAX_FRAME:
        raise FrameTooLarge(
            f"outbound wire frame of {len(data)} bytes exceeds the "
            f"{MAX_FRAME}-byte cap; split the batch"
        )
    return FRAME_HEADER.pack(len(data)) + data


def write_frame_to(fobj, message: object) -> int:
    """Write one frame to a binary file object; returns bytes written."""
    frame = pack_frame(message)
    fobj.write(frame)
    fobj.flush()
    return len(frame)


def read_frame_from(fobj) -> tuple[Optional[object], int]:
    """(message, bytes read) from a binary file object; (None, n) on EOF."""
    header = fobj.read(FRAME_HEADER.size)
    if len(header) < FRAME_HEADER.size:
        return None, len(header)
    (length,) = FRAME_HEADER.unpack(header)
    if length > MAX_FRAME:
        raise FrameTooLarge(
            f"incoming wire frame of {length} bytes exceeds the "
            f"{MAX_FRAME}-byte cap"
        )
    data = fobj.read(length)
    if len(data) < length:
        return None, FRAME_HEADER.size + len(data)
    return wire.decode(data), FRAME_HEADER.size + length

"""Tests for the extensions beyond the paper: inter-epoch repartitioning
(§4.1's rejected alternative) and heterogeneous-cluster cost modelling."""

import pytest

from repro.cluster.costmodel import OpsCostModel, PerRankCostModel
from repro.cluster.message import Tag
from repro.ilp.theory import accuracy
from repro.logic.engine import Engine
from repro.parallel.p2mdie import run_p2mdie


class TestRepartitioning:
    def test_still_learns(self, kb, pos, neg, modes, config):
        res = run_p2mdie(kb, pos, neg, modes, config, p=3, seed=3, repartition_each_epoch=True)
        assert res.uncovered == 0
        eng = Engine(kb, config.engine_budget())
        assert accuracy(eng, res.theory, pos, neg) == 100.0

    def test_deterministic(self, kb, pos, neg, modes, config):
        a = run_p2mdie(kb, pos, neg, modes, config, p=3, seed=3, repartition_each_epoch=True)
        b = run_p2mdie(kb, pos, neg, modes, config, p=3, seed=3, repartition_each_epoch=True)
        assert list(a.theory) == list(b.theory)
        assert a.seconds == b.seconds

    def test_costs_more_communication_when_multi_epoch(self, kb, pos, neg, modes, config):
        """The paper's §4.1 claim: repartitioning has 'a considerable cost
        in message communication'.  Force several epochs with width=1."""
        base = run_p2mdie(kb, pos, neg, modes, config, p=3, width=1, seed=1)
        repart = run_p2mdie(
            kb, pos, neg, modes, config, p=3, width=1, seed=1, repartition_each_epoch=True
        )
        if repart.epochs > 1:
            assert repart.comm.bytes_total > base.comm.bytes_total

    def test_single_epoch_identical_to_base(self, kb, pos, neg, modes, config):
        """Repartitioning only happens from epoch 2 on; a one-epoch run is
        byte-for-byte identical."""
        base = run_p2mdie(kb, pos, neg, modes, config, p=3, seed=3, max_epochs=1)
        repart = run_p2mdie(
            kb, pos, neg, modes, config, p=3, seed=3, max_epochs=1, repartition_each_epoch=True
        )
        assert base.comm.bytes_total == repart.comm.bytes_total
        assert list(base.theory) == list(repart.theory)


class TestHeterogeneousCluster:
    def test_scales_validation(self):
        with pytest.raises(ValueError):
            PerRankCostModel(scales={1: 0})

    def test_uniform_when_no_scales(self):
        cm = PerRankCostModel(OpsCostModel(sec_per_op=1.0))
        assert cm.seconds_for_ops_at(3, 10) == 10.0

    def test_straggler_slows_run(self, kb, pos, neg, modes, config):
        fast = run_p2mdie(kb, pos, neg, modes, config, p=3, seed=3)
        slow_cm = PerRankCostModel(OpsCostModel(), scales={2: 4.0})
        slow = run_p2mdie(kb, pos, neg, modes, config, p=3, seed=3, cost_model=slow_cm)
        assert slow.seconds > fast.seconds
        # but the learned theory is unchanged: timing never affects search
        assert list(slow.theory) == list(fast.theory)

    def test_straggler_bounded_by_its_scale(self, kb, pos, neg, modes, config):
        fast = run_p2mdie(kb, pos, neg, modes, config, p=3, seed=3)
        slow_cm = PerRankCostModel(OpsCostModel(), scales={2: 4.0})
        slow = run_p2mdie(kb, pos, neg, modes, config, p=3, seed=3, cost_model=slow_cm)
        assert slow.seconds <= 4.0 * fast.seconds + 1.0

"""Unit tests for Clause and Theory."""

import pytest

from repro.logic.clause import Clause, Theory, head_indicator
from repro.logic.parser import parse_clause
from repro.logic.terms import Const, Var, atom
from repro.logic.unify import unify


class TestClause:
    def test_fact(self):
        c = Clause(atom("p", "a"))
        assert c.is_fact
        assert len(c) == 1
        assert str(c) == "p(a)."

    def test_nonground_headonly_not_fact(self):
        assert not Clause(atom("p", "X")).is_fact

    def test_str_rule(self):
        c = parse_clause("p(X) :- q(X).")
        assert str(c) == "p(X) :- q(X)."

    def test_equality_and_hash(self):
        a = parse_clause("p(X) :- q(X).")
        b = parse_clause("p(X) :- q(X).")
        assert a == b
        assert len({a, b}) == 1

    def test_length_counts_head(self):
        assert len(parse_clause("p(X) :- q(X), r(X).")) == 3

    def test_indicator(self):
        assert parse_clause("p(a, b).").indicator == ("p", 2)
        assert head_indicator(Const("halt")) == ("halt", 0)

    def test_variables_order(self):
        c = parse_clause("p(X, Y) :- q(Y, Z).")
        assert [v.name for v in c.variables()] == ["X", "Y", "Z"]

    def test_rename_apart_preserves_sharing(self):
        c = parse_clause("p(X) :- q(X, Y), r(Y).")
        r = c.rename_apart()
        assert r != c
        # head var == first body literal var after renaming
        assert r.head.args[0] == r.body[0].args[0]
        assert r.body[0].args[1] == r.body[1].args[0]
        # and the renamed clause unifies with the original
        assert unify(r.head, c.head) is not None

    def test_substitute(self):
        c = parse_clause("p(X) :- q(X).")
        s = {Var("X"): Const("a")}
        assert c.substitute(s) == parse_clause("p(a) :- q(a).")

    def test_with_extra_literal(self):
        c = parse_clause("p(X) :- q(X).")
        c2 = c.with_extra_literal(atom("r", "X"))
        assert c2.body == (atom("q", "X"), atom("r", "X"))
        assert c.body == (atom("q", "X"),)  # original untouched

    def test_head_cannot_be_var(self):
        with pytest.raises(TypeError):
            Clause(Var("X"))


class TestTheory:
    def test_ordering_preserved(self):
        t = Theory()
        a = parse_clause("p(a).")
        b = parse_clause("p(b).")
        t.add(a)
        t.add(b)
        assert list(t) == [a, b]
        assert t[0] == a

    def test_len_and_total_literals(self):
        t = Theory([parse_clause("p(X) :- q(X)."), parse_clause("r(a).")])
        assert len(t) == 2
        assert t.total_literals() == 3

    def test_str(self):
        t = Theory([parse_clause("p(a).")])
        assert str(t) == "p(a)."

    def test_equality(self):
        t1 = Theory([parse_clause("p(a).")])
        t2 = Theory([parse_clause("p(a).")])
        assert t1 == t2

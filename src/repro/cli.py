"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``learn``   run sequential MDIE or P²-MDIE on a bundled dataset and print
            the learned theory plus run statistics;
``resume``  continue a checkpointed run bit-identically from a snapshot;
``faults``  run the fault-injection sweep (recovery overhead & parity);
``tables``  run the evaluation matrix and print any of the paper's tables;
``trace``   run one traced epoch and print the pipeline Gantt chart;
``export``  write a bundled dataset to Aleph-style Prolog files.
"""

from __future__ import annotations

import argparse
import sys

from repro.backend import BACKEND_NAMES, BackendUnavailableError
from repro.datasets import DATASETS, make_dataset
from repro.experiments.runner import run_matrix
from repro.experiments.tables import (
    table1_datasets,
    table2_speedup,
    table3_times,
    table4_communication,
    table5_epochs,
    table6_accuracy,
)
from repro.experiments.trace import occupancy, render_gantt
from repro.ilp import accuracy, mdie
from repro.logic import Engine
from repro.logic.io import save_problem, theory_to_prolog
from repro.parallel import run_p2mdie, sequential_seconds

__all__ = ["main", "build_parser"]


def _parse_width(s: str):
    return None if s in ("nolimit", "none") else int(s)


def _add_backend_arg(sub_parser: argparse.ArgumentParser) -> None:
    sub_parser.add_argument(
        "--backend",
        choices=BACKEND_NAMES,
        default="sim",
        help="execution substrate for parallel runs: 'sim' = deterministic "
        "discrete-event simulation in virtual time (default), 'local' = real "
        "multiprocessing workers with wall-clock timing, 'mpi' = real MPI "
        "cluster via mpi4py (launch under mpiexec). The learned theory is "
        "identical across backends for the same seed/config.",
    )


def _add_fault_args(sub_parser: argparse.ArgumentParser) -> None:
    sub_parser.add_argument(
        "--fault-plan",
        metavar="PATH",
        default=None,
        help="JSON fault plan (crashes / stragglers / message drops / elastic "
        "joins) to inject; activates the self-healing protocol. The learned "
        "theory is identical to the fault-free run — only time and "
        "communication change. See repro.fault.plan.FaultPlan.",
    )
    sub_parser.add_argument(
        "--spares",
        type=int,
        default=0,
        help="standby worker hosts (ranks p+1..p+spares) provisioned for "
        "adoption after a crash or for elastic 'join' events",
    )
    sub_parser.add_argument(
        "--checkpoint-dir",
        metavar="DIR",
        default=None,
        help="write a resumable snapshot of master learning state after every "
        "epoch (wire-codec .ckpt files; continue with `repro resume`)",
    )


def _load_plan(args):
    if getattr(args, "fault_plan", None) is None:
        return None
    from repro.fault.plan import FaultPlan

    return FaultPlan.load(args.fault_plan)


def build_parser() -> argparse.ArgumentParser:
    ap = argparse.ArgumentParser(prog="repro", description=__doc__)
    # Shared by every subcommand: `repro learn ... --profile out.pstats`.
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument(
        "--profile",
        metavar="PATH",
        default=None,
        help="profile the run with cProfile and write pstats data to PATH "
        "(inspect with `python -m pstats PATH` or snakeviz)",
    )
    sub = ap.add_subparsers(dest="command", required=True)

    learn = sub.add_parser("learn", help="learn a theory on a bundled dataset", parents=[common])
    learn.add_argument("dataset", choices=sorted(DATASETS))
    learn.add_argument("--p", type=int, default=1, help="processors (1 = sequential MDIE)")
    learn.add_argument("--width", type=_parse_width, default=10, help="pipeline width or 'nolimit'")
    learn.add_argument("--seed", type=int, default=0)
    learn.add_argument("--scale", choices=("small", "paper"), default="small")
    _add_backend_arg(learn)
    _add_fault_args(learn)

    resume = sub.add_parser(
        "resume",
        help="continue a checkpointed run bit-identically",
        parents=[common],
        description="Continue a run from a .ckpt snapshot written by "
        "`repro learn --checkpoint-dir`. Dataset, scale, p and width are "
        "read back from the checkpoint metadata; the remaining epochs "
        "reproduce the uninterrupted run exactly.",
    )
    resume.add_argument("checkpoint", help="path to an epoch_NNNN.ckpt file")
    _add_backend_arg(resume)
    resume.add_argument(
        "--checkpoint-dir",
        metavar="DIR",
        default=None,
        help="keep checkpointing the continued run into DIR",
    )

    faults = sub.add_parser(
        "faults",
        help="fault-injection sweep: recovery overhead and theory parity",
        parents=[common],
        description="Run each parallel strategy fault-free and under injected "
        "fault scenarios (worker crash, straggler, crash+standby), assert "
        "the learned theory is identical, and report the recovery overhead.",
    )
    faults.add_argument("--dataset", choices=sorted(DATASETS), default="trains")
    faults.add_argument("--ps", default="2,4")
    faults.add_argument("--seed", type=int, default=0)
    faults.add_argument("--scale", choices=("small", "paper"), default="small")
    faults.add_argument(
        "--strategies",
        default="p2mdie",
        help="comma-separated subset of p2mdie,covpar,independent",
    )
    faults.add_argument(
        "--timeout", type=float, default=2.0, help="failure-detection timeout (seconds)"
    )
    _add_backend_arg(faults)

    tables = sub.add_parser(
        "tables", help="run the evaluation matrix and print paper tables", parents=[common]
    )
    tables.add_argument("--which", default="2,3,4,5,6", help="comma-separated table numbers (1-6)")
    tables.add_argument("--datasets", default="carcinogenesis,mesh,pyrimidines")
    tables.add_argument("--folds", type=int, default=3)
    tables.add_argument("--ps", default="2,4,8")
    tables.add_argument("--seed", type=int, default=0)
    tables.add_argument("--scale", choices=("small", "paper"), default="small")
    _add_backend_arg(tables)

    trace = sub.add_parser(
        "trace", help="render one epoch's pipeline activity (Figs. 3-4)", parents=[common]
    )
    trace.add_argument("dataset", choices=sorted(DATASETS))
    trace.add_argument("--p", type=int, default=3)
    trace.add_argument("--width", type=_parse_width, default=10)
    trace.add_argument("--seed", type=int, default=0)
    trace.add_argument("--scale", choices=("small", "paper"), default="small")
    _add_backend_arg(trace)

    export = sub.add_parser(
        "export", help="write a dataset as Aleph-style Prolog files", parents=[common]
    )
    export.add_argument("dataset", choices=sorted(DATASETS))
    export.add_argument("directory")
    export.add_argument("--seed", type=int, default=0)
    export.add_argument("--scale", choices=("small", "paper"), default="small")
    return ap


def _print_run_epilogue(res) -> None:
    """Shared run statistics: cache effectiveness + fault narrative."""
    if res.cache_stats:
        total = res.cache_hits + res.cache_misses
        rate = (100.0 * res.cache_hits / total) if total else 0.0
        print(
            f"% eval-cache: hits={res.cache_hits} misses={res.cache_misses} "
            f"({rate:.1f}% hit rate)"
        )
    for line in res.fault_events:
        print(f"% fault: {line}")
    for rec in res.fault_log:
        print(f"% injected: {rec}")


def _cmd_learn(args) -> int:
    ds = make_dataset(args.dataset, seed=args.seed, scale=args.scale)
    print(f"% dataset {ds.name}: |E+|={ds.n_pos} |E-|={ds.n_neg}")
    plan = _load_plan(args)
    meta = (
        ("dataset", args.dataset),
        ("scale", args.scale),
        ("p", str(args.p)),
        ("width", "nolimit" if args.width is None else str(args.width)),
    )
    if args.p == 1:
        if plan is not None:
            print("repro: --fault-plan requires --p > 1 (sequential runs have no pool)", file=sys.stderr)
            return 2
        if args.spares:
            print("repro: --spares requires --p > 1 and a --fault-plan", file=sys.stderr)
            return 2
        res = mdie(
            ds.kb, ds.pos, ds.neg, ds.modes, ds.config, seed=args.seed,
            checkpoint_dir=args.checkpoint_dir, checkpoint_meta=meta,
        )
        seconds = sequential_seconds(res)
        extra = f"% epochs={res.epochs} ops={res.ops} uncovered={res.uncovered}"
        theory = res.theory
        parallel_res = None
    else:
        if args.spares and plan is None:
            print("repro: --spares requires a --fault-plan (standby hosts are a fault-tolerance feature)", file=sys.stderr)
            return 2
        res = run_p2mdie(
            ds.kb, ds.pos, ds.neg, ds.modes, ds.config, p=args.p, width=args.width,
            seed=args.seed, backend=args.backend,
            fault_plan=plan, spares=args.spares,
            checkpoint_dir=args.checkpoint_dir, checkpoint_meta=meta,
        )
        seconds = res.seconds
        extra = (
            f"% epochs={res.epochs} comm={res.mbytes:.3f}MB uncovered={res.uncovered}"
        )
        theory = res.theory
        parallel_res = res
    engine = Engine(ds.kb, ds.config.engine_budget(), kernel=ds.config.coverage_kernel)
    acc = accuracy(engine, theory, ds.pos, ds.neg)
    print(theory_to_prolog(theory, header=f"learned by {'mdie' if args.p == 1 else 'p2-mdie'}"))
    print(extra)
    time_label = "virtual-time" if args.p == 1 or args.backend == "sim" else "wall-time"
    print(f"% {time_label}={seconds:.1f}s training-accuracy={acc:.1f}%")
    if parallel_res is not None:
        _print_run_epilogue(parallel_res)
    if args.checkpoint_dir:
        print(f"% checkpoints in {args.checkpoint_dir}/ (continue with `repro resume`)")
    return 0


def _cmd_resume(args) -> int:
    from repro.fault.checkpoint import load_checkpoint

    state = load_checkpoint(args.checkpoint)
    meta = state.meta_dict()
    dataset = meta.get("dataset")
    if dataset is None:
        print(
            "repro: checkpoint carries no dataset metadata (was it written by "
            "`repro learn --checkpoint-dir`?)",
            file=sys.stderr,
        )
        return 2
    scale = meta.get("scale", "small")
    ds = make_dataset(dataset, seed=state.seed, scale=scale)
    print(
        f"% resuming {state.algo} on {dataset} from epoch {state.epoch} "
        f"({state.remaining} positives uncovered)"
    )
    if state.algo == "mdie":
        res = mdie(
            ds.kb, ds.pos, ds.neg, ds.modes, ds.config, seed=state.seed,
            resume=state, checkpoint_dir=args.checkpoint_dir, checkpoint_meta=state.meta,
        )
        seconds = sequential_seconds(res)
        theory = res.theory
        extra = f"% epochs={res.epochs} ops={res.ops} uncovered={res.uncovered}"
        parallel_res = None
    elif state.algo == "p2mdie":
        width = _parse_width(meta.get("width", "10"))
        res = run_p2mdie(
            ds.kb, ds.pos, ds.neg, ds.modes, ds.config, p=state.n_workers, width=width,
            seed=state.seed, backend=args.backend, resume=state,
            checkpoint_dir=args.checkpoint_dir, checkpoint_meta=state.meta,
        )
        seconds = res.seconds
        theory = res.theory
        extra = f"% epochs={res.epochs} comm={res.mbytes:.3f}MB uncovered={res.uncovered}"
        parallel_res = res
    elif state.algo == "covpar":
        from repro.parallel import run_coverage_parallel

        res = run_coverage_parallel(
            ds.kb, ds.pos, ds.neg, ds.modes, ds.config, p=state.n_workers,
            seed=state.seed, backend=args.backend, resume=state,
            checkpoint_dir=args.checkpoint_dir, checkpoint_meta=state.meta,
        )
        seconds = res.seconds
        theory = res.theory
        extra = f"% epochs={res.epochs} comm={res.mbytes:.3f}MB uncovered={res.uncovered}"
        parallel_res = res
    else:
        print(f"repro: cannot resume algo {state.algo!r}", file=sys.stderr)
        return 2
    engine = Engine(ds.kb, ds.config.engine_budget(), kernel=ds.config.coverage_kernel)
    acc = accuracy(engine, theory, ds.pos, ds.neg)
    print(theory_to_prolog(theory, header=f"resumed {state.algo}"))
    print(extra)
    print(f"% seconds={seconds:.1f} training-accuracy={acc:.1f}%")
    if parallel_res is not None:
        _print_run_epilogue(parallel_res)
    return 0


def _cmd_faults(args) -> int:
    from repro.experiments.faultsweep import render_fault_sweep, run_fault_sweep

    ps = tuple(int(x) for x in args.ps.split(","))
    strategies = tuple(args.strategies.split(","))
    records = run_fault_sweep(
        dataset=args.dataset,
        ps=ps,
        strategies=strategies,
        seed=args.seed,
        scale=args.scale,
        backend=args.backend,
        timeout=args.timeout,
    )
    print(render_fault_sweep(records))
    bad = [r for r in records if not r.parity]
    if bad:
        print(f"repro: {len(bad)} scenario(s) broke theory parity!", file=sys.stderr)
        return 1
    return 0


def _cmd_tables(args) -> int:
    which = {int(x) for x in args.which.split(",")}
    names = tuple(args.datasets.split(","))
    ps = tuple(int(x) for x in args.ps.split(","))
    if 1 in which:
        datasets = [make_dataset(n, seed=args.seed, scale=args.scale) for n in names]
        print(table1_datasets(datasets) + "\n")
    if which - {1}:
        matrix = run_matrix(
            dataset_names=names, ps=ps, k_folds=args.folds, scale=args.scale,
            seed=args.seed, backend=args.backend,
        )
        renderers = {
            2: table2_speedup,
            3: table3_times,
            4: table4_communication,
            5: table5_epochs,
            6: table6_accuracy,
        }
        for n in sorted(which - {1}):
            print(renderers[n](matrix, ps=ps) + "\n")
    return 0


def _cmd_trace(args) -> int:
    ds = make_dataset(args.dataset, seed=args.seed, scale=args.scale)
    res = run_p2mdie(
        ds.kb, ds.pos, ds.neg, ds.modes, ds.config, p=args.p, width=args.width,
        seed=args.seed, record_trace=True, max_epochs=1, backend=args.backend,
    )
    print(render_gantt(res.trace, width=100, t_end=res.seconds))
    occ = occupancy(res.trace, res.seconds)
    print("busy fractions:", "  ".join(f"rank{r}={f:.2f}" for r, f in occ.items()))
    return 0


def _cmd_export(args) -> int:
    ds = make_dataset(args.dataset, seed=args.seed, scale=args.scale)
    save_problem(args.directory, ds.kb, ds.pos, ds.neg, modes=list(ds.modes))
    print(f"wrote {ds.name} ({ds.n_pos}+/{ds.n_neg}-) to {args.directory}/")
    return 0


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    handler = {
        "learn": _cmd_learn,
        "resume": _cmd_resume,
        "faults": _cmd_faults,
        "tables": _cmd_tables,
        "trace": _cmd_trace,
        "export": _cmd_export,
    }[args.command]
    try:
        if getattr(args, "profile", None):
            import cProfile

            profiler = cProfile.Profile()
            profiler.enable()
            try:
                return handler(args)
            finally:
                profiler.disable()
                profiler.dump_stats(args.profile)
                print(f"% wrote cProfile stats to {args.profile}", file=sys.stderr)
        return handler(args)
    except BackendUnavailableError as exc:
        print(f"repro: backend unavailable: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

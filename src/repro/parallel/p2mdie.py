"""P²-MDIE front-end: run the pipelined data-parallel algorithm end-to-end.

``run_p2mdie`` wires a :class:`~repro.parallel.master.P2Master` and ``p``
:class:`~repro.parallel.worker.P2Worker` ranks onto a
:class:`~repro.cluster.VirtualCluster`, executes to completion and returns
a :class:`P2Result` carrying everything the paper's tables need: the
learned theory, virtual execution time (Table 3), communication volume
(Table 4), and epoch count (Table 5).  Speedups (Table 2) come from
pairing it with a sequential :func:`repro.ilp.mdie.mdie` run via
:func:`sequential_seconds`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Union

from repro.backend import Backend, BackendRun, resolve_backend
from repro.cluster.costmodel import CostModel, DEFAULT_COST_MODEL, OpsCostModel
from repro.cluster.network import FAST_ETHERNET, NetworkModel
from repro.cluster.process import ComputeInterval
from repro.cluster.scheduler import CommStats
from repro.ilp.config import ILPConfig
from repro.ilp.mdie import MDIEResult
from repro.ilp.modes import ModeSet
from repro.logic.clause import Theory
from repro.logic.knowledge import KnowledgeBase
from repro.logic.terms import Term
from repro.parallel import wire
from repro.parallel.master import EpochLog, P2Master
from repro.parallel.partition import Partition, partition_examples
from repro.parallel.worker import P2Worker
from repro.util.rng import make_rng

__all__ = ["WorkerProblem", "SharedProblem", "P2Result", "run_p2mdie", "sequential_seconds"]


@dataclass(frozen=True)
class WorkerProblem:
    """Everything one worker reads from the shared filesystem."""

    kb: KnowledgeBase
    pos: tuple[Term, ...]
    neg: tuple[Term, ...]
    modes: ModeSet
    config: ILPConfig


class SharedProblem:
    """The simulated distributed filesystem (§4.1).

    The paper assumes background knowledge, constraints and example subsets
    are visible to every node through a shared FS, so ``load_examples``
    messages carry only a partition id.  This object plays that role: it
    holds the KB and the partitions; workers read their share by id.
    """

    def __init__(
        self,
        kb: KnowledgeBase,
        partitions: Sequence[Partition],
        modes: ModeSet,
        config: ILPConfig,
    ):
        self.kb = kb
        self.partitions = list(partitions)
        self.modes = modes
        self.config = config

    def worker_problem(self, partition_id: int) -> WorkerProblem:
        """Partition ids are worker ranks (1-based)."""
        part = self.partitions[partition_id - 1]
        return WorkerProblem(
            kb=self.kb,
            pos=part.pos,
            neg=part.neg,
            modes=self.modes,
            config=self.config,
        )


@dataclass
class P2Result:
    """Artifacts of one P²-MDIE run (everything Tables 2-6 consume)."""

    theory: Theory
    epochs: int
    #: virtual wall-clock of the whole run, in seconds (Table 3).
    seconds: float
    #: communication accounting (Table 4).
    comm: CommStats
    #: positives left uncovered at termination.
    uncovered: int
    epoch_logs: list[EpochLog] = field(default_factory=list)
    clocks: list[float] = field(default_factory=list)
    trace: list[ComputeInterval] = field(default_factory=list)

    @property
    def mbytes(self) -> float:
        return self.comm.mbytes_total


def run_p2mdie(
    kb: KnowledgeBase,
    pos: Sequence[Term],
    neg: Sequence[Term],
    modes: ModeSet,
    config: ILPConfig,
    p: int,
    width: Optional[int] = ...,
    seed: int = 0,
    network: NetworkModel = FAST_ETHERNET,
    cost_model: CostModel = DEFAULT_COST_MODEL,
    record_trace: bool = False,
    max_epochs: Optional[int] = None,
    stall_limit: int = 3,
    repartition_each_epoch: bool = False,
    share_mode: str = "shared_fs",
    backend: Union[Backend, str, None] = None,
) -> P2Result:
    """Run p2-mdie(E+, E-, B, C, p, w) — the paper's Fig. 5 entry point.

    ``width=...`` defaults to ``config.pipeline_width``; pass ``None``
    explicitly for the "nolimit" configuration.
    ``repartition_each_epoch`` enables the §4.1 alternative the paper
    rejected (reshuffling remaining examples before every epoch), so its
    communication cost can be measured.
    ``share_mode`` is ``"shared_fs"`` (paper's assumption: workers read
    their subsets from a distributed filesystem) or ``"messages"`` (the
    §4.1 fallback: the master ships background knowledge and example
    subsets over the network at start-up).
    ``backend`` selects the execution substrate: a
    :class:`~repro.backend.Backend` instance or a name (``"sim"``,
    ``"local"``, ``"mpi"``); ``None`` means the simulated cluster built
    from ``network``/``cost_model``.  On a real backend ``seconds`` is
    wall-clock time and the learned theory is identical to the sim's for
    the same seed/config (backend parity).
    """
    if p < 1:
        raise ValueError("p must be >= 1")
    if share_mode not in ("shared_fs", "messages"):
        raise ValueError("share_mode must be 'shared_fs' or 'messages'")
    rng = make_rng(seed, "partition")
    partitions = partition_examples(pos, neg, p, rng)
    shared = SharedProblem(kb, partitions, modes, config)
    ship_data = None
    if share_mode == "messages":
        from repro.parallel.messages import LoadData

        facts = tuple(f for ind in kb.predicates() for f in kb.facts_for(ind))
        rules = tuple(r for ind in kb.predicates() for r in kb.rules_for(ind))
        ship_data = [
            LoadData(pos=part.pos, neg=part.neg, facts=facts, rules=rules)
            for part in partitions
        ]
    master = P2Master(
        n_workers=p,
        total_pos=len(pos),
        config=config,
        width=width,
        max_epochs=max_epochs,
        stall_limit=stall_limit,
        repartition_each_epoch=repartition_each_epoch,
        seed=seed,
        ship_data=ship_data,
    )
    workers = [P2Worker(rank, shared, p, seed=seed) for rank in range(1, p + 1)]
    bk = resolve_backend(
        backend, network=network, cost_model=cost_model, record_trace=record_trace
    )
    with wire.configured(config.wire_codec):
        run: BackendRun = bk.run([master, *workers])
    # Read the master's run artifacts from the backend's returned process
    # state: on multi-process backends the local ``master`` object was
    # never mutated (rank 0 ran in a child process).
    final = run.proc(0)
    return P2Result(
        theory=final.theory,
        epochs=final.epochs,
        seconds=run.seconds,
        comm=run.comm,
        uncovered=max(final.remaining, 0),
        epoch_logs=final.epoch_logs,
        clocks=run.clocks,
        trace=run.trace,
    )


def sequential_seconds(result: MDIEResult, cost_model: CostModel = DEFAULT_COST_MODEL) -> float:
    """Virtual execution time of a sequential MDIE run.

    The sequential algorithm runs on one node with no communication, so its
    virtual time is exactly its engine work under the same cost model the
    cluster charges — making Table 2's speedup ratios well-defined.
    """
    return cost_model.seconds_for_ops(result.ops)

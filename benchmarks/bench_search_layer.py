"""Search-layer benchmark: the PR 2 kernel vs the hash-consed/fingerprinted
search layer, plus the pickle-vs-wire communication comparison.

Part A — sequential MDIE, run in **subprocesses** so term interning (a
process-global, import-time switch) is measured honestly:

* ``pr2`` — the PR 2 state of the repo: iterative coverage kernel and
  coverage inheritance ON, but no term interning (``REPRO_INTERN=0``), no
  clause fingerprints, no saturation cache;
* ``new`` — the full search-layer overhaul: interned terms, fingerprint-
  keyed evaluation caches, saturation cache.

Both variants must learn the identical theory with identical per-epoch
logs (seed, rule, covered); the report records wall/ops speedups plus a
``Const`` equality micro-benchmark (satellite: the seed re-derived type
tags on every compare).

Part B — P²-MDIE on the sim backend at p=4, wire codec off vs on: same
theory, same message count, and the total ``CommStats`` bytes reduction.

Knobs:

* ``REPRO_SEARCH_DATASET`` — dataset name (default ``carcinogenesis``);
* ``REPRO_SCALE``          — ``small`` (default) or ``paper``;
* ``REPRO_SEED``           — RNG seed (default 0);
* ``REPRO_BENCH_SMOKE=1``  — CI smoke mode: reduced example counts and no
  speedup/reduction assertions (parity is always asserted).

Writes ``BENCH_search_layer.json`` at the **repo root** (all ``BENCH_*``
artifacts live there so the perf trajectory is trackable PR-over-PR).

Standalone: ``PYTHONPATH=src python benchmarks/bench_search_layer.py``.
Under the bench suite it runs as an ordinary test.
"""

from __future__ import annotations

import json
import os
import pathlib
import subprocess
import sys
import time

DATASET = os.environ.get("REPRO_SEARCH_DATASET", "carcinogenesis")
SCALE = os.environ.get("REPRO_SCALE", "small")
SEED = int(os.environ.get("REPRO_SEED", "0"))
SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")
ROOT = pathlib.Path(__file__).resolve().parent.parent
OUT_PATH = ROOT / "BENCH_search_layer.json"

#: variant -> (environment, ILPConfig overrides)
VARIANTS = {
    "pr2": (
        {"REPRO_INTERN": "0"},
        dict(clause_fingerprints=False, saturation_cache=False),
    ),
    "new": ({"REPRO_INTERN": "1"}, dict(clause_fingerprints=True, saturation_cache=True)),
}


def _dataset_kwargs() -> dict:
    if SMOKE:
        if DATASET == "carcinogenesis":
            return dict(seed=SEED, n_pos=24, n_neg=20)
        return dict(seed=SEED, n_pos=24, n_neg=24)
    return dict(seed=SEED, scale=SCALE)


def _const_eq_microbench(n: int = 200_000) -> float:
    """Seconds for ``n`` constant equality checks (identity fast path when
    interning is on; precomputed-key compare when off)."""
    from repro.logic.terms import Const

    a, b, c = Const("c_neg"), Const("c_neg"), Const(7)
    t0 = time.perf_counter()
    acc = 0
    for _ in range(n):
        if a == b:
            acc += 1
        if a == c:
            acc += 1
    dt = time.perf_counter() - t0
    assert acc == n
    return dt


def run_variant(overrides: dict) -> dict:
    """Run one sequential-MDIE variant in-process; print/return its report."""
    from repro.datasets import make_dataset
    from repro.ilp.bottom import saturation_cache_stats
    from repro.ilp.mdie import mdie
    from repro.logic.terms import intern_enabled, intern_stats

    ds = make_dataset(DATASET, **_dataset_kwargs())
    config = ds.config.replace(**overrides)
    t0 = time.perf_counter()
    res = mdie(ds.kb, ds.pos, ds.neg, ds.modes, config, seed=SEED)
    wall = time.perf_counter() - t0
    return {
        "wall_s": round(wall, 4),
        "ops": res.ops,
        "epochs": res.epochs,
        "uncovered": res.uncovered,
        "theory_size": len(res.theory),
        "theory": sorted(str(c) for c in res.theory),
        "log": [(str(s), str(r), c) for s, r, c, _ in res.log],
        "interned": intern_enabled(),
        "intern_stats": intern_stats(),
        "saturation_cache": saturation_cache_stats(),
        "const_eq_200k_s": round(_const_eq_microbench(), 4),
        "n_pos": ds.n_pos,
        "n_neg": ds.n_neg,
    }


def _spawn_variant(name: str) -> dict:
    env_extra, overrides = VARIANTS[name]
    env = dict(os.environ, **env_extra)
    env["PYTHONPATH"] = str(ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    proc = subprocess.run(
        [sys.executable, str(pathlib.Path(__file__).resolve()), "--variant", name],
        capture_output=True,
        text=True,
        env=env,
        cwd=str(ROOT),
    )
    if proc.returncode != 0:
        raise RuntimeError(f"variant {name} failed:\n{proc.stderr}")
    return json.loads(proc.stdout)


def run_wire_comparison() -> dict:
    """p=4 sim-backend run, pickle accounting vs wire codec."""
    from repro.datasets import make_dataset
    from repro.parallel import run_p2mdie

    ds = make_dataset(DATASET, **_dataset_kwargs())
    out = {}
    for name, flag in (("pickle", False), ("wire", True)):
        config = ds.config.replace(wire_codec=flag)
        t0 = time.perf_counter()
        res = run_p2mdie(ds.kb, ds.pos, ds.neg, ds.modes, config, p=4, seed=SEED)
        out[name] = {
            "wall_s": round(time.perf_counter() - t0, 4),
            "bytes_total": res.comm.bytes_total,
            "messages": res.comm.messages,
            "bytes_by_tag": {k: v for k, v in sorted(res.comm.bytes_by_tag.items())},
            "theory": sorted(str(c) for c in res.theory),
            "epochs": res.epochs,
            "uncovered": res.uncovered,
        }
    a, b = out["pickle"], out["wire"]
    out["reduction_bytes"] = round(a["bytes_total"] / b["bytes_total"], 3) if b["bytes_total"] else float("inf")
    out["parity"] = (
        a["theory"] == b["theory"]
        and a["messages"] == b["messages"]
        and a["epochs"] == b["epochs"]
        and a["uncovered"] == b["uncovered"]
    )
    return out


def run_benchmark() -> dict:
    pr2 = _spawn_variant("pr2")
    new = _spawn_variant("new")
    wire = run_wire_comparison()
    report = {
        "dataset": DATASET,
        "scale": SCALE,
        "seed": SEED,
        "smoke": SMOKE,
        "n_pos": new["n_pos"],
        "n_neg": new["n_neg"],
        "pr2": pr2,
        "new": new,
        "speedup": {
            "wall": round(pr2["wall_s"] / new["wall_s"], 3) if new["wall_s"] else float("inf"),
            "ops": round(pr2["ops"] / new["ops"], 3) if new["ops"] else float("inf"),
            "const_eq": round(pr2["const_eq_200k_s"] / new["const_eq_200k_s"], 3)
            if new["const_eq_200k_s"]
            else float("inf"),
        },
        "parity": pr2["theory"] == new["theory"]
        and pr2["epochs"] == new["epochs"]
        and pr2["uncovered"] == new["uncovered"]
        and pr2["log"] == new["log"],
        "wire": wire,
    }
    return report


def render(report: dict) -> str:
    lines = [
        f"Search layer — sequential MDIE on {report['dataset']} "
        f"({report['n_pos']}+/{report['n_neg']}-, seed {report['seed']}"
        f"{', smoke' if report['smoke'] else ''})",
        f"{'variant':>8}  {'wall s':>9}  {'engine ops':>12}  {'epochs':>6}  {'clauses':>7}",
    ]
    for name in ("pr2", "new"):
        r = report[name]
        lines.append(
            f"{name:>8}  {r['wall_s']:>9.3f}  {r['ops']:>12}  {r['epochs']:>6}  {r['theory_size']:>7}"
        )
    sp = report["speedup"]
    lines.append(
        f"speedup: {sp['wall']:.2f}x wall-clock, {sp['ops']:.2f}x engine ops, "
        f"{sp['const_eq']:.2f}x Const equality"
    )
    lines.append(f"parity: {'identical theories+logs' if report['parity'] else 'MISMATCH'}")
    w = report["wire"]
    lines.append(
        f"wire (p=4 sim): {w['pickle']['bytes_total']}B pickle -> "
        f"{w['wire']['bytes_total']}B wire = {w['reduction_bytes']:.2f}x reduction, "
        f"{'parity ok' if w['parity'] else 'PARITY MISMATCH'}"
    )
    return "\n".join(lines)


def write_report(report: dict) -> pathlib.Path:
    from bench_meta import write_bench_json

    return write_bench_json(OUT_PATH, report, SMOKE)


def check(report: dict) -> None:
    assert report["parity"], "search-layer parity violated: pr2 and new runs differ"
    assert report["wire"]["parity"], "wire codec changed learning results or message count"
    if not SMOKE:
        sp = report["speedup"]
        assert sp["wall"] >= 1.5, f"search-layer wall speedup below 1.5x: {sp}"
        assert report["wire"]["reduction_bytes"] >= 3.0, (
            f"wire byte reduction below 3x: {report['wire']['reduction_bytes']}"
        )


def test_search_layer():
    report = run_benchmark()
    print("\n" + render(report) + "\n")
    write_report(report)
    check(report)


if __name__ == "__main__":
    if len(sys.argv) >= 3 and sys.argv[1] == "--variant":
        _, overrides = VARIANTS[sys.argv[2]]
        print(json.dumps(run_variant(overrides)))
        sys.exit(0)
    report = run_benchmark()
    print(render(report))
    path = write_report(report)
    print(f"wrote {path}")
    check(report)

"""TheoryRegistry: versioned artifacts, promotion, diff, corruption."""

import pytest

from repro.logic import Theory, parse_clause
from repro.parallel import wire
from repro.service import RegistryError, TheoryRegistry
from repro.service.registry import RegistryRecord, theory_diff


def clause(s):
    return parse_clause(s)


@pytest.fixture
def theory_v1():
    return Theory([clause("p(X) :- q(X).")])


@pytest.fixture
def theory_v2():
    return Theory([clause("p(X) :- q(X)."), clause("p(X) :- r(X, Y), s(Y).")])


class TestPublishGet:
    def test_versions_append(self, registry, theory_v1, theory_v2):
        r1 = registry.publish("target", theory_v1, config_sig="cfg")
        r2 = registry.publish("target", theory_v2, config_sig="cfg")
        assert (r1.version, r2.version) == (1, 2)
        assert registry.versions("target") == [1, 2]
        assert registry.names() == ["target"]
        assert registry.latest_version("target") == 2

    def test_get_round_trips_theory(self, registry, theory_v2):
        registry.publish("t", theory_v2, config_sig="sig-abc",
                         provenance={"dataset": "trains", "seed": 0})
        rec = registry.get("t")
        assert rec.to_theory() == theory_v2
        assert rec.config_sig == "sig-abc"
        assert rec.provenance_dict()["dataset"] == "trains"
        # git SHA stamped automatically
        assert "git_sha" in rec.provenance_dict()

    def test_get_defaults_to_latest_then_promoted(self, registry, theory_v1, theory_v2):
        registry.publish("t", theory_v1)
        registry.publish("t", theory_v2)
        assert registry.get("t").version == 2
        registry.promote("t", 1)
        assert registry.get("t").version == 1
        assert registry.promoted_version("t") == 1
        assert registry.get("t", 2).version == 2

    def test_unknown_name_and_version(self, registry, theory_v1):
        with pytest.raises(RegistryError, match="no theory registered"):
            registry.get("missing")
        registry.publish("t", theory_v1)
        with pytest.raises(RegistryError, match="no version 9"):
            registry.get("t", 9)
        with pytest.raises(RegistryError, match="no version 9"):
            registry.promote("t", 9)

    def test_invalid_names_rejected(self, registry, theory_v1):
        for bad in ("../escape", "", ".hidden", "a/b"):
            with pytest.raises(RegistryError, match="invalid theory name"):
                registry.publish(bad, theory_v1)

    def test_names_skips_stray_entries(self, registry, theory_v1, tmp_path):
        import os

        registry.publish("real", theory_v1)
        # Stray contents a shared root accumulates: a dotdir, a non-theory
        # dir, a plain file.  The listing must skip them, not raise.
        os.makedirs(os.path.join(registry.root, ".git"))
        os.makedirs(os.path.join(registry.root, "empty-dir"))
        with open(os.path.join(registry.root, "notes.txt"), "w") as fh:
            fh.write("hi")
        assert registry.names() == ["real"]

    def test_corrupt_artifact_surfaces_as_registry_error(self, registry, theory_v1):
        registry.publish("t", theory_v1)
        path = registry._path("t", 1)
        with open(path, "wb") as fh:
            fh.write(b"\xc3garbage")
        with pytest.raises(RegistryError, match="corrupt|not a registry"):
            registry.get("t", 1)

    def test_record_bytes_deterministic(self, theory_v2):
        rec = RegistryRecord(
            format_version=1, name="t", version=3, theory=tuple(theory_v2),
            config_sig="cfg", provenance=(("a", "1"), ("b", "2")),
            epoch_summary=((1, 4, 10),),
        )
        data = wire.encode_always(rec)
        assert wire.decode(data) == rec
        assert wire.encode_always(rec) == data


class TestDiff:
    def test_diff_by_variant_key(self, registry, theory_v1, theory_v2):
        registry.publish("t", theory_v1)
        registry.publish("t", theory_v2)
        diff = registry.diff("t", 1, 2)
        assert [str(c) for c in diff["added"]] == [str(clause("p(X) :- r(X, Y), s(Y)."))]
        assert diff["removed"] == []
        assert len(diff["unchanged"]) == 1

    def test_renamed_variants_are_unchanged(self):
        old = Theory([clause("p(X) :- q(X).")])
        new = Theory([clause("p(Z) :- q(Z).")])  # renamed variant: same rule
        diff = theory_diff(old, new)
        assert diff["added"] == [] and diff["removed"] == []
        assert len(diff["unchanged"]) == 1


class TestRetentionGC:
    def publish_n(self, registry, theory, n, name="t"):
        for _ in range(n):
            registry.publish(name, theory)

    def test_gc_keeps_newest_versions(self, registry, theory_v1):
        self.publish_n(registry, theory_v1, 4)
        assert registry.gc("t", keep=2) == [1, 2]
        assert registry.versions("t") == [3, 4]
        # Surviving artifacts still load.
        assert registry.get("t", 3).to_theory() == theory_v1

    def test_gc_never_drops_promoted_version(self, registry, theory_v1):
        self.publish_n(registry, theory_v1, 4)
        registry.promote("t", 2)
        assert registry.gc("t", keep=1) == [1, 3]
        assert registry.versions("t") == [2, 4]
        # The served (promoted) theory is untouched.
        assert registry.get("t").version == 2

    def test_gc_version_numbers_never_reused(self, registry, theory_v1, theory_v2):
        self.publish_n(registry, theory_v1, 3)
        registry.gc("t", keep=1)
        record = registry.publish("t", theory_v2)
        assert record.version == 4

    def test_gc_keep_must_be_positive(self, registry, theory_v1):
        registry.publish("t", theory_v1)
        with pytest.raises(ValueError, match="keep"):
            registry.gc("t", keep=0)
        assert registry.gc("t", keep=1) == []

    def test_gc_unknown_name(self, registry):
        with pytest.raises(RegistryError, match="no theory"):
            registry.gc("ghost")

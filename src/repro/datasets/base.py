"""Dataset bundles and the generator registry.

A :class:`Dataset` packages everything one ILP problem needs: background
knowledge, positive/negative examples, mode declarations and a tuned
:class:`~repro.ilp.config.ILPConfig`.  Generators are registered under the
paper's dataset names; each accepts a ``scale``:

* ``"small"`` — seconds-scale problems for tests and default benchmark
  runs (same relational structure, fewer examples);
* ``"paper"`` — Table 1 cardinalities (carcinogenesis 162+/136-, mesh
  2840+/278-, pyrimidines 848+/764-).

The real datasets are not redistributable; these are *synthetic
equivalents* with planted target theories — see DESIGN.md §1 for why that
substitution preserves the paper's measurable behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.ilp.config import ILPConfig
from repro.ilp.modes import ModeSet
from repro.logic.knowledge import KnowledgeBase
from repro.logic.terms import Term

__all__ = ["Dataset", "DATASETS", "register_dataset", "make_dataset", "SCALES"]

SCALES = ("small", "paper")


@dataclass
class Dataset:
    """One ready-to-learn ILP problem."""

    name: str
    kb: KnowledgeBase
    pos: list[Term]
    neg: list[Term]
    modes: ModeSet
    config: ILPConfig
    #: the generator's hidden target theory, for diagnostics only
    target_description: str = ""

    @property
    def n_pos(self) -> int:
        return len(self.pos)

    @property
    def n_neg(self) -> int:
        return len(self.neg)

    def table1_row(self) -> tuple[str, int, int]:
        """(dataset, |E+|, |E-|) — one row of the paper's Table 1."""
        return (self.name, self.n_pos, self.n_neg)

    def stats(self) -> dict:
        out = {"name": self.name, "n_pos": self.n_pos, "n_neg": self.n_neg}
        out.update(self.kb.stats())
        return out


# name -> generator(seed=..., scale=...) -> Dataset
DATASETS: dict[str, Callable[..., Dataset]] = {}


def register_dataset(name: str):
    """Decorator: register a ``generator(seed=..., scale=...) -> Dataset``
    under ``name`` (making it available to ``make_dataset`` and the CLI)."""

    def deco(fn: Callable[..., Dataset]):
        DATASETS[name] = fn
        return fn

    return deco


def make_dataset(name: str, seed: int = 0, scale: str = "small", **kw) -> Dataset:
    """Instantiate a registered dataset generator by name."""
    try:
        fn = DATASETS[name]
    except KeyError:
        raise ValueError(f"unknown dataset {name!r}; known: {sorted(DATASETS)}") from None
    if scale not in SCALES:
        raise ValueError(f"unknown scale {scale!r}; use one of {SCALES}")
    return fn(seed=seed, scale=scale, **kw)

"""Unit tests for the discrete-event scheduler and virtual cluster."""

import pytest

from repro.cluster.cluster import VirtualCluster
from repro.cluster.costmodel import OpsCostModel
from repro.cluster.network import NetworkModel
from repro.cluster.process import SimProcess
from repro.cluster.scheduler import DeadlockError, Scheduler

NET = NetworkModel(latency_s=1.0, bandwidth_bps=1e9, send_overhead_s=0.0)
COST = OpsCostModel(sec_per_op=1.0)


class Echo(SimProcess):
    """Replies to every message until told to stop."""

    def run(self, ctx):
        while True:
            msg = yield ctx.recv()
            if msg.payload == "stop":
                return
            yield ctx.send(msg.src, ("echo", msg.payload), tag="reply")


class TestPointToPoint:
    def test_send_recv_roundtrip(self):
        got = []

        class Client(SimProcess):
            def run(self, ctx):
                yield ctx.send(1, "hello", tag="req")
                msg = yield ctx.recv(src=1)
                got.append(msg.payload)
                yield ctx.send(1, "stop", tag="req")

        run = VirtualCluster([Client(0), Echo(1)], network=NET, cost_model=COST).run()
        assert got == [("echo", "hello")]
        assert run.comm.messages == 3

    def test_latency_advances_clock(self):
        class Client(SimProcess):
            def run(self, ctx):
                yield ctx.send(1, "x", tag="req")
                yield ctx.recv(src=1)
                assert ctx.clock >= 2.0  # two hops of 1s latency
                yield ctx.send(1, "stop", tag="req")

        VirtualCluster([Client(0), Echo(1)], network=NET, cost_model=COST).run()

    def test_compute_advances_only_own_clock(self):
        class Busy(SimProcess):
            def run(self, ctx):
                yield ctx.compute(10)
                yield ctx.send(1, "stop", tag="req")

        run = VirtualCluster([Busy(0), Echo(1)], network=NET, cost_model=COST).run()
        assert run.clocks[0] >= 10.0
        assert run.clocks[1] < 12.0  # echo only waited for the message

    def test_fifo_per_link(self):
        order = []

        class Sender(SimProcess):
            def run(self, ctx):
                for i in range(5):
                    yield ctx.send(1, i, tag="data")

        class Receiver(SimProcess):
            def __init__(self):
                super().__init__(1)

            def run(self, ctx):
                for _ in range(5):
                    msg = yield ctx.recv(src=0)
                    order.append(msg.payload)

        VirtualCluster([Sender(0), Receiver()], network=NET, cost_model=COST).run()
        assert order == [0, 1, 2, 3, 4]

    def test_recv_filters_by_tag(self):
        got = []

        class Sender(SimProcess):
            def run(self, ctx):
                yield ctx.send(1, "a", tag="low")
                yield ctx.send(1, "b", tag="high")

        class Receiver(SimProcess):
            def __init__(self):
                super().__init__(1)

            def run(self, ctx):
                msg = yield ctx.recv(tag="high")
                got.append(msg.payload)
                msg = yield ctx.recv(tag="low")
                got.append(msg.payload)

        VirtualCluster([Sender(0), Receiver()], network=NET, cost_model=COST).run()
        assert got == ["b", "a"]


class TestBroadcast:
    def test_bcast_reaches_all(self):
        seen = []

        class Root(SimProcess):
            def run(self, ctx):
                yield ctx.bcast("ping", tag="b")

        class Leaf(SimProcess):
            def run(self, ctx):
                msg = yield ctx.recv(tag="b")
                seen.append((self.rank, msg.payload))

        VirtualCluster([Root(0), Leaf(1), Leaf(2), Leaf(3)], network=NET, cost_model=COST).run()
        assert sorted(seen) == [(1, "ping"), (2, "ping"), (3, "ping")]

    def test_bcast_serialised_at_sender(self):
        # large payloads: later recipients get later arrival times
        slow_net = NetworkModel(latency_s=0.0, bandwidth_bps=10.0, send_overhead_s=0.0)
        arrivals = {}

        class Root(SimProcess):
            def run(self, ctx):
                yield ctx.bcast("x" * 100, tag="b", dsts=(1, 2))

        class Leaf(SimProcess):
            def run(self, ctx):
                msg = yield ctx.recv(tag="b")
                arrivals[self.rank] = msg.arrival_time

        VirtualCluster([Root(0), Leaf(1), Leaf(2)], network=slow_net, cost_model=COST).run()
        assert arrivals[2] > arrivals[1]


class TestDeterminism:
    def test_identical_runs(self):
        def build():
            class Worker(SimProcess):
                def run(self, ctx):
                    msg = yield ctx.recv()
                    yield ctx.compute(len(str(msg.payload)))
                    yield ctx.send(0, msg.payload, tag="r")

            class Root(SimProcess):
                def run(self, ctx):
                    for k in (1, 2, 3):
                        yield ctx.send(k, f"job{k}", tag="w")
                    for _ in range(3):
                        yield ctx.recv(tag="r")

            return VirtualCluster(
                [Root(0), Worker(1), Worker(2), Worker(3)], network=NET, cost_model=COST
            )

        a, b = build().run(), build().run()
        assert a.makespan == b.makespan
        assert a.comm.bytes_total == b.comm.bytes_total
        assert a.clocks == b.clocks


class TestErrors:
    def test_deadlock_detected(self):
        class Stuck(SimProcess):
            def run(self, ctx):
                yield ctx.recv()

        with pytest.raises(DeadlockError):
            VirtualCluster([Stuck(0), Stuck(1)], network=NET, cost_model=COST).run()

    def test_duplicate_ranks_rejected(self):
        class P(SimProcess):
            def run(self, ctx):
                return
                yield

        with pytest.raises(ValueError):
            Scheduler([P(0), P(0)])

    def test_send_to_unknown_rank(self):
        class Bad(SimProcess):
            def run(self, ctx):
                yield ctx.send(99, "x", tag="t")

        with pytest.raises(ValueError):
            VirtualCluster([Bad(0)], network=NET, cost_model=COST).run()

    def test_non_syscall_yield_rejected(self):
        class Bad(SimProcess):
            def run(self, ctx):
                yield "not a syscall"

        with pytest.raises(TypeError):
            VirtualCluster([Bad(0)], network=NET, cost_model=COST).run()


class TestStatsAndTrace:
    def test_bytes_accounted_by_tag_and_link(self):
        class Root(SimProcess):
            def run(self, ctx):
                yield ctx.send(1, list(range(50)), tag="data")
                yield ctx.send(1, "tiny", tag="ctl")

        class Sink(SimProcess):
            def run(self, ctx):
                yield ctx.recv()
                yield ctx.recv()

        run = VirtualCluster([Root(0), Sink(1)], network=NET, cost_model=COST).run()
        assert set(run.comm.bytes_by_tag) == {"data", "ctl"}
        assert run.comm.bytes_by_link[(0, 1)] == run.comm.bytes_total
        assert run.comm.bytes_by_tag["data"] > run.comm.bytes_by_tag["ctl"]

    def test_trace_records_labels(self):
        class Busy(SimProcess):
            def run(self, ctx):
                yield ctx.compute(3, label="phase_a")
                yield ctx.compute(2, label="phase_b")

        cl = VirtualCluster([Busy(0)], network=NET, cost_model=COST, record_trace=True)
        run = cl.run()
        assert [iv.label for iv in run.trace] == ["phase_a", "phase_b"]
        assert run.trace[0].end == run.trace[1].start

    def test_makespan_is_max_clock(self):
        class Busy(SimProcess):
            def __init__(self, rank, amount):
                super().__init__(rank)
                self.amount = amount

            def run(self, ctx):
                yield ctx.compute(self.amount)

        run = VirtualCluster([Busy(0, 5), Busy(1, 11)], network=NET, cost_model=COST).run()
        assert run.makespan == 11.0

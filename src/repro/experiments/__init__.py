"""Evaluation harness: cross-validation, statistics, the experiment
matrix runner, table renderers (Tables 1-6) and the pipeline trace
(Figs. 3-4)."""

from repro.experiments.crossval import Fold, kfold
from repro.experiments.report import ReportMeta, render_report, speedup_summary
from repro.experiments.runner import MatrixResult, RunRecord, run_cell, run_matrix, width_label
from repro.experiments.stats import PairedTest, mean_std, paired_ttest
from repro.experiments.tables import (
    table1_datasets,
    table2_speedup,
    table3_times,
    table4_communication,
    table5_epochs,
    table6_accuracy,
)
from repro.experiments.trace import occupancy, render_gantt, stage_summary

__all__ = [
    "Fold",
    "kfold",
    "ReportMeta",
    "render_report",
    "speedup_summary",
    "MatrixResult",
    "RunRecord",
    "run_cell",
    "run_matrix",
    "width_label",
    "PairedTest",
    "mean_std",
    "paired_ttest",
    "table1_datasets",
    "table2_speedup",
    "table3_times",
    "table4_communication",
    "table5_epochs",
    "table6_accuracy",
    "occupancy",
    "render_gantt",
    "stage_summary",
]

#!/usr/bin/env python
"""Fault tolerance & elasticity demo on the KRK-illegal endgame task.

Runs P²-MDIE fault-free, then under increasingly hostile conditions —
a mid-run worker crash, the same crash with a standby host, a straggler,
and an elastic join — and shows that every run learns the *identical*
theory: the self-healing protocol rebuilds lost workers by deterministic
replay, so faults cost time and bytes, never results.

Also demonstrates epoch checkpointing and bit-identical resumption.

Run:  python examples/fault_tolerance.py [--p 3] [--backend sim|local]
"""

import argparse
import glob
import os
import tempfile

from repro.datasets import make_dataset
from repro.fault.checkpoint import load_checkpoint
from repro.fault.plan import FaultPlan, Straggler, WorkerCrash, WorkerJoin
from repro.parallel import run_p2mdie
from repro.util.fmt import render_table


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--p", type=int, default=3)
    ap.add_argument("--backend", default="sim", choices=("sim", "local"))
    ap.add_argument("--seed", type=int, default=0)
    args = ap.parse_args()

    ds = make_dataset("krki", seed=args.seed)
    run_kw = dict(p=args.p, width=10, seed=args.seed, backend=args.backend)
    problem = (ds.kb, ds.pos, ds.neg, ds.modes, ds.config)

    crash = WorkerCrash(rank=2, on_recv=2, tag="start_pipeline")
    scenarios = {
        "fault-free": (None, 0),
        "worker 2 crashes": (FaultPlan(crashes=(crash,), timeout=2.0), 0),
        "crash + standby": (FaultPlan(crashes=(crash,), timeout=2.0), 1),
        "straggler 5x": (FaultPlan(stragglers=(Straggler(rank=1, factor=5.0),), timeout=60.0), 0),
        "elastic join": (
            FaultPlan(joins=(WorkerJoin(rank=args.p + 1, epoch=2),), timeout=2.0),
            1,
        ),
    }

    base_theory = None
    rows = []
    for name, (plan, spares) in scenarios.items():
        res = run_p2mdie(*problem, fault_plan=plan, spares=spares, **run_kw)
        if base_theory is None:
            base_theory = res.theory
        rows.append(
            [
                name,
                f"{res.seconds:.2f}",
                f"{res.mbytes:.3f}",
                str(len(res.theory)),
                "identical" if res.theory == base_theory else "DIFFERENT!",
                str(sum(1 for ev in res.fault_events if "declared dead" in ev)),
            ]
        )
        for ev in res.fault_events:
            print(f"    [{name}] {ev}")

    print()
    print(
        render_table(
            ["scenario", "seconds", "MB", "clauses", "theory", "recoveries"], rows
        )
    )

    # -- checkpoint / resume -----------------------------------------------------
    ckpt_dir = tempfile.mkdtemp(prefix="repro-ckpt-")
    full = run_p2mdie(*problem, checkpoint_dir=ckpt_dir, **run_kw)
    first = sorted(glob.glob(os.path.join(ckpt_dir, "*.ckpt")))[0]
    state = load_checkpoint(first)
    resumed = run_p2mdie(*problem, resume=state, **run_kw)
    print(
        f"\nresume from {os.path.basename(first)} (epoch {state.epoch}): "
        f"theory {'identical' if resumed.theory == full.theory else 'DIFFERENT!'} "
        f"to the uninterrupted run"
    )


if __name__ == "__main__":
    main()

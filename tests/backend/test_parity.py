"""Backend parity: same seed/dataset/config ⇒ identical learned theory.

The central guarantee of the backend layer: the P²-MDIE master/worker
generators are substrate-agnostic, so swapping the discrete-event
simulation for real multiprocessing changes *when* things run but never
*what* is learned — clause for clause, epoch for epoch.
"""

import pytest

from repro.backend import LocalProcessBackend
from repro.datasets import make_dataset
from repro.parallel import run_coverage_parallel, run_independent, run_p2mdie

LOCAL_TIMEOUT = 300.0


def _assert_parity(r_sim, r_loc):
    assert list(r_sim.theory) == list(r_loc.theory)
    assert r_sim.epochs == r_loc.epochs
    assert r_sim.uncovered == r_loc.uncovered
    # Same protocol run ⇒ same message sequence (count and tags).  Pickled
    # byte volumes may differ by a few percent: in the sim, clauses inside
    # one payload share subterm objects (pickle memoization shrinks them),
    # while real transport rebuilt them from separate messages.
    assert r_sim.comm.messages == r_loc.comm.messages
    assert set(r_sim.comm.bytes_by_tag) == set(r_loc.comm.bytes_by_tag)
    assert set(r_sim.comm.bytes_by_link) == set(r_loc.comm.bytes_by_link)
    assert r_loc.comm.bytes_total == pytest.approx(r_sim.comm.bytes_total, rel=0.10)


@pytest.mark.parametrize("name", ["trains", "krki"])
def test_p2mdie_sim_local_parity(name):
    ds = make_dataset(name, seed=0, scale="small")
    args = (ds.kb, ds.pos, ds.neg, ds.modes, ds.config)
    r_sim = run_p2mdie(*args, p=2, seed=0)
    r_loc = run_p2mdie(*args, p=2, seed=0, backend=LocalProcessBackend(timeout=LOCAL_TIMEOUT))
    assert len(r_loc.theory) >= 1
    _assert_parity(r_sim, r_loc)


def test_p2mdie_parity_more_workers():
    ds = make_dataset("trains", seed=0, scale="small")
    args = (ds.kb, ds.pos, ds.neg, ds.modes, ds.config)
    r_sim = run_p2mdie(*args, p=4, seed=0)
    r_loc = run_p2mdie(*args, p=4, seed=0, backend=LocalProcessBackend(timeout=LOCAL_TIMEOUT))
    _assert_parity(r_sim, r_loc)


def test_p2mdie_parity_ship_data_mode():
    """The no-shared-FS variant ships the KB over the pipes — exercise the
    bulkier payloads end to end."""
    ds = make_dataset("trains", seed=0, scale="small")
    args = (ds.kb, ds.pos, ds.neg, ds.modes, ds.config)
    r_sim = run_p2mdie(*args, p=2, seed=0, share_mode="messages")
    r_loc = run_p2mdie(
        *args, p=2, seed=0, share_mode="messages",
        backend=LocalProcessBackend(timeout=LOCAL_TIMEOUT),
    )
    _assert_parity(r_sim, r_loc)


def test_independent_sim_local_parity():
    ds = make_dataset("trains", seed=0, scale="small")
    args = (ds.kb, ds.pos, ds.neg, ds.modes, ds.config)
    r_sim = run_independent(*args, p=2, seed=0)
    r_loc = run_independent(*args, p=2, seed=0, backend=LocalProcessBackend(timeout=LOCAL_TIMEOUT))
    _assert_parity(r_sim, r_loc)


def test_coverage_parallel_sim_local_parity():
    ds = make_dataset("trains", seed=0, scale="small")
    args = (ds.kb, ds.pos, ds.neg, ds.modes, ds.config)
    r_sim = run_coverage_parallel(*args, p=2, batch_size=8, seed=0)
    r_loc = run_coverage_parallel(
        *args, p=2, batch_size=8, seed=0, backend=LocalProcessBackend(timeout=LOCAL_TIMEOUT)
    )
    _assert_parity(r_sim, r_loc)


def test_backend_name_string_accepted():
    ds = make_dataset("trains", seed=0, scale="small")
    r = run_p2mdie(
        ds.kb, ds.pos, ds.neg, ds.modes, ds.config, p=2, seed=0, backend="local"
    )
    assert len(r.theory) >= 1
    assert r.seconds > 0.0

"""Mesh-design-like synthetic dataset (finite-element mesh resolution).

The real mesh dataset [Dolšak & Bratko] learns how many finite elements
each edge of a CAD structure should be partitioned into, from edge
attributes (type, support, loading) and the neighbourhood topology.  This
generator produces rings of edges ("structures") with those attribute
families and plants the element-count rules:

* short edges → 1 element, or 2 when loaded;
* long edges → 6 when fixed, 4 otherwise;
* circuit edges → 7 when some neighbour is fixed, else 5;
* half-circuit edges → 3, or 8 when continuously loaded.

Positives are ``mesh(Edge, TrueCount)``; negatives are ``mesh(Edge,
WrongCount)`` samples.  Table 1 cardinality at paper scale: 2840+/278-.
The neighbour rule forces genuinely relational learning (depth-2
saturation through ``neighbor/2``).
"""

from __future__ import annotations

import random

from repro.datasets.base import Dataset, register_dataset
from repro.ilp.config import ILPConfig
from repro.ilp.modes import ModeSet
from repro.logic.knowledge import KnowledgeBase
from repro.logic.terms import atom
from repro.util.rng import make_rng

__all__ = ["make_mesh"]

_ETYPES = ("short", "long", "circuit", "half_circuit")
_ETYPE_WEIGHTS = (0.38, 0.3, 0.18, 0.14)
_SUPPORTS = ("fixed", "free", "one_side_fixed")
_SUPPORT_WEIGHTS = (0.35, 0.45, 0.2)
_LOADS = ("loaded", "not_loaded", "cont_loaded")
_LOAD_WEIGHTS = (0.3, 0.55, 0.15)

_ALL_CLASSES = (1, 2, 3, 4, 5, 6, 7, 8)


def _true_class(etype: str, support: str, load: str, any_fixed_neighbor: bool) -> int:
    if etype == "short":
        return 2 if load == "loaded" else 1
    if etype == "long":
        return 6 if support == "fixed" else 4
    if etype == "circuit":
        return 7 if any_fixed_neighbor else 5
    # half_circuit
    return 8 if load == "cont_loaded" else 3


@register_dataset("mesh")
def make_mesh(
    seed: int = 0,
    scale: str = "small",
    n_pos: int | None = None,
    n_neg: int | None = None,
    edges_per_structure: int = 20,
    label_noise: float = 0.03,
) -> Dataset:
    """Generate a mesh-like problem (2840+/278- at ``scale="paper"``,
    160+/24- at ``"small"``)."""
    if n_pos is None or n_neg is None:
        n_pos, n_neg = (2840, 278) if scale == "paper" else (160, 24)
    rng = make_rng(seed, "mesh")
    kb = KnowledgeBase()

    n_structures = (n_pos + edges_per_structure - 1) // edges_per_structure
    edges: list[str] = []
    true_class: dict[str, int] = {}

    for s in range(n_structures):
        ring = [f"e{s}_{i}" for i in range(edges_per_structure)]
        attrs = {}
        for e in ring:
            etype = rng.choices(_ETYPES, weights=_ETYPE_WEIGHTS, k=1)[0]
            support = rng.choices(_SUPPORTS, weights=_SUPPORT_WEIGHTS, k=1)[0]
            load = rng.choices(_LOADS, weights=_LOAD_WEIGHTS, k=1)[0]
            attrs[e] = (etype, support, load)
            kb.add_fact(atom("etype", e, etype))
            kb.add_fact(atom("support", e, support))
            kb.add_fact(atom("load", e, load))
        for i, e in enumerate(ring):
            nxt = ring[(i + 1) % len(ring)]
            kb.add_fact(atom("neighbor", e, nxt))
            kb.add_fact(atom("neighbor", nxt, e))
        for i, e in enumerate(ring):
            left = ring[(i - 1) % len(ring)]
            right = ring[(i + 1) % len(ring)]
            any_fixed = attrs[left][1] == "fixed" or attrs[right][1] == "fixed"
            etype, support, load = attrs[e]
            c = _true_class(etype, support, load, any_fixed)
            if label_noise > 0 and rng.random() < label_noise:
                c = rng.choice([k for k in _ALL_CLASSES if k != c])
            true_class[e] = c
            edges.append(e)

    pos = [atom("mesh", e, true_class[e]) for e in edges[:n_pos]]
    # Negatives: wrong element counts for randomly chosen edges.
    neg = []
    seen = set()
    while len(neg) < n_neg:
        e = rng.choice(edges)
        wrong = rng.choice([k for k in _ALL_CLASSES if k != true_class[e]])
        if (e, wrong) in seen:
            continue
        seen.add((e, wrong))
        neg.append(atom("mesh", e, wrong))

    modes = ModeSet(
        [
            "modeh(1, mesh(+edge, #int))",
            "modeb(1, etype(+edge, #etype))",
            "modeb(1, support(+edge, #sup))",
            "modeb(1, load(+edge, #ld))",
            "modeb(*, neighbor(+edge, -edge))",
        ]
    )
    config = ILPConfig(
        max_clause_length=3,
        var_depth=2,
        recall=4,
        # Label noise relocates some edges' true class, so planted-rule
        # bodies cover a few sampled negatives; give the allowance headroom
        # above the expected count (see carcinogenesis.py for the same
        # reasoning).
        noise=max(2, round(0.08 * n_neg)),
        min_pos=2,
        max_nodes=350,
        max_bottom_literals=40,
        pipeline_width=10,
    )
    return Dataset(
        name="mesh",
        kb=kb,
        pos=pos,
        neg=neg,
        modes=modes,
        config=config,
        target_description=(
            "mesh(E,1):-etype(E,short),load(E,not_loaded). mesh(E,2):-etype(E,short),load(E,loaded). "
            "mesh(E,6):-etype(E,long),support(E,fixed). mesh(E,4):-etype(E,long),... "
            "mesh(E,7):-etype(E,circuit),neighbor(E,F),support(F,fixed). ..."
        ),
    )

"""Canonical clause signatures: variant invariance, soundness, and the
search-layer consumers (ExampleStore cache, ClauseBag).

Two signatures with different invariances:

* ``fingerprint()`` — renaming- AND order-invariant; logical equivalence
  fast path only;
* ``variant_key()`` — renaming-invariant, order-preserving; keys the
  evaluation caches and rule bags, because resource-bounded evaluation
  is body-order-sensitive (a reordered body may exhaust its op budget
  differently) while being exactly invariant under renaming.
"""

import pytest

from repro.ilp.prune import ClauseBag
from repro.ilp.store import ExampleStore
from repro.logic.clause import Clause
from repro.logic.engine import Engine
from repro.logic.knowledge import KnowledgeBase
from repro.logic.parser import parse_clause, parse_term


def fp(src: str) -> str:
    return parse_clause(src).fingerprint()


def vk(src: str) -> str:
    return parse_clause(src).variant_key()


class TestVariantKey:
    def test_renaming_invariant(self):
        assert vk("p(X) :- q(X, Y), r(Y).") == vk("p(A) :- q(A, B), r(B).")

    def test_order_sensitive(self):
        # deliberate: budgeted evaluation is body-order-sensitive
        assert vk("p(X) :- q(X, Y), r(Y).") != vk("p(A) :- r(B), q(A, B).")

    def test_distinct_wiring_distinct(self):
        assert vk("p(X) :- q(X, X).") != vk("p(X) :- q(X, Y).")
        assert vk("p(X, Y) :- q(Y).") != vk("p(X, 1) :- q(1).")


class TestVariantInvariance:
    def test_renaming_invariant(self):
        assert fp("p(X) :- q(X, Y), r(Y).") == fp("p(A) :- q(A, B), r(B).")

    def test_reordering_invariant(self):
        assert fp("p(X) :- q(X, Y), r(Y).") == fp("p(A) :- r(B), q(A, B).")

    def test_renaming_and_reordering(self):
        assert fp("p(X) :- s(X), q(X, Y), r(Y, z).") == fp("p(U) :- r(V, z), s(U), q(U, V).")

    def test_facts(self):
        assert fp("p(a).") == fp("p(a).")
        assert fp("p(a).") != fp("p(b).")

    def test_cached_on_clause(self):
        c = parse_clause("p(X) :- q(X).")
        assert c.fingerprint() is c.fingerprint()


class TestSoundness:
    """Equal fingerprints must imply variants — never merge non-equivalent
    clauses."""

    def test_distinct_var_sharing(self):
        # q(X, X) is NOT a variant of q(X, Y)
        assert fp("p(X) :- q(X, X).") != fp("p(X) :- q(X, Y).")

    def test_var_vs_const_numbering_cannot_collide(self):
        # a numbered variable must not collide with an integer constant
        assert fp("p(X, Y) :- q(Y).") != fp("p(X, 1) :- q(1).")
        assert fp("p(X) :- q(X, 1).") != fp("p(X) :- q(X, Y).")

    def test_int_vs_float_vs_symbol(self):
        assert fp("p(1).") != fp("p(1.0).")
        assert fp("p(1).") != fp("p('1').")

    def test_different_literals(self):
        assert fp("p(X) :- q(X).") != fp("p(X) :- r(X).")
        assert fp("p(X) :- q(X).") != fp("p(X) :- q(X), q(X).")

    def test_cross_literal_linkage(self):
        # same skeletons, different variable wiring
        assert fp("p(X) :- q(X, Y), r(Y).") != fp("p(X) :- q(X, Y), r(X).")


class TestStoreCacheVariants:
    def setup_method(self):
        self.kb = KnowledgeBase()
        self.kb.add_program("q(a). q(b). r(a).")
        self.engine = Engine(self.kb)
        self.pos = [parse_term("p(a)"), parse_term("p(b)")]
        self.neg = [parse_term("p(c)")]

    def test_renamed_variant_is_cache_hit(self):
        store = ExampleStore(self.pos, self.neg, fingerprints=True)
        c1 = parse_clause("p(X) :- q(X), r(X).")
        c2 = parse_clause("p(Z) :- q(Z), r(Z).")  # renamed variant of c1
        s1 = store.evaluate(self.engine, c1)
        assert store.cache_misses() == 1
        s2 = store.evaluate(self.engine, c2)
        assert store.cache_misses() == 1 and store.cache_hits() == 1
        assert (s1.pos_bits, s1.neg_bits) == (s2.pos_bits, s2.neg_bits)

    def test_reordered_variant_is_a_miss(self):
        # Reordered bodies can exhaust query budgets differently: they
        # must never share a cache entry.
        store = ExampleStore(self.pos, self.neg, fingerprints=True)
        store.evaluate(self.engine, parse_clause("p(X) :- q(X), r(X)."))
        store.evaluate(self.engine, parse_clause("p(Z) :- r(Z), q(Z)."))
        assert store.cache_misses() == 2

    def test_without_fingerprints_variant_is_miss(self):
        store = ExampleStore(self.pos, self.neg, fingerprints=False)
        store.evaluate(self.engine, parse_clause("p(X) :- q(X), r(X)."))
        store.evaluate(self.engine, parse_clause("p(Z) :- q(Z), r(Z)."))
        assert store.cache_misses() == 2

    def test_variant_stats_equal_fresh_eval(self):
        keyed = ExampleStore(self.pos, self.neg, fingerprints=True)
        plain = ExampleStore(self.pos, self.neg, fingerprints=False)
        c1 = parse_clause("p(X) :- q(X), r(X).")
        c2 = parse_clause("p(Z) :- q(Z), r(Z).")
        keyed.evaluate(self.engine, c1)
        via_cache = keyed.evaluate(self.engine, c2)
        fresh = plain.evaluate(self.engine, c2)
        assert (via_cache.pos, via_cache.neg, via_cache.pos_bits, via_cache.neg_bits) == (
            fresh.pos,
            fresh.neg,
            fresh.pos_bits,
            fresh.neg_bits,
        )


class TestClauseBag:
    def test_dedups_variants_keeping_tiebreak_winner(self):
        bag = ClauseBag(fingerprints=True)
        a = parse_clause("p(X) :- q(X, Y).")
        b = parse_clause("p(A) :- q(A, B).")  # variant, lexicographically smaller
        bag.add(a)
        bag.add(b)
        assert len(bag) == 1
        assert bag.clauses() == [min((a, b), key=str)]
        # epoch logs report the baseline's (equality-dedup) bag size
        assert bag.reported_size == 2

    def test_reordered_rules_not_merged(self):
        bag = ClauseBag(fingerprints=True)
        bag.add(parse_clause("p(X) :- q(X, Y), r(Y)."))
        bag.add(parse_clause("p(A) :- r(B), q(A, B)."))
        assert len(bag) == 2

    def test_insertion_order_and_discard(self):
        bag = ClauseBag(fingerprints=True)
        c1 = parse_clause("p(X) :- q(X).")
        c2 = parse_clause("p(X) :- r(X).")
        bag.add(c1)
        bag.add(c2)
        assert bag.clauses() == [c1, c2]
        assert c1 in bag
        bag.discard(c1)
        assert len(bag) == 1 and c1 not in bag

    def test_plain_mode_keeps_variants(self):
        bag = ClauseBag(fingerprints=False)
        bag.add(parse_clause("p(X) :- q(X, Y)."))
        bag.add(parse_clause("p(A) :- q(A, B)."))
        assert len(bag) == 2

    def test_non_variants_not_merged(self):
        bag = ClauseBag(fingerprints=True)
        bag.add(parse_clause("p(X) :- q(X, X)."))
        bag.add(parse_clause("p(X) :- q(X, Y)."))
        assert len(bag) == 2
